//! `mapa-sched` — command-line front end for the MAPA allocator/simulator.
//!
//! ```text
//! mapa-sched machines
//! mapa-sched topo <machine>                     # matrix + DOT
//! mapa-sched generate --count 300 --seed 42     # emit a job file (CSV)
//! mapa-sched simulate --machine dgx-1-v100 --policy preserve \
//!                     --jobs jobs.csv [--backfill] [--no-cache] [--poisson GAP --seed S]
//! mapa-sched simulate --machine dgx-1-v100 --servers 4 --server-policy least-loaded \
//!                     --policy preserve --jobs jobs.csv [--json report.json]
//! ```
//!
//! A topology can also be given as a file containing `nvidia-smi topo -m`
//! output, which is how MAPA would attach to a real machine. With
//! `--servers N` (or an explicit `--server-policy`) the job file is
//! replayed against a sharded cluster of N copies of the machine: a
//! server-selection policy picks the shard, the allocation policy picks
//! the GPUs, and jobs stream in through the bounded ingestion channel.

use mapa::cluster::{
    dispatch_mode_by_name, migration_policy_by_name, server_policy_by_name, Cluster, DispatchMode,
    JobFeed, MigrationPolicy, DISPATCH_MODE_NAMES, MIGRATION_POLICY_NAMES, SERVER_POLICY_NAMES,
};
use mapa::core::policy::{
    AllocationPolicy, BaselinePolicy, EffBwGreedyPolicy, GreedyPolicy, PreservePolicy,
    TopoAwarePolicy,
};
use mapa::prelude::*;
use mapa::sim::{ArrivalProcess, JobRecord, SimConfig};
use mapa::topology::parse::{parse_topology_matrix, to_topology_matrix, NvlinkGeneration};
use mapa::workloads::jobs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mapa-sched machines
  mapa-sched topo <machine-or-matrix-file>
  mapa-sched generate [--count N] [--seed S]
  mapa-sched simulate --machine <name-or-file> --policy <name> --jobs <file>
                      [--servers N] [--server-policy <name>]
                      [--dispatch <mode>] [--migration <name>] [--shard-queue-depth N]
                      [--backfill] [--no-cache] [--seed S]
                      [--poisson MEAN_GAP | --burst SIZE [--burst-gap SECONDS]]
                      [--json <report-file>]

policies:           baseline | topo-aware | greedy | preserve | effbw-greedy
server policies:    round-robin | least-loaded | best-score | pack-first
dispatch modes:     sequential | parallel
migration policies: none | steal-on-idle | rebalance-on-release
(--shard-queue-depth or a non-none --migration switches the cluster from
the global FIFO queue to bounded per-shard queues)";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("machines") => cmd_machines(),
        Some("topo") => cmd_topo(args.get(1).ok_or("topo needs a machine name or file")?),
        Some("generate") => cmd_generate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".to_string()),
    }
}

fn cmd_machines() -> Result<(), String> {
    println!(
        "{:<14} {:>6} {:>8} {:>9}",
        "name", "GPUs", "NVLinks", "sockets"
    );
    for m in machines::all_machines() {
        println!(
            "{:<14} {:>6} {:>8} {:>9}",
            m.name(),
            m.gpu_count(),
            m.link_graph().edge_count(),
            m.socket_count()
        );
    }
    Ok(())
}

/// Resolves a machine argument: a built-in name (case/punctuation
/// insensitive) or a path to an `nvidia-smi topo -m` matrix file.
fn resolve_machine(arg: &str) -> Result<Topology, String> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase()
    };
    if let Some(m) = machines::all_machines()
        .into_iter()
        .find(|m| norm(m.name()) == norm(arg))
    {
        return Ok(m);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("'{arg}' is not a built-in machine and not a readable file: {e}"))?;
    parse_topology_matrix(&text, arg, NvlinkGeneration::V2)
        .map_err(|e| format!("failed to parse '{arg}' as a topology matrix: {e}"))
}

fn cmd_topo(arg: &str) -> Result<(), String> {
    let m = resolve_machine(arg)?;
    println!("# {} — {} GPUs\n", m.name(), m.gpu_count());
    println!("{}", to_topology_matrix(&m));
    println!("{}", m.to_dot());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut count = 300usize;
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--count" => count = parse_flag(&mut it, "--count")?,
            "--seed" => seed = parse_flag(&mut it, "--seed")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let cfg = generator::JobMixConfig {
        job_count: count,
        ..Default::default()
    };
    print!(
        "{}",
        jobs::write_job_file(&generator::generate_jobs(&cfg, seed))
    );
    Ok(())
}

fn resolve_policy(name: &str) -> Result<Box<dyn AllocationPolicy>, String> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Box::new(BaselinePolicy)),
        "topo-aware" | "topoaware" => Ok(Box::new(TopoAwarePolicy)),
        "greedy" => Ok(Box::new(GreedyPolicy)),
        "preserve" | "preservation" => Ok(Box::new(PreservePolicy)),
        "effbw-greedy" | "effbwgreedy" => Ok(Box::new(EffBwGreedyPolicy)),
        other => Err(format!("unknown policy '{other}'")),
    }
}

fn parse_flag<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let mut machine_arg: Option<String> = None;
    let mut policy_arg: Option<String> = None;
    let mut jobs_file: Option<String> = None;
    let mut backfill = false;
    let mut cached = true;
    let mut poisson: Option<f64> = None;
    let mut burst: Option<usize> = None;
    let mut burst_gap = 300.0f64;
    let mut seed = 0u64;
    let mut servers = 1usize;
    let mut server_policy_arg: Option<String> = None;
    let mut dispatch_arg: Option<String> = None;
    let mut migration_arg: Option<String> = None;
    let mut queue_depth: Option<usize> = None;
    let mut json_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--machine" => machine_arg = Some(parse_flag(&mut it, "--machine")?),
            "--policy" => policy_arg = Some(parse_flag(&mut it, "--policy")?),
            "--jobs" => jobs_file = Some(parse_flag(&mut it, "--jobs")?),
            "--backfill" => backfill = true,
            "--no-cache" => cached = false,
            "--poisson" => poisson = Some(parse_flag(&mut it, "--poisson")?),
            "--burst" => burst = Some(parse_flag(&mut it, "--burst")?),
            "--burst-gap" => burst_gap = parse_flag(&mut it, "--burst-gap")?,
            "--seed" => seed = parse_flag(&mut it, "--seed")?,
            "--servers" => servers = parse_flag(&mut it, "--servers")?,
            "--server-policy" => server_policy_arg = Some(parse_flag(&mut it, "--server-policy")?),
            "--dispatch" => dispatch_arg = Some(parse_flag(&mut it, "--dispatch")?),
            "--migration" => migration_arg = Some(parse_flag(&mut it, "--migration")?),
            "--shard-queue-depth" => {
                queue_depth = Some(parse_flag(&mut it, "--shard-queue-depth")?)
            }
            "--json" => json_file = Some(parse_flag(&mut it, "--json")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    if servers == 0 {
        return Err("--servers must be at least 1".to_string());
    }
    let machine = resolve_machine(&machine_arg.ok_or("--machine is required")?)?;
    let policy_name = policy_arg.ok_or("--policy is required")?;
    let jobs_text = std::fs::read_to_string(jobs_file.as_deref().ok_or("--jobs is required")?)
        .map_err(|e| format!("cannot read jobs file: {e}"))?;
    let job_list = jobs::parse_job_file(&jobs_text).map_err(|e| format!("bad job file: {e}"))?;
    if let Some(bad) = job_list.iter().find(|j| j.num_gpus > machine.gpu_count()) {
        return Err(format!(
            "job {} requests {} GPUs but {} has only {}",
            bad.id,
            bad.num_gpus,
            machine.name(),
            machine.gpu_count()
        ));
    }

    let arrivals = match (poisson, burst) {
        (Some(_), Some(_)) => {
            return Err("--poisson and --burst are mutually exclusive".to_string())
        }
        (Some(gap), None) => ArrivalProcess::Poisson {
            mean_gap: gap,
            seed,
        },
        (None, Some(size)) => {
            if size == 0 {
                return Err("--burst needs at least 1 job per burst".to_string());
            }
            if !(burst_gap >= 0.0 && burst_gap.is_finite()) {
                return Err("--burst-gap must be a non-negative number of seconds".to_string());
            }
            ArrivalProcess::Bursts {
                size,
                gap: burst_gap,
            }
        }
        (None, None) => ArrivalProcess::Batch,
    };
    let config = SimConfig {
        strict_fifo: !backfill,
        arrivals,
        cached,
        ..SimConfig::default()
    };

    let dispatch = match dispatch_arg.as_deref() {
        None => DispatchMode::Sequential,
        Some(name) => dispatch_mode_by_name(name).ok_or_else(|| {
            format!(
                "unknown dispatch mode '{name}' (choose from: {})",
                DISPATCH_MODE_NAMES.join(" | ")
            )
        })?,
    };
    let migration = match migration_arg.as_deref() {
        None => MigrationPolicy::None,
        Some(name) => migration_policy_by_name(name).ok_or_else(|| {
            format!(
                "unknown migration policy '{name}' (choose from: {})",
                MIGRATION_POLICY_NAMES.join(" | ")
            )
        })?,
    };
    // Per-shard queues are always strict per-shard FIFO; silently taking
    // the queued path would turn a --backfill ablation into a FIFO run.
    if backfill && (queue_depth.is_some() || migration != MigrationPolicy::None) {
        return Err(
            "--backfill applies to the global FIFO queue only; it cannot be combined \
             with --shard-queue-depth or a non-none --migration (per-shard queues are \
             strict FIFO per shard)"
                .to_string(),
        );
    }
    // Any dispatch-layer flag implies the cluster path (a 1-server
    // cluster is valid — per-shard queues and migration still apply).
    let clustered = servers > 1
        || server_policy_arg.is_some()
        || dispatch_arg.is_some()
        || migration_arg.is_some()
        || queue_depth.is_some();

    // Jobs stream into the dispatcher through the bounded ingestion
    // channel — the same front end live traffic would use.
    let feed = JobFeed::from_jobs(job_list, mapa::cluster::DEFAULT_INGEST_CAPACITY);
    let report = if clustered {
        let server_policy_name = server_policy_arg.as_deref().unwrap_or("least-loaded");
        let server_policy = server_policy_by_name(server_policy_name).ok_or_else(|| {
            format!(
                "unknown server policy '{server_policy_name}' (choose from: {})",
                SERVER_POLICY_NAMES.join(" | ")
            )
        })?;
        // One allocation-policy instance per shard.
        let mut shard_policies = (0..servers)
            .map(|_| resolve_policy(&policy_name))
            .collect::<Result<Vec<_>, _>>()?;
        let mut cluster = Cluster::homogeneous(
            machine,
            servers,
            move || shard_policies.pop().expect("one policy per shard"),
            server_policy,
        )
        .with_dispatch(dispatch);
        if let Some(depth) = queue_depth {
            if depth == 0 {
                return Err("--shard-queue-depth must be at least 1".to_string());
            }
            cluster = cluster.with_shard_queues(depth);
        }
        cluster = cluster.with_migration(migration);
        Engine::over(cluster).with_config(config).run_stream(feed)
    } else {
        Simulation::new(machine, resolve_policy(&policy_name)?)
            .with_config(config)
            .run_stream(feed)
    };

    println!(
        "machine {} | policy {} | {} jobs | makespan {:.0} s | throughput {:.1} jobs/h",
        report.topology_name,
        report.policy_name,
        report.records.len(),
        report.makespan_seconds,
        report.throughput_jobs_per_hour
    );
    let sens = |r: &JobRecord| r.job.bandwidth_sensitive && r.job.num_gpus >= 2;
    let multi = |r: &JobRecord| r.job.num_gpus >= 2;
    if report.records.iter().any(&sens) {
        let s = stats::summarize(&report.execution_times(sens));
        println!(
            "sensitive exec time (s): min {:.0}  p25 {:.0}  p50 {:.0}  p75 {:.0}  max {:.0}",
            s.min, s.p25, s.p50, s.p75, s.max
        );
    }
    if report.records.iter().any(&multi) {
        let b = stats::summarize(&report.predicted_eff_bws(multi));
        println!(
            "predicted EffBW (GB/s):  min {:.1}  p25 {:.1}  p50 {:.1}  p75 {:.1}  max {:.1}",
            b.min, b.p25, b.p50, b.p75, b.max
        );
    }
    if !report.records.is_empty() {
        let sched = report.scheduling_stats();
        print!(
            "scheduling latency (ms): min {:.3}  p50 {:.3}  max {:.3}",
            sched.latency_ms.min, sched.latency_ms.p50, sched.latency_ms.max
        );
        match sched.cache {
            Some(c) => println!(
                "  | cache: {} hits / {} lookups ({:.0}% hit rate)",
                c.hits,
                c.lookups(),
                c.hit_rate() * 100.0
            ),
            None => println!("  | cache: off"),
        }
    }
    if let Some(d) = &report.dispatch {
        print!("dispatch: {} | migration: {}", d.mode, d.migration);
        if d.shard_queue_depth > 0 {
            print!(
                " | shard queues: depth {}  stolen {}  rebalanced {}",
                d.shard_queue_depth, d.jobs_stolen, d.jobs_rebalanced
            );
        } else {
            print!(" | queue: global FIFO");
        }
        println!();
    }
    if report.shards.len() > 1 {
        println!(
            "queue: max depth {}  mean depth {:.2}  blocks {}  cross-server frag blocks {}",
            report.queue.max_depth,
            report.queue.mean_depth,
            report.queue.dispatch_blocks,
            report.queue.fragmentation_blocks
        );
        for s in &report.shards {
            println!(
                "  shard {:>2} {:<14} {:>3} jobs  util {:>5.1}%  gpu-seconds {:>10.0}",
                s.server,
                s.machine,
                s.jobs_completed,
                s.utilization * 100.0,
                s.gpu_seconds
            );
        }
    }
    if let Some(path) = json_file {
        std::fs::write(&path, report_json(&report))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("report JSON written to {path}");
    }
    println!("\nper-job log (id, workload, server, gpus, effbw, exec):");
    for r in &report.records {
        println!(
            "  {:>4} {:<14} s{} {:?} {:>6.1} GB/s {:>8.0} s",
            r.job.id,
            r.job.workload.name(),
            r.server,
            r.gpus,
            r.predicted_eff_bw,
            r.execution_seconds
        );
    }
    Ok(())
}

/// Hand-rolled JSON report (the workspace is dependency-free offline):
/// run summary, queue statistics, the dispatch layer (mode, migration
/// counters, per-shard queue high-water marks) when one ran, and one
/// object per shard — the machine-readable artifact CI uploads next to
/// `BENCH_fig19.json`.
fn report_json(report: &SimReport) -> String {
    // `scheduling_stats` panics on an empty run; report zeros instead.
    let (latency_p50, latency_max, hit_rate) = if report.records.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let sched = report.scheduling_stats();
        (
            sched.latency_ms.p50,
            sched.latency_ms.max,
            sched.cache_hit_rate(),
        )
    };
    let dispatch = report.dispatch.as_ref().map_or(String::new(), |d| {
        let depths: Vec<String> = d.max_queue_depths.iter().map(usize::to_string).collect();
        format!(
            "  \"dispatch\": {{\"mode\": \"{}\", \"migration\": \"{}\", \
             \"shard_queue_depth\": {}, \"jobs_stolen\": {}, \"jobs_rebalanced\": {}, \
             \"max_queue_depths\": [{}]}},\n",
            d.mode,
            d.migration,
            d.shard_queue_depth,
            d.jobs_stolen,
            d.jobs_rebalanced,
            depths.join(", ")
        )
    });
    let shards: Vec<String> = report
        .shards
        .iter()
        .map(|s| {
            let (hits, misses) = s.cache.map_or((0, 0), |c| (c.hits, c.misses));
            format!(
                "    {{\"server\": {}, \"machine\": \"{}\", \"gpu_count\": {}, \
                 \"jobs_completed\": {}, \"gpu_seconds\": {:.3}, \"utilization\": {:.6}, \
                 \"cache_hits\": {hits}, \"cache_misses\": {misses}}}",
                s.server, s.machine, s.gpu_count, s.jobs_completed, s.gpu_seconds, s.utilization
            )
        })
        .collect();
    format!(
        "{{\n  \"machine\": \"{}\",\n  \"policy\": \"{}\",\n  \"jobs\": {},\n  \
         \"makespan_seconds\": {:.3},\n  \"throughput_jobs_per_hour\": {:.3},\n  \
         \"scheduling_latency_ms\": {{\"p50\": {:.6}, \"max\": {:.6}}},\n  \
         \"cache_hit_rate\": {:.6},\n  \
         \"queue\": {{\"max_depth\": {}, \"mean_depth\": {:.3}, \"dispatch_blocks\": {}, \
         \"fragmentation_blocks\": {}}},\n{dispatch}  \"shards\": [\n{}\n  ]\n}}\n",
        report.topology_name,
        report.policy_name,
        report.records.len(),
        report.makespan_seconds,
        report.throughput_jobs_per_hour,
        latency_p50,
        latency_max,
        hit_rate,
        report.queue.max_depth,
        report.queue.mean_depth,
        report.queue.dispatch_blocks,
        report.queue.fragmentation_blocks,
        shards.join(",\n")
    )
}
