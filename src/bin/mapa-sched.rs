//! `mapa-sched` — command-line front end for the MAPA allocator/simulator.
//!
//! ```text
//! mapa-sched machines
//! mapa-sched topo <machine>                     # matrix + DOT
//! mapa-sched generate --count 300 --seed 42     # emit a job file (CSV)
//! mapa-sched simulate --machine dgx-1-v100 --policy preserve \
//!                     --jobs jobs.csv [--backfill] [--no-cache] [--poisson GAP --seed S]
//! ```
//!
//! A topology can also be given as a file containing `nvidia-smi topo -m`
//! output, which is how MAPA would attach to a real machine.

use mapa::core::policy::{
    AllocationPolicy, BaselinePolicy, EffBwGreedyPolicy, GreedyPolicy, PreservePolicy,
    TopoAwarePolicy,
};
use mapa::prelude::*;
use mapa::sim::{ArrivalProcess, JobRecord, SimConfig};
use mapa::topology::parse::{parse_topology_matrix, to_topology_matrix, NvlinkGeneration};
use mapa::workloads::jobs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mapa-sched machines
  mapa-sched topo <machine-or-matrix-file>
  mapa-sched generate [--count N] [--seed S]
  mapa-sched simulate --machine <name-or-file> --policy <name> --jobs <file>
                      [--backfill] [--no-cache] [--poisson MEAN_GAP] [--seed S]

policies: baseline | topo-aware | greedy | preserve | effbw-greedy";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("machines") => cmd_machines(),
        Some("topo") => cmd_topo(args.get(1).ok_or("topo needs a machine name or file")?),
        Some("generate") => cmd_generate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".to_string()),
    }
}

fn cmd_machines() -> Result<(), String> {
    println!(
        "{:<14} {:>6} {:>8} {:>9}",
        "name", "GPUs", "NVLinks", "sockets"
    );
    for m in machines::all_machines() {
        println!(
            "{:<14} {:>6} {:>8} {:>9}",
            m.name(),
            m.gpu_count(),
            m.link_graph().edge_count(),
            m.socket_count()
        );
    }
    Ok(())
}

/// Resolves a machine argument: a built-in name (case/punctuation
/// insensitive) or a path to an `nvidia-smi topo -m` matrix file.
fn resolve_machine(arg: &str) -> Result<Topology, String> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase()
    };
    if let Some(m) = machines::all_machines()
        .into_iter()
        .find(|m| norm(m.name()) == norm(arg))
    {
        return Ok(m);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("'{arg}' is not a built-in machine and not a readable file: {e}"))?;
    parse_topology_matrix(&text, arg, NvlinkGeneration::V2)
        .map_err(|e| format!("failed to parse '{arg}' as a topology matrix: {e}"))
}

fn cmd_topo(arg: &str) -> Result<(), String> {
    let m = resolve_machine(arg)?;
    println!("# {} — {} GPUs\n", m.name(), m.gpu_count());
    println!("{}", to_topology_matrix(&m));
    println!("{}", m.to_dot());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut count = 300usize;
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--count" => count = parse_flag(&mut it, "--count")?,
            "--seed" => seed = parse_flag(&mut it, "--seed")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let cfg = generator::JobMixConfig {
        job_count: count,
        ..Default::default()
    };
    print!(
        "{}",
        jobs::write_job_file(&generator::generate_jobs(&cfg, seed))
    );
    Ok(())
}

fn resolve_policy(name: &str) -> Result<Box<dyn AllocationPolicy>, String> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Box::new(BaselinePolicy)),
        "topo-aware" | "topoaware" => Ok(Box::new(TopoAwarePolicy)),
        "greedy" => Ok(Box::new(GreedyPolicy)),
        "preserve" | "preservation" => Ok(Box::new(PreservePolicy)),
        "effbw-greedy" | "effbwgreedy" => Ok(Box::new(EffBwGreedyPolicy)),
        other => Err(format!("unknown policy '{other}'")),
    }
}

fn parse_flag<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let mut machine_arg: Option<String> = None;
    let mut policy_arg: Option<String> = None;
    let mut jobs_file: Option<String> = None;
    let mut backfill = false;
    let mut cached = true;
    let mut poisson: Option<f64> = None;
    let mut seed = 0u64;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--machine" => machine_arg = Some(parse_flag(&mut it, "--machine")?),
            "--policy" => policy_arg = Some(parse_flag(&mut it, "--policy")?),
            "--jobs" => jobs_file = Some(parse_flag(&mut it, "--jobs")?),
            "--backfill" => backfill = true,
            "--no-cache" => cached = false,
            "--poisson" => poisson = Some(parse_flag(&mut it, "--poisson")?),
            "--seed" => seed = parse_flag(&mut it, "--seed")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let machine = resolve_machine(&machine_arg.ok_or("--machine is required")?)?;
    let policy = resolve_policy(&policy_arg.ok_or("--policy is required")?)?;
    let jobs_text = std::fs::read_to_string(jobs_file.as_deref().ok_or("--jobs is required")?)
        .map_err(|e| format!("cannot read jobs file: {e}"))?;
    let job_list = jobs::parse_job_file(&jobs_text).map_err(|e| format!("bad job file: {e}"))?;
    if let Some(bad) = job_list.iter().find(|j| j.num_gpus > machine.gpu_count()) {
        return Err(format!(
            "job {} requests {} GPUs but {} has only {}",
            bad.id,
            bad.num_gpus,
            machine.name(),
            machine.gpu_count()
        ));
    }

    let config = SimConfig {
        strict_fifo: !backfill,
        arrivals: match poisson {
            Some(gap) => ArrivalProcess::Poisson {
                mean_gap: gap,
                seed,
            },
            None => ArrivalProcess::Batch,
        },
        cached,
        ..SimConfig::default()
    };
    let report = Simulation::new(machine, policy)
        .with_config(config)
        .run(&job_list);

    println!(
        "machine {} | policy {} | {} jobs | makespan {:.0} s | throughput {:.1} jobs/h",
        report.topology_name,
        report.policy_name,
        report.records.len(),
        report.makespan_seconds,
        report.throughput_jobs_per_hour
    );
    let sens = |r: &JobRecord| r.job.bandwidth_sensitive && r.job.num_gpus >= 2;
    let multi = |r: &JobRecord| r.job.num_gpus >= 2;
    if report.records.iter().any(&sens) {
        let s = stats::summarize(&report.execution_times(sens));
        println!(
            "sensitive exec time (s): min {:.0}  p25 {:.0}  p50 {:.0}  p75 {:.0}  max {:.0}",
            s.min, s.p25, s.p50, s.p75, s.max
        );
    }
    if report.records.iter().any(&multi) {
        let b = stats::summarize(&report.predicted_eff_bws(multi));
        println!(
            "predicted EffBW (GB/s):  min {:.1}  p25 {:.1}  p50 {:.1}  p75 {:.1}  max {:.1}",
            b.min, b.p25, b.p50, b.p75, b.max
        );
    }
    if !report.records.is_empty() {
        let sched = report.scheduling_stats();
        print!(
            "scheduling latency (ms): min {:.3}  p50 {:.3}  max {:.3}",
            sched.latency_ms.min, sched.latency_ms.p50, sched.latency_ms.max
        );
        match sched.cache {
            Some(c) => println!(
                "  | cache: {} hits / {} lookups ({:.0}% hit rate)",
                c.hits,
                c.lookups(),
                c.hit_rate() * 100.0
            ),
            None => println!("  | cache: off"),
        }
    }
    println!("\nper-job log (id, workload, gpus, effbw, exec):");
    for r in &report.records {
        println!(
            "  {:>4} {:<14} {:?} {:>6.1} GB/s {:>8.0} s",
            r.job.id,
            r.job.workload.name(),
            r.gpus,
            r.predicted_eff_bw,
            r.execution_seconds
        );
    }
    Ok(())
}
