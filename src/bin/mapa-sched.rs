//! `mapa-sched` — command-line front end for the MAPA allocator/simulator.
//!
//! ```text
//! mapa-sched machines
//! mapa-sched topo <machine>                     # matrix + DOT
//! mapa-sched generate --count 300 --seed 42     # emit a job file (CSV)
//!                     [--inference-mix FRACTION] [--slices-max K] [--slo-ms MS]
//! mapa-sched simulate --machine dgx-1-v100 --policy preserve \
//!                     --jobs jobs.csv [--backfill] [--no-cache] [--poisson GAP --seed S]
//! mapa-sched simulate --machine dgx-1-v100 --servers 4 --server-policy least-loaded \
//!                     --policy preserve --jobs jobs.csv \
//!                     [--dispatch <mode>] [--migration <name>] [--shard-queue-depth N] \
//!                     [--preemption <name>] [--priorities N] [--gang-size K] \
//!                     [--partition GPU:SLICES,...[;degraded]] \
//!                     [--clusters N] [--federation-policy <name>] \
//!                     [--tenants T] [--quota-gpus G] \
//!                     [--json report.json]
//! mapa-sched campaign --machine dgx-1-v100 \
//!                     --grid "alloc-policies=baseline,preserve;shards=2,4;jobs=100" \
//!                     --replications 10 [--poisson GAP1,GAP2,... | batch] \
//!                     [--partition SPEC-or-none]... [--inference-mix FRACTION] \
//!                     [--json campaign.json]
//! ```
//!
//! A topology can also be given as a file containing `nvidia-smi topo -m`
//! output, which is how MAPA would attach to a real machine. With
//! `--servers N` (or an explicit `--server-policy`) the job file is
//! replayed against a sharded cluster of N copies of the machine: a
//! server-selection policy picks the shard, the allocation policy picks
//! the GPUs, and jobs stream in through the bounded ingestion channel.
//! `--priorities N` synthesizes N tenant classes (`priority = id % N`) on
//! top of the job file's optional `Priority` column, `--preemption` lets
//! high-priority arrivals evict lower-priority running jobs (requeued
//! with a checkpoint/restore penalty; see `--preemption-penalty`), and
//! `--gang-size K` groups every K consecutive jobs into a co-scheduled
//! gang (all members start at the same tick or none do). `--partition`
//! applies a MIG-style plan to every server (slice tenants from
//! `generate --inference-mix` can land on slices; whole-GPU jobs
//! cannot), and the summary/trailer/JSON then carry SLO-attainment
//! counters. `--clusters N` federates N identical clusters behind a
//! `--federation-policy` router; `--tenants T` tags jobs with tenant
//! ids (`id % T`) and `--quota-gpus G` caps every tenant at G concurrent
//! accelerator units, with quota-held work re-admitted in dominant-
//! resource-fair order. The full semantics is documented in
//! `docs/SCHEDULING.md`.

use mapa::cluster::{
    dispatch_mode_by_name, federation_policy_by_name, migration_policy_by_name,
    server_policy_by_name, Cluster, DispatchMode, Federation, MigrationPolicy, SubmissionFeed,
    DISPATCH_MODE_NAMES, FEDERATION_POLICY_NAMES, MIGRATION_POLICY_NAMES, SERVER_POLICY_NAMES,
};
use mapa::core::policy::AllocationPolicy;
use mapa::core::{preemption_policy_by_name, PreemptionPolicy, PREEMPTION_POLICY_NAMES};
use mapa::prelude::*;
use mapa::sim::{ArrivalProcess, JobRecord, SimConfig, Submission};
use mapa::topology::parse::{parse_topology_matrix, to_topology_matrix, NvlinkGeneration};
use mapa::workloads::jobs;
use mapa::workloads::JobGroup;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mapa-sched machines
  mapa-sched topo <machine-or-matrix-file>
  mapa-sched generate [--count N] [--seed S]
                      [--inference-mix FRACTION] [--slices-max K] [--slo-ms MS]
  mapa-sched simulate --machine <name-or-file> --policy <name> --jobs <file>
                      [--partition GPU:SLICES,GPU:SLICES,...[;degraded]]
                      [--servers N] [--server-policy <name>]
                      [--dispatch <mode>] [--migration <name>] [--shard-queue-depth N]
                      [--preemption <name>] [--preemption-penalty SECONDS]
                      [--priorities N] [--gang-size K]
                      [--clusters N] [--federation-policy <name>]
                      [--tenants T] [--quota-gpus G]
                      [--backfill] [--no-cache] [--seed S]
                      [--poisson MEAN_GAP | --burst SIZE [--burst-gap SECONDS]]
                      [--json <report-file>]
  mapa-sched campaign --machine <name-or-file>
                      [--grid \"axis=v1,v2;axis=v1;...\"] [--replications N]
                      [--base-seed S] [--poisson GAP1,GAP2,... | batch]
                      [--partition SPEC-or-none]... [--inference-mix FRACTION]
                      [--shard-queue-depth N] [--threads N] [--json <report-file>]
                      (grid axes: server-policies, alloc-policies, shards, jobs,
                       dispatch — each a comma list; --poisson is the arrival-
                       intensity axis (comma list, `batch` = all at t=0) and each
                       --partition adds a MIG-plan axis value (`none` = whole
                       GPUs); every cell of the cross-product runs N
                       replications under common random numbers)

policies:            baseline | topo-aware | greedy | preserve | effbw-greedy
server policies:     round-robin | least-loaded | best-score | pack-first
dispatch modes:      sequential | parallel
migration policies:  none | steal-on-idle | rebalance-on-release
preemption policies: none | priority-evict | sensitivity-aware-evict
federation policies: spillover | round-robin | least-loaded
(--shard-queue-depth or a non-none --migration switches the cluster from
the global FIFO queue to bounded per-shard queues; --priorities N assigns
tenant classes id%N; --gang-size K co-schedules every K consecutive jobs;
--clusters N federates N identical clusters of --servers shards each,
--tenants T assigns tenant ids id%T and --quota-gpus G caps each tenant
at G concurrent accelerator units (DRF re-admission) — see
docs/SCHEDULING.md for the full semantics)";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("machines") => cmd_machines(),
        Some("topo") => cmd_topo(args.get(1).ok_or("topo needs a machine name or file")?),
        Some("generate") => cmd_generate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".to_string()),
    }
}

fn cmd_machines() -> Result<(), String> {
    println!(
        "{:<14} {:>6} {:>8} {:>9}",
        "name", "GPUs", "NVLinks", "sockets"
    );
    for m in machines::all_machines() {
        println!(
            "{:<14} {:>6} {:>8} {:>9}",
            m.name(),
            m.gpu_count(),
            m.link_graph().edge_count(),
            m.socket_count()
        );
    }
    Ok(())
}

/// Resolves a machine argument: a built-in name (case/punctuation
/// insensitive) or a path to an `nvidia-smi topo -m` matrix file.
fn resolve_machine(arg: &str) -> Result<Topology, String> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase()
    };
    if let Some(m) = machines::all_machines()
        .into_iter()
        .find(|m| norm(m.name()) == norm(arg))
    {
        return Ok(m);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("'{arg}' is not a built-in machine and not a readable file: {e}"))?;
    parse_topology_matrix(&text, arg, NvlinkGeneration::V2)
        .map_err(|e| format!("failed to parse '{arg}' as a topology matrix: {e}"))
}

fn cmd_topo(arg: &str) -> Result<(), String> {
    let m = resolve_machine(arg)?;
    println!("# {} — {} GPUs\n", m.name(), m.gpu_count());
    println!("{}", to_topology_matrix(&m));
    println!("{}", m.to_dot());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut count = 300usize;
    let mut seed = 42u64;
    let mut inference_mix = 0.0f64;
    let mut slices_max = 2usize;
    let mut slo_ms: Option<f64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--count" => count = parse_flag(&mut it, "--count")?,
            "--seed" => seed = parse_flag(&mut it, "--seed")?,
            "--inference-mix" => inference_mix = parse_flag(&mut it, "--inference-mix")?,
            "--slices-max" => slices_max = parse_flag(&mut it, "--slices-max")?,
            "--slo-ms" => slo_ms = Some(parse_flag(&mut it, "--slo-ms")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if !(0.0..=1.0).contains(&inference_mix) {
        return Err("--inference-mix must be a fraction in [0, 1]".to_string());
    }
    if inference_mix > 0.0 && !(1..=7).contains(&slices_max) {
        return Err("--slices-max must be in 1..=7 (MIG's hardware limit)".to_string());
    }
    if let Some(ms) = slo_ms {
        if !(ms > 0.0 && ms.is_finite()) {
            return Err("--slo-ms must be a positive number of milliseconds".to_string());
        }
    }
    let cfg = generator::JobMixConfig {
        job_count: count,
        inference_fraction: inference_mix,
        inference_slices_max: slices_max,
        inference_slo_ms: slo_ms,
        ..Default::default()
    };
    print!(
        "{}",
        jobs::write_job_file(&generator::generate_jobs(&cfg, seed))
    );
    Ok(())
}

fn resolve_policy(name: &str) -> Result<Box<dyn AllocationPolicy>, String> {
    allocation_policy_by_name(name).ok_or_else(|| format!("unknown policy '{name}'"))
}

fn parse_flag<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let mut machine_arg: Option<String> = None;
    let mut partition_arg: Option<String> = None;
    let mut policy_arg: Option<String> = None;
    let mut jobs_file: Option<String> = None;
    let mut backfill = false;
    let mut cached = true;
    let mut poisson: Option<f64> = None;
    let mut burst: Option<usize> = None;
    let mut burst_gap = 300.0f64;
    let mut seed = 0u64;
    let mut servers = 1usize;
    let mut server_policy_arg: Option<String> = None;
    let mut dispatch_arg: Option<String> = None;
    let mut migration_arg: Option<String> = None;
    let mut queue_depth: Option<usize> = None;
    let mut json_file: Option<String> = None;
    let mut preemption_arg: Option<String> = None;
    let mut preemption_penalty: Option<f64> = None;
    let mut priorities: Option<u8> = None;
    let mut gang_size: Option<usize> = None;
    let mut clusters = 1usize;
    let mut federation_policy_arg: Option<String> = None;
    let mut tenants: Option<u64> = None;
    let mut quota_gpus: Option<usize> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--machine" => machine_arg = Some(parse_flag(&mut it, "--machine")?),
            "--partition" => partition_arg = Some(parse_flag(&mut it, "--partition")?),
            "--policy" => policy_arg = Some(parse_flag(&mut it, "--policy")?),
            "--jobs" => jobs_file = Some(parse_flag(&mut it, "--jobs")?),
            "--backfill" => backfill = true,
            "--no-cache" => cached = false,
            "--poisson" => poisson = Some(parse_flag(&mut it, "--poisson")?),
            "--burst" => burst = Some(parse_flag(&mut it, "--burst")?),
            "--burst-gap" => burst_gap = parse_flag(&mut it, "--burst-gap")?,
            "--seed" => seed = parse_flag(&mut it, "--seed")?,
            "--servers" => servers = parse_flag(&mut it, "--servers")?,
            "--server-policy" => server_policy_arg = Some(parse_flag(&mut it, "--server-policy")?),
            "--dispatch" => dispatch_arg = Some(parse_flag(&mut it, "--dispatch")?),
            "--migration" => migration_arg = Some(parse_flag(&mut it, "--migration")?),
            "--shard-queue-depth" => {
                queue_depth = Some(parse_flag(&mut it, "--shard-queue-depth")?)
            }
            "--json" => json_file = Some(parse_flag(&mut it, "--json")?),
            "--preemption" => preemption_arg = Some(parse_flag(&mut it, "--preemption")?),
            "--preemption-penalty" => {
                preemption_penalty = Some(parse_flag(&mut it, "--preemption-penalty")?)
            }
            "--priorities" => priorities = Some(parse_flag(&mut it, "--priorities")?),
            "--gang-size" => gang_size = Some(parse_flag(&mut it, "--gang-size")?),
            "--clusters" => clusters = parse_flag(&mut it, "--clusters")?,
            "--federation-policy" => {
                federation_policy_arg = Some(parse_flag(&mut it, "--federation-policy")?)
            }
            "--tenants" => tenants = Some(parse_flag(&mut it, "--tenants")?),
            "--quota-gpus" => quota_gpus = Some(parse_flag(&mut it, "--quota-gpus")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    if servers == 0 {
        return Err("--servers must be at least 1".to_string());
    }
    if clusters == 0 {
        return Err("--clusters must be at least 1".to_string());
    }
    // Any federation-layer flag implies the federated path (a 1-cluster
    // federation is valid — quotas and tenant accounting still apply).
    let federated = clusters > 1 || federation_policy_arg.is_some() || quota_gpus.is_some();
    if let Some(0) = quota_gpus {
        return Err("--quota-gpus must be at least 1".to_string());
    }
    let machine = resolve_machine(&machine_arg.ok_or("--machine is required")?)?;
    // A --partition plan turns the machine into its MIG-virtualized
    // counterpart before anything downstream sees it: slices become
    // first-class vertices, and the slice map rides inside the topology.
    let machine = match partition_arg.as_deref() {
        None => machine,
        Some(spec) => {
            let plan =
                PartitionPlan::parse(spec).map_err(|e| format!("bad --partition plan: {e}"))?;
            if plan.is_empty() {
                return Err("--partition needs at least one gpu:slices split".to_string());
            }
            if let Some((gpu, _)) = plan.splits().find(|&(gpu, _)| gpu >= machine.gpu_count()) {
                return Err(format!(
                    "--partition splits GPU {gpu}, but {} has only {} GPUs",
                    machine.name(),
                    machine.gpu_count()
                ));
            }
            plan.apply(&machine).into_topology()
        }
    };
    let policy_name = policy_arg.ok_or("--policy is required")?;
    let jobs_text = std::fs::read_to_string(jobs_file.as_deref().ok_or("--jobs is required")?)
        .map_err(|e| format!("cannot read jobs file: {e}"))?;
    let mut job_list =
        jobs::parse_job_file(&jobs_text).map_err(|e| format!("bad job file: {e}"))?;
    // Whole-GPU jobs never land on slice vertices, so on a partitioned
    // machine they must fit the *whole-GPU pool*, not the vertex count.
    let whole_pool = match machine.slice_map() {
        None => machine.gpu_count(),
        Some(map) => (0..map.vertex_count())
            .filter(|&v| !map.is_slice(v))
            .count(),
    };
    if let Some(bad) = job_list
        .iter()
        .find(|j| !j.is_fractional() && j.num_gpus() > whole_pool)
    {
        return Err(format!(
            "job {} requests {} whole GPUs but {} has only {}",
            bad.id,
            bad.num_gpus(),
            machine.name(),
            whole_pool
        ));
    }
    if let Some(bad) = job_list.iter().find(|j| j.num_gpus() > machine.gpu_count()) {
        return Err(format!(
            "job {} requests {} GPUs but {} has only {}",
            bad.id,
            bad.num_gpus(),
            machine.name(),
            machine.gpu_count()
        ));
    }
    if let Some(classes) = priorities {
        if classes == 0 {
            return Err("--priorities needs at least 1 tenant class".to_string());
        }
        jobs::assign_priority_classes(&mut job_list, classes);
    }
    if let Some(t) = tenants {
        if t == 0 {
            return Err("--tenants needs at least 1 tenant".to_string());
        }
        jobs::assign_tenants(&mut job_list, t);
    }
    let preemption = match preemption_arg.as_deref() {
        None => PreemptionPolicy::None,
        Some(name) => preemption_policy_by_name(name).ok_or_else(|| {
            format!(
                "unknown preemption policy '{name}' (choose from: {})",
                PREEMPTION_POLICY_NAMES.join(" | ")
            )
        })?,
    };
    if let Some(penalty) = preemption_penalty {
        if !(penalty >= 0.0 && penalty.is_finite()) {
            return Err(
                "--preemption-penalty must be a non-negative number of seconds".to_string(),
            );
        }
        if preemption == PreemptionPolicy::None {
            return Err(
                "--preemption-penalty needs a non-none --preemption policy to matter".to_string(),
            );
        }
    }
    // Group the stream into gangs of K consecutive jobs when asked; each
    // gang occupies one arrival slot and is co-scheduled all-or-nothing.
    let submissions: Vec<Submission> = match gang_size {
        None => job_list.into_iter().map(Submission::Job).collect(),
        Some(0) => return Err("--gang-size needs at least 1 job per gang".to_string()),
        Some(size) => JobGroup::chunk(job_list, size)
            .into_iter()
            .map(Submission::Gang)
            .collect(),
    };
    let server_policy_name = server_policy_arg.as_deref().unwrap_or("least-loaded");
    let resolve_server_policy = || {
        server_policy_by_name(server_policy_name).ok_or_else(|| {
            format!(
                "unknown server policy '{server_policy_name}' (choose from: {})",
                SERVER_POLICY_NAMES.join(" | ")
            )
        })
    };
    // Every gang must be co-schedulable on the *idle* fleet, or the run
    // can never drain (the engine surfaces that as a panic at the end —
    // a loud crash, but a config error deserves a friendly one). Pooled
    // capacity is not enough: three 5-GPU members total 15 ≤ 2×8 yet no
    // two fit one 8-GPU shard together. So reserve each gang on a
    // scratch idle fleet via the exact placement path the scheduler will
    // use, and reject the job file if any reservation fails.
    if submissions.iter().any(|s| matches!(s, Submission::Gang(_))) {
        resolve_policy(&policy_name)?; // surface a bad --policy before the scratch build
        let scratch_cluster = || -> Result<Cluster, String> {
            Ok(Cluster::homogeneous(
                machine.clone(),
                servers,
                {
                    let name = policy_name.clone();
                    move || resolve_policy(&name).expect("policy name validated just above")
                },
                resolve_server_policy()?,
            ))
        };
        // A federated fleet may *span* a gang across clusters, so the
        // scratch must mirror the real topology (quotas deliberately
        // omitted — over-quota gangs are held, not impossible).
        let mut scratch: Box<dyn SchedulerBackend> = if federated {
            let members: Result<Vec<Cluster>, String> =
                (0..clusters).map(|_| scratch_cluster()).collect();
            Box::new(Federation::new(members?, Box::new(SpilloverPolicy)))
        } else {
            Box::new(scratch_cluster()?)
        };
        for sub in &submissions {
            let Submission::Gang(gang) = sub else {
                continue;
            };
            match scratch.try_place_gang(&gang.members) {
                Some(placements) => {
                    for (member, p) in gang.members.iter().zip(&placements) {
                        scratch.release(p.server, member.id);
                    }
                }
                None => {
                    return Err(format!(
                        "gang {} (jobs {:?}, {} GPUs total) cannot be co-scheduled even on an \
                         idle fleet of {clusters}× {servers}× {} — shrink --gang-size or add \
                         servers",
                        gang.id,
                        gang.members.iter().map(|m| m.id).collect::<Vec<_>>(),
                        gang.total_gpus(),
                        machine.name(),
                    ));
                }
            }
        }
    }

    let arrivals = match (poisson, burst) {
        (Some(_), Some(_)) => {
            return Err("--poisson and --burst are mutually exclusive".to_string())
        }
        (Some(gap), None) => ArrivalProcess::Poisson {
            mean_gap: gap,
            seed,
        },
        (None, Some(size)) => {
            if size == 0 {
                return Err("--burst needs at least 1 job per burst".to_string());
            }
            if !(burst_gap >= 0.0 && burst_gap.is_finite()) {
                return Err("--burst-gap must be a non-negative number of seconds".to_string());
            }
            ArrivalProcess::Bursts {
                size,
                gap: burst_gap,
            }
        }
        (None, None) => ArrivalProcess::Batch,
    };
    let mut config = SimConfig {
        strict_fifo: !backfill,
        arrivals,
        cached,
        preemption,
        ..SimConfig::default()
    };
    if let Some(penalty) = preemption_penalty {
        config.preemption_penalty_seconds = penalty;
    }

    let dispatch = match dispatch_arg.as_deref() {
        None => DispatchMode::Sequential,
        Some(name) => dispatch_mode_by_name(name).ok_or_else(|| {
            format!(
                "unknown dispatch mode '{name}' (choose from: {})",
                DISPATCH_MODE_NAMES.join(" | ")
            )
        })?,
    };
    let migration = match migration_arg.as_deref() {
        None => MigrationPolicy::None,
        Some(name) => migration_policy_by_name(name).ok_or_else(|| {
            format!(
                "unknown migration policy '{name}' (choose from: {})",
                MIGRATION_POLICY_NAMES.join(" | ")
            )
        })?,
    };
    // Per-shard queues are always strict per-shard FIFO; silently taking
    // the queued path would turn a --backfill ablation into a FIFO run.
    if backfill && (queue_depth.is_some() || migration != MigrationPolicy::None) {
        return Err(
            "--backfill applies to the global FIFO queue only; it cannot be combined \
             with --shard-queue-depth or a non-none --migration (per-shard queues are \
             strict FIFO per shard)"
                .to_string(),
        );
    }
    // Any dispatch-layer flag implies the cluster path (a 1-server
    // cluster is valid — per-shard queues and migration still apply).
    let clustered = servers > 1
        || server_policy_arg.is_some()
        || dispatch_arg.is_some()
        || migration_arg.is_some()
        || queue_depth.is_some();

    // Submissions stream into the dispatcher through the bounded
    // ingestion channel — the same front end live traffic would use.
    let feed =
        SubmissionFeed::from_submissions(submissions, mapa::cluster::DEFAULT_INGEST_CAPACITY);
    if let Some(0) = queue_depth {
        return Err("--shard-queue-depth must be at least 1".to_string());
    }
    // Builds one cluster of `servers` shards with the shared dispatch
    // configuration — the federated path calls this once per cluster.
    let build_cluster = |machine: Topology| -> Result<Cluster, String> {
        let server_policy = resolve_server_policy()?;
        // One allocation-policy instance per shard.
        let mut shard_policies = (0..servers)
            .map(|_| resolve_policy(&policy_name))
            .collect::<Result<Vec<_>, _>>()?;
        let mut cluster = Cluster::homogeneous(
            machine,
            servers,
            move || shard_policies.pop().expect("one policy per shard"),
            server_policy,
        )
        .with_dispatch(dispatch);
        if let Some(depth) = queue_depth {
            cluster = cluster.with_shard_queues(depth);
        }
        Ok(cluster.with_migration(migration))
    };
    let report = if federated {
        let fed_policy_name = federation_policy_arg.as_deref().unwrap_or("spillover");
        let fed_policy = federation_policy_by_name(fed_policy_name).ok_or_else(|| {
            format!(
                "unknown federation policy '{fed_policy_name}' (choose from: {})",
                FEDERATION_POLICY_NAMES.join(" | ")
            )
        })?;
        let members = (0..clusters)
            .map(|_| build_cluster(machine.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let mut federation = Federation::new(members, fed_policy);
        if let Some(quota) = quota_gpus {
            federation = federation.with_default_quota(quota);
        }
        Engine::over(federation)
            .with_config(config)
            .run_submissions(feed)
    } else if clustered {
        Engine::over(build_cluster(machine)?)
            .with_config(config)
            .run_submissions(feed)
    } else {
        Simulation::new(machine, resolve_policy(&policy_name)?)
            .with_config(config)
            .run_submissions(feed)
    };

    println!(
        "machine {} | policy {} | {} jobs | makespan {:.0} s | throughput {:.1} jobs/h",
        report.topology_name,
        report.policy_name,
        report.records.len(),
        report.makespan_seconds,
        report.throughput_jobs_per_hour
    );
    let sens = |r: &JobRecord| r.job.bandwidth_sensitive && r.job.num_gpus() >= 2;
    let multi = |r: &JobRecord| r.job.num_gpus() >= 2;
    if report.records.iter().any(&sens) {
        let s = stats::summarize(&report.execution_times(sens));
        println!(
            "sensitive exec time (s): min {:.0}  p25 {:.0}  p50 {:.0}  p75 {:.0}  max {:.0}",
            s.min, s.p25, s.p50, s.p75, s.max
        );
    }
    if report.records.iter().any(&multi) {
        let b = stats::summarize(&report.predicted_eff_bws(multi));
        println!(
            "predicted EffBW (GB/s):  min {:.1}  p25 {:.1}  p50 {:.1}  p75 {:.1}  max {:.1}",
            b.min, b.p25, b.p50, b.p75, b.max
        );
    }
    if !report.records.is_empty() {
        let sched = report.scheduling_stats();
        print!(
            "scheduling latency (ms): min {:.3}  p50 {:.3}  max {:.3}",
            sched.latency_ms.min, sched.latency_ms.p50, sched.latency_ms.max
        );
        match sched.cache {
            Some(c) => println!(
                "  | cache: {} hits / {} lookups ({:.0}% hit rate)",
                c.hits,
                c.lookups(),
                c.hit_rate() * 100.0
            ),
            None => println!("  | cache: off"),
        }
    }
    if let Some(d) = &report.dispatch {
        print!("dispatch: {} | migration: {}", d.mode, d.migration);
        if d.shard_queue_depth > 0 {
            print!(
                " | shard queues: depth {}  stolen {}  rebalanced {}",
                d.shard_queue_depth, d.jobs_stolen, d.jobs_rebalanced
            );
        } else {
            print!(" | queue: global FIFO");
        }
        println!();
    }
    if preemption.enabled() || report.preemption.jobs_preempted > 0 {
        println!(
            "preemption: {} | evicted {}  gpu-seconds lost {:.0}  penalty charged {:.0} s",
            preemption.name(),
            report.preemption.jobs_preempted,
            report.preemption.gpu_seconds_lost,
            report.preemption.penalty_seconds_charged
        );
    }
    if report.gangs.gangs_dispatched > 0 {
        println!(
            "gangs: {} dispatched ({} members) | wait mean {:.0} s  max {:.0} s",
            report.gangs.gangs_dispatched,
            report.gangs.members_dispatched,
            report.gangs.total_wait_seconds / report.gangs.gangs_dispatched as f64,
            report.gangs.max_wait_seconds
        );
    }
    if let Some(attainment) = report.slo.attainment() {
        println!(
            "slo: {} inference tenants | met {}  missed {}  attainment {:.1}% | \
             p95 latency {:.3} ms (p95 target {:.3} ms)",
            report.slo.jobs,
            report.slo.met,
            report.slo.missed,
            attainment * 100.0,
            report.slo.p95_latency_ms,
            report.slo.p95_target_ms
        );
    }
    if let Some(fed) = &report.federation {
        println!(
            "federation: {} clusters | policy {} | spillovers {}  quota holds {}  \
             gangs pinned {}  spanned {}",
            fed.clusters.len(),
            fed.policy,
            fed.spillovers,
            fed.quota_holds,
            fed.gangs_pinned,
            fed.gangs_spanned
        );
        for c in &fed.clusters {
            println!(
                "  cluster {:>2} {:<18} servers {:>2}  routed {:>4}  spill-ins {:>4}  \
                 jobs {:>4}  gpu-seconds {:>10.0}",
                c.cluster,
                c.label,
                c.servers,
                c.jobs_routed,
                c.spill_ins,
                c.jobs_completed,
                c.gpu_seconds
            );
        }
        for t in &fed.tenants {
            let quota = t
                .quota_gpus
                .map_or_else(|| "-".to_string(), |q| q.to_string());
            println!(
                "  tenant {:>3} quota {:>4}  peak {:>4}  holds {:>4}  jobs {:>4}  \
                 gpu-seconds {:>10.0}",
                t.tenant, quota, t.peak_gpus, t.quota_holds, t.jobs_completed, t.gpu_seconds
            );
        }
    }
    if report.shards.len() > 1 {
        println!(
            "queue: max depth {}  mean depth {:.2}  blocks {}  cross-server frag blocks {}",
            report.queue.max_depth,
            report.queue.mean_depth,
            report.queue.dispatch_blocks,
            report.queue.fragmentation_blocks
        );
        for s in &report.shards {
            println!(
                "  shard {:>2} {:<14} {:>3} jobs  util {:>5.1}%  gpu-seconds {:>10.0}",
                s.server,
                s.machine,
                s.jobs_completed,
                s.utilization * 100.0,
                s.gpu_seconds
            );
        }
    }
    if let Some(path) = json_file {
        std::fs::write(&path, mapa::report::to_json(&report))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("report JSON written to {path}");
    }
    println!("\nper-job log (id, workload, server, gpus, effbw, exec):");
    for r in &report.records {
        println!(
            "  {:>4} {:<14} s{} {:?} {:>6.1} GB/s {:>8.0} s",
            r.job.id,
            r.job.workload.name(),
            r.server,
            r.gpus,
            r.predicted_eff_bw,
            r.execution_seconds
        );
    }
    Ok(())
}

/// Parses the `--grid` axis syntax: `;`-separated `axis=v1,v2,...`
/// entries applied over the grid's defaults.
fn apply_grid_axes(grid: &mut CampaignGrid, spec: &str) -> Result<(), String> {
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let (axis, values) = entry
            .split_once('=')
            .ok_or_else(|| format!("grid entry '{entry}' is not axis=v1,v2,..."))?;
        let values: Vec<&str> = values
            .split(',')
            .map(str::trim)
            .filter(|v| !v.is_empty())
            .collect();
        if values.is_empty() {
            return Err(format!("grid axis '{axis}' has no values"));
        }
        let parse_usizes = |axis: &str| -> Result<Vec<usize>, String> {
            values
                .iter()
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("grid axis '{axis}': '{v}' is not a number"))
                })
                .collect()
        };
        match axis.trim() {
            "server-policies" => {
                grid.server_policies = values.iter().map(ToString::to_string).collect();
            }
            "alloc-policies" | "policies" => {
                grid.alloc_policies = values.iter().map(ToString::to_string).collect();
            }
            "shards" => grid.shards = parse_usizes("shards")?,
            "jobs" => grid.job_counts = parse_usizes("jobs")?,
            "dispatch" => {
                grid.dispatch = values
                    .iter()
                    .map(|v| {
                        dispatch_mode_by_name(v).ok_or_else(|| {
                            format!(
                                "unknown dispatch mode '{v}' (choose from: {})",
                                DISPATCH_MODE_NAMES.join(" | ")
                            )
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => {
                return Err(format!(
                    "unknown grid axis '{other}' (choose from: server-policies | \
                     alloc-policies | shards | jobs | dispatch)"
                ))
            }
        }
    }
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let mut machine_arg: Option<String> = None;
    let mut grid_arg: Option<String> = None;
    let mut replications: Option<usize> = None;
    let mut base_seed: Option<u64> = None;
    let mut poisson_arg: Option<String> = None;
    let mut partition_args: Vec<String> = Vec::new();
    let mut inference_mix: Option<f64> = None;
    let mut queue_depth: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut json_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--machine" => machine_arg = Some(parse_flag(&mut it, "--machine")?),
            "--grid" => grid_arg = Some(parse_flag(&mut it, "--grid")?),
            "--replications" => replications = Some(parse_flag(&mut it, "--replications")?),
            "--base-seed" => base_seed = Some(parse_flag(&mut it, "--base-seed")?),
            "--poisson" => poisson_arg = Some(parse_flag(&mut it, "--poisson")?),
            "--partition" => partition_args.push(parse_flag(&mut it, "--partition")?),
            "--inference-mix" => inference_mix = Some(parse_flag(&mut it, "--inference-mix")?),
            "--shard-queue-depth" => {
                queue_depth = Some(parse_flag(&mut it, "--shard-queue-depth")?)
            }
            "--threads" => threads = Some(parse_flag(&mut it, "--threads")?),
            "--json" => json_file = Some(parse_flag(&mut it, "--json")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }

    let machine = resolve_machine(&machine_arg.ok_or("--machine is required")?)?;
    let mut grid = CampaignGrid::new(machine);
    if let Some(spec) = grid_arg.as_deref() {
        apply_grid_axes(&mut grid, spec)?;
    }
    if let Some(n) = replications {
        if n == 0 {
            return Err("--replications must be at least 1".to_string());
        }
        grid.replications = n;
    }
    if let Some(s) = base_seed {
        grid.base_seed = s;
    }
    // Arrival-intensity axis: a comma list of mean gaps; the keyword
    // `batch` spells the all-at-t=0 cell, so `--poisson batch,60,300`
    // sweeps batch against two Poisson intensities.
    if let Some(spec) = poisson_arg.as_deref() {
        let mut gaps = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part.eq_ignore_ascii_case("batch") {
                gaps.push(None);
            } else {
                let gap: f64 = part
                    .parse()
                    .map_err(|_| format!("--poisson: '{part}' is neither a gap nor 'batch'"))?;
                gaps.push(Some(gap));
            }
        }
        if gaps.is_empty() {
            return Err("--poisson needs at least one gap or 'batch'".to_string());
        }
        grid.arrival_gaps = gaps;
    }
    // Partition-plan axis: each --partition adds one cell value; `none`
    // (or `whole`) spells the unpartitioned machine.
    if !partition_args.is_empty() {
        let mut partitions = Vec::new();
        for spec in &partition_args {
            let spec = spec.trim();
            if spec.eq_ignore_ascii_case("none") || spec.eq_ignore_ascii_case("whole") {
                partitions.push(None);
            } else {
                let plan =
                    PartitionPlan::parse(spec).map_err(|e| format!("bad --partition plan: {e}"))?;
                if plan.is_empty() {
                    return Err(
                        "--partition needs gpu:slices splits (or the keyword 'none')".to_string(),
                    );
                }
                partitions.push(Some(plan));
            }
        }
        grid.partitions = partitions;
    }
    if let Some(frac) = inference_mix {
        if !(0.0..=1.0).contains(&frac) {
            return Err("--inference-mix must be a fraction in [0, 1]".to_string());
        }
        grid.mix.inference_fraction = frac;
    }
    if let Some(depth) = queue_depth {
        if depth == 0 {
            return Err("--shard-queue-depth must be at least 1".to_string());
        }
        grid.shard_queue_depth = depth;
    }
    let pool = Arc::new(match threads {
        Some(0) => return Err("--threads must be at least 1".to_string()),
        Some(n) => WorkerPool::new(n),
        None => WorkerPool::with_default_threads(),
    });

    let summaries = grid.run(&pool)?;
    println!(
        "campaign: {} cells x {} replications (base seed {}, {} workers)",
        summaries.len(),
        grid.replications,
        grid.base_seed,
        pool.threads()
    );
    println!(
        "{:<55} {:>16} {:>18} {:>8} {:>8} {:>8}",
        "cell", "makespan (s)", "jobs/hour", "p50 wait", "p95", "p99"
    );
    for s in &summaries {
        println!(
            "{:<55} {:>8.0} ±{:>5.0} {:>10.1} ±{:>5.1} {:>8.1} {:>8.1} {:>8.1}",
            s.label,
            s.makespan_seconds.mean,
            s.makespan_seconds.ci95,
            s.throughput_jobs_per_hour.mean,
            s.throughput_jobs_per_hour.ci95,
            s.queue_wait_p50_seconds,
            s.queue_wait_p95_seconds,
            s.queue_wait_p99_seconds
        );
    }
    if let Some(path) = json_file {
        let doc = mapa::campaign::campaign_to_json(&summaries, grid.replications, grid.base_seed);
        std::fs::write(&path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("campaign JSON written to {path}");
    }
    Ok(())
}
