//! `mapa-agent` — the real-hardware actuation front end.
//!
//! ```text
//! mapa-agent probe    [--probe smi|fake:MACHINE] [--json FILE]
//! mapa-agent status   [--probe ...] [--state-dir DIR] [--json FILE]
//! mapa-agent allocate --gpus N [--probe ...] [--state-dir DIR]
//!                     [--policy NAME] [--tag TEXT] [--json FILE]
//! mapa-agent release  --lease ID [--state-dir DIR]
//! ```
//!
//! The agent probes the machine (by default through `nvidia-smi`; with
//! `--probe fake:MACHINE` through the deterministic fake, so everything
//! works offline), maps what it sees onto a MAPA machine description,
//! places the request with the same allocator the simulator uses, and
//! actuates by printing a `CUDA_VISIBLE_DEVICES` line and recording a
//! lease in the lockfile-coordinated state directory. Concurrent agents
//! pointed at one `--state-dir` never double-book a GPU.

use mapa::agent::{Agent, AllocateRequest, FakeProbe, GpuProbe, SmiProbe, StateDir};
use mapa::report::{agent_placement_to_json, agent_status_to_json};
use mapa::topology::machines;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mapa-agent probe    [--probe smi|fake:MACHINE] [--json FILE]
  mapa-agent status   [--probe smi|fake:MACHINE] [--state-dir DIR] [--json FILE]
  mapa-agent allocate --gpus N [--probe smi|fake:MACHINE] [--state-dir DIR]
                      [--policy NAME] [--tag TEXT] [--json FILE]
  mapa-agent release  --lease ID [--state-dir DIR]

probes:   smi (default; parses `nvidia-smi` output) or fake:MACHINE for
          any built-in machine, e.g. fake:dgx-1-v100 — fully offline
policies: baseline | topo-aware | greedy | preserve | effbw-greedy
          (default effbw-greedy)
state:    --state-dir defaults to .mapa-agent; all agents coordinating
          one machine must share it";

/// Either probe backend behind one seam.
enum AnyProbe {
    Smi(SmiProbe),
    Fake(FakeProbe),
}

impl GpuProbe for AnyProbe {
    fn source(&self) -> String {
        match self {
            AnyProbe::Smi(p) => p.source(),
            AnyProbe::Fake(p) => p.source(),
        }
    }

    fn snapshot(&mut self) -> Result<mapa::agent::ProbeSnapshot, mapa::agent::ProbeError> {
        match self {
            AnyProbe::Smi(p) => p.snapshot(),
            AnyProbe::Fake(p) => p.snapshot(),
        }
    }
}

fn resolve_probe(spec: &str) -> Result<AnyProbe, String> {
    if spec == "smi" {
        return Ok(AnyProbe::Smi(SmiProbe::new()));
    }
    let Some(machine_name) = spec.strip_prefix("fake:") else {
        return Err(format!(
            "unknown probe '{spec}' (expected smi or fake:MACHINE)"
        ));
    };
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase()
    };
    let machine = machines::all_machines()
        .into_iter()
        .find(|m| norm(m.name()) == norm(machine_name))
        .ok_or_else(|| {
            let names: Vec<String> = machines::all_machines()
                .iter()
                .map(|m| {
                    m.name()
                        .chars()
                        .map(|c| {
                            if c.is_alphanumeric() {
                                c.to_ascii_lowercase()
                            } else {
                                '-'
                            }
                        })
                        .collect()
                })
                .collect();
            format!(
                "unknown fake machine '{machine_name}' (try one of: {})",
                names.join(", ")
            )
        })?;
    let model = if machine.name().contains("P100") {
        "Tesla P100-SXM2-16GB"
    } else {
        "Tesla V100-SXM2-16GB"
    };
    Ok(AnyProbe::Fake(FakeProbe::from_machine(
        &machine, model, 16_160,
    )))
}

#[derive(Default)]
struct CliOpts {
    probe: Option<String>,
    state_dir: Option<String>,
    policy: Option<String>,
    tag: Option<String>,
    json: Option<String>,
    gpus: Option<usize>,
    lease: Option<u64>,
}

fn parse_opts(args: &[String]) -> Result<CliOpts, String> {
    let mut opts = CliOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--probe" => opts.probe = Some(take("--probe")?),
            "--state-dir" => opts.state_dir = Some(take("--state-dir")?),
            "--policy" => opts.policy = Some(take("--policy")?),
            "--tag" => opts.tag = Some(take("--tag")?),
            "--json" => opts.json = Some(take("--json")?),
            "--gpus" => {
                opts.gpus = Some(
                    take("--gpus")?
                        .parse()
                        .map_err(|_| "--gpus: invalid value".to_string())?,
                );
            }
            "--lease" => {
                opts.lease = Some(
                    take("--lease")?
                        .parse()
                        .map_err(|_| "--lease: invalid value".to_string())?,
                );
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn build_agent(opts: &CliOpts) -> Result<Agent<AnyProbe>, String> {
    let probe = resolve_probe(opts.probe.as_deref().unwrap_or("smi"))?;
    let state = StateDir::new(opts.state_dir.as_deref().unwrap_or(".mapa-agent"))
        .map_err(|e| e.to_string())?;
    let agent = Agent::new(probe, state);
    match &opts.policy {
        Some(name) => agent.with_policy(name).map_err(|e| e.to_string()),
        None => Ok(agent),
    }
}

fn write_artifact(path: &Option<String>, json: &str) -> Result<(), String> {
    if let Some(path) = path {
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => return Err("no subcommand".to_string()),
    };
    let opts = parse_opts(rest)?;
    match cmd {
        "probe" => cmd_probe(&opts),
        "status" => cmd_status(&opts),
        "allocate" => cmd_allocate(&opts),
        "release" => cmd_release(&opts),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn cmd_probe(opts: &CliOpts) -> Result<(), String> {
    let mut agent = build_agent(opts)?;
    let (snapshot, machine) = agent.probe_machine().map_err(|e| e.to_string())?;
    println!("host {}: {} GPUs", snapshot.hostname, snapshot.gpu_count());
    match &machine.matched_profile {
        Some(p) => println!("machine: {p} (matched built-in profile)"),
        None => println!("machine: {} (synthesized)", machine.topology.name()),
    }
    for gpu in &snapshot.gpus {
        println!(
            "  GPU{}: {}, {} MiB used / {} MiB, util {}%, {} process(es)",
            gpu.index,
            gpu.model,
            gpu.memory_used_mib,
            gpu.memory_total_mib,
            gpu.utilization_pct,
            gpu.processes.len()
        );
    }
    // The probe artifact is a status-shaped report (ledger will be
    // empty/absent); one schema for CI to check on every subcommand.
    if opts.json.is_some() {
        let status = build_agent(opts)?.status().map_err(|e| e.to_string())?;
        write_artifact(&opts.json, &agent_status_to_json(&status))?;
    }
    Ok(())
}

fn cmd_status(opts: &CliOpts) -> Result<(), String> {
    let mut agent = build_agent(opts)?;
    let status = agent.status().map_err(|e| e.to_string())?;
    let profile = status
        .machine
        .matched_profile
        .clone()
        .unwrap_or_else(|| format!("{} (synthesized)", status.machine.topology.name()));
    println!("host {} via {}: {profile}", status.hostname, status.source);
    for gpu in &status.gpus {
        let lease = gpu
            .leased_by
            .map_or_else(|| "-".to_string(), |id| format!("lease {id}"));
        println!("  GPU{}: {:<9} {:?}", gpu.index, lease, gpu.occupancy);
    }
    println!(
        "free: {:?}; {} lease(s)",
        status.free_gpus(),
        status.leases.len()
    );
    for lease in &status.leases {
        println!(
            "  lease {} pid {} gpus {:?} tag '{}'",
            lease.id, lease.pid, lease.gpus, lease.tag
        );
    }
    write_artifact(&opts.json, &agent_status_to_json(&status))
}

fn cmd_allocate(opts: &CliOpts) -> Result<(), String> {
    let gpus = opts.gpus.ok_or("allocate needs --gpus N")?;
    let mut agent = build_agent(opts)?;
    let mut request = AllocateRequest::new(gpus);
    if let Some(tag) = &opts.tag {
        request = request.with_tag(tag.clone());
    }
    let placement = agent.allocate(&request).map_err(|e| e.to_string())?;
    println!(
        "lease {} on {} via {} policy: GPUs {:?}",
        placement.lease_id,
        placement
            .machine
            .matched_profile
            .as_deref()
            .unwrap_or(placement.machine.topology.name()),
        placement.policy,
        placement.gpus
    );
    println!("CUDA_VISIBLE_DEVICES={}", placement.cuda_visible_devices);
    write_artifact(&opts.json, &agent_placement_to_json(&placement))
}

fn cmd_release(opts: &CliOpts) -> Result<(), String> {
    let lease = opts.lease.ok_or("release needs --lease ID")?;
    // Release never probes hardware; any probe backend satisfies the
    // type, so hand it the offline fake.
    let state = StateDir::new(opts.state_dir.as_deref().unwrap_or(".mapa-agent"))
        .map_err(|e| e.to_string())?;
    let mut agent = Agent::new(AnyProbe::Fake(FakeProbe::dgx1_v100()), state);
    let gpus = agent.release(lease).map_err(|e| e.to_string())?;
    println!("released lease {lease}: GPUs {gpus:?}");
    Ok(())
}
