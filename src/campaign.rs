//! Cluster campaign grids: the façade layer between the generic
//! campaign runner ([`mapa_sim::campaign`]) and the fleet backend
//! ([`mapa_cluster::Cluster`]).
//!
//! A [`CampaignGrid`] names a cross-product of server policies ×
//! allocation policies × fleet sizes × load levels × dispatch modes ×
//! arrival intensities × partition plans;
//! [`CampaignGrid::run`] flattens it into cells, validates every policy
//! name up front, pre-fits the effective-bandwidth model once per
//! machine type, and fans the cells out over one shared worker pool.
//! Every cell's replication `r` draws its job mix and arrival stream
//! from [`mapa_sim::campaign::crn_seed`]`(base_seed, r)` — common random
//! numbers, so cells differ only by their configuration and paired
//! comparisons subtract away the arrival noise.

use crate::report::json_escape;
use mapa_cluster::{server_policy_by_name, Cluster, DispatchMode, DEFAULT_SHARD_QUEUE_DEPTH};
pub use mapa_core::policy::allocation_policy_by_name;
use mapa_core::policy::BaselinePolicy;
use mapa_isomorph::WorkerPool;
use mapa_model::EffBwModel;
use mapa_sim::campaign::{run_campaign, CampaignSpec, CellSummary};
use mapa_sim::{ArrivalProcess, Engine, SimConfig, SimReport};
use mapa_topology::{PartitionPlan, Topology};
use mapa_workloads::generator::{self, JobMixConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// One flattened campaign cell: a complete cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Cluster-level server-selection policy name.
    pub server_policy: String,
    /// Per-shard allocation policy name.
    pub alloc_policy: String,
    /// Number of identical shards in the fleet.
    pub shards: usize,
    /// Jobs per replication (the load level).
    pub jobs: usize,
    /// Dispatch mode for the queued path.
    pub dispatch: DispatchMode,
    /// Arrival-intensity axis value: `Some(gap)` runs Poisson arrivals
    /// with that mean inter-arrival gap (seconds), `None` submits all
    /// jobs at t=0 (batch).
    pub poisson_gap: Option<f64>,
    /// Partition-plan axis value: `Some(plan)` runs every shard as the
    /// MIG-partitioned machine, `None` runs the whole-GPU machine.
    pub partition: Option<PartitionPlan>,
}

impl GridCell {
    /// The cell's display label, used in summary tables and JSON. Axis
    /// segments for batch arrivals and unpartitioned machines are
    /// omitted, so pre-existing grids keep their historical labels.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/shards={}/jobs={}/{}",
            self.server_policy,
            self.alloc_policy,
            self.shards,
            self.jobs,
            self.dispatch.name()
        );
        if let Some(gap) = self.poisson_gap {
            label.push_str(&format!("/gap={gap}"));
        }
        if let Some(plan) = &self.partition {
            label.push_str(&format!("/mig={plan}"));
        }
        label
    }
}

/// A campaign over homogeneous [`Cluster`] fleets: the cross-product of
/// the axis vectors below, each cell replicated `replications` times
/// under common random numbers.
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    /// The machine every shard runs (homogeneous fleets).
    pub machine: Topology,
    /// Server-selection policy axis (names per
    /// [`server_policy_by_name`]).
    pub server_policies: Vec<String>,
    /// Allocation policy axis (names per [`allocation_policy_by_name`]).
    pub alloc_policies: Vec<String>,
    /// Fleet-size axis.
    pub shards: Vec<usize>,
    /// Load axis: jobs per replication.
    pub job_counts: Vec<usize>,
    /// Dispatch-mode axis.
    pub dispatch: Vec<DispatchMode>,
    /// Per-shard queue bound for the queued dispatch path.
    pub shard_queue_depth: usize,
    /// Arrival-intensity axis: each `Some(gap)` cell runs Poisson
    /// arrivals with that mean inter-arrival gap (seconds), seeded by
    /// the replication's CRN seed; a `None` cell submits all jobs at
    /// t=0. Default `vec![None]` (batch only).
    pub arrival_gaps: Vec<Option<f64>>,
    /// Partition-plan axis: each `Some(plan)` cell applies the MIG plan
    /// to every shard's machine; a `None` cell runs the whole-GPU
    /// machine. Default `vec![None]` (unpartitioned only).
    pub partitions: Vec<Option<PartitionPlan>>,
    /// The job-mix template every cell draws from. `job_count` is
    /// overridden per cell by the load axis; everything else (GPU-size
    /// range, workload pool, inference fraction, SLO) is shared so CRN
    /// pairing holds across cells.
    pub mix: JobMixConfig,
    /// Seeded replications per cell.
    pub replications: usize,
    /// CRN base seed (see [`mapa_sim::campaign::crn_seed`]).
    pub base_seed: u64,
}

impl CampaignGrid {
    /// A 1-cell grid with sensible defaults, ready for axis extension.
    #[must_use]
    pub fn new(machine: Topology) -> Self {
        Self {
            machine,
            server_policies: vec!["round-robin".into()],
            alloc_policies: vec!["preserve".into()],
            shards: vec![4],
            job_counts: vec![200],
            dispatch: vec![DispatchMode::Sequential],
            shard_queue_depth: DEFAULT_SHARD_QUEUE_DEPTH,
            arrival_gaps: vec![None],
            partitions: vec![None],
            mix: JobMixConfig::default(),
            replications: 5,
            base_seed: 42,
        }
    }

    /// Flattens the grid into cells, slowest axis first (server policy,
    /// then allocation policy, shards, jobs, dispatch, arrival gap,
    /// partition plan) — the output order of [`CampaignGrid::run`].
    #[must_use]
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::new();
        for sp in &self.server_policies {
            for ap in &self.alloc_policies {
                for &shards in &self.shards {
                    for &jobs in &self.job_counts {
                        for &dispatch in &self.dispatch {
                            for &gap in &self.arrival_gaps {
                                for partition in &self.partitions {
                                    out.push(GridCell {
                                        server_policy: sp.clone(),
                                        alloc_policy: ap.clone(),
                                        shards,
                                        jobs,
                                        dispatch,
                                        poisson_gap: gap,
                                        partition: partition.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Validates the grid without running it.
    ///
    /// # Errors
    /// Returns a message naming the first unknown policy name or
    /// degenerate axis.
    pub fn validate(&self) -> Result<(), String> {
        for sp in &self.server_policies {
            if server_policy_by_name(sp).is_none() {
                return Err(format!("unknown server policy '{sp}'"));
            }
        }
        for ap in &self.alloc_policies {
            if allocation_policy_by_name(ap).is_none() {
                return Err(format!("unknown allocation policy '{ap}'"));
            }
        }
        if self.shards.contains(&0) {
            return Err("shard counts must be at least 1".into());
        }
        if self.server_policies.is_empty()
            || self.alloc_policies.is_empty()
            || self.shards.is_empty()
            || self.job_counts.is_empty()
            || self.dispatch.is_empty()
            || self.arrival_gaps.is_empty()
            || self.partitions.is_empty()
        {
            return Err("every grid axis needs at least one value".into());
        }
        for gap in self.arrival_gaps.iter().flatten() {
            if !(*gap > 0.0 && gap.is_finite()) {
                return Err("poisson mean gap must be positive and finite".into());
            }
        }
        for plan in self.partitions.iter().flatten() {
            if plan.is_empty() {
                return Err("an empty partition plan: spell the whole-GPU cell as None".into());
            }
            let n = self.machine.gpu_count();
            if let Some((gpu, _)) = plan.splits().find(|&(gpu, _)| gpu >= n) {
                return Err(format!(
                    "partition plan '{plan}' splits GPU {gpu}, but '{}' has only {n} GPUs",
                    self.machine.name()
                ));
            }
            // Whole-GPU training jobs never land on slices, so every plan
            // must leave enough unsplit GPUs for the largest whole demand
            // the mix can draw — otherwise a replication deadlocks on an
            // unplaceable job.
            let whole_left = n - plan.splits().count();
            if whole_left < self.mix.gpus_max {
                return Err(format!(
                    "partition plan '{plan}' leaves {whole_left} whole GPUs, but the mix \
                     draws whole-GPU jobs up to {}",
                    self.mix.gpus_max
                ));
            }
        }
        Ok(())
    }

    /// Runs the campaign on `pool`: one pool task per cell, replications
    /// sequential within a cell, results in [`CampaignGrid::cells`]
    /// order. The fitted effective-bandwidth model is computed once here
    /// and shared by every cell (context hoisting) — replications pay
    /// only job generation and simulation, never a model refit or a
    /// thread-pool spawn. Output tables are bit-identical for any pool
    /// size.
    ///
    /// # Errors
    /// Returns [`CampaignGrid::validate`]'s error without running
    /// anything when the grid is invalid.
    pub fn run(&self, pool: &Arc<WorkerPool>) -> Result<Vec<CellSummary>, String> {
        self.validate()?;
        // Pre-fit the model for every machine variant the partition axis
        // produces, so cells only ever hit the cache inside
        // `Cluster::with_shared_resources` (a partitioned machine's name
        // encodes its plan, so each variant keys its own model).
        let mut models: HashMap<String, EffBwModel> = HashMap::new();
        for partition in &self.partitions {
            let _ = Cluster::with_shared_resources(
                vec![machine_for(&self.machine, partition.as_ref())],
                || Box::new(BaselinePolicy),
                server_policy_by_name("round-robin").expect("built-in policy"),
                Arc::clone(pool),
                &mut models,
            );
        }
        let ctx_proto = CellContext {
            machine: self.machine.clone(),
            pool: Arc::clone(pool),
            models,
            queue_depth: self.shard_queue_depth,
            mix: self.mix.clone(),
            cell: None,
        };
        let spec = CampaignSpec {
            cells: self.cells(),
            replications: self.replications,
            base_seed: self.base_seed,
        };
        Ok(run_campaign(
            spec,
            pool,
            GridCell::label,
            move |cell: &GridCell| CellContext {
                cell: Some(cell.clone()),
                models: ctx_proto.models.clone(),
                machine: ctx_proto.machine.clone(),
                pool: Arc::clone(&ctx_proto.pool),
                queue_depth: ctx_proto.queue_depth,
                mix: ctx_proto.mix.clone(),
            },
            CellContext::run_replication,
        ))
    }
}

/// The machine a cell's shards run: the base machine, or the plan
/// applied to it.
fn machine_for(base: &Topology, partition: Option<&PartitionPlan>) -> Topology {
    match partition {
        Some(plan) => plan.apply(base).into_topology(),
        None => base.clone(),
    }
}

/// Per-cell context: everything immutable a replication needs, built
/// once per cell. Replications reset simulation state by constructing a
/// fresh [`Cluster`], but reuse the fitted model map and the worker
/// pool.
struct CellContext {
    machine: Topology,
    pool: Arc<WorkerPool>,
    models: HashMap<String, EffBwModel>,
    queue_depth: usize,
    mix: JobMixConfig,
    cell: Option<GridCell>,
}

impl CellContext {
    fn run_replication(&mut self, seed: u64) -> SimReport {
        let cell = self.cell.as_ref().expect("cell set by setup").clone();
        let machine = machine_for(&self.machine, cell.partition.as_ref());
        let cluster = Cluster::with_shared_resources(
            vec![machine; cell.shards],
            || allocation_policy_by_name(&cell.alloc_policy).expect("validated before the run"),
            server_policy_by_name(&cell.server_policy).expect("validated before the run"),
            Arc::clone(&self.pool),
            &mut self.models,
        )
        .with_dispatch(cell.dispatch)
        .with_shard_queues(self.queue_depth);
        let mix = JobMixConfig {
            job_count: cell.jobs,
            ..self.mix.clone()
        };
        // CRN: the job mix and the arrival process both draw from the
        // replication's seed — and from nothing cell-specific beyond the
        // load level, so paired comparisons subtract the arrival noise.
        let jobs = generator::generate_jobs(&mix, seed);
        let arrivals = match cell.poisson_gap {
            Some(mean_gap) => ArrivalProcess::Poisson { mean_gap, seed },
            None => ArrivalProcess::Batch,
        };
        Engine::over(cluster)
            .with_config(SimConfig {
                arrivals,
                ..SimConfig::default()
            })
            .run(&jobs)
    }
}

/// Serializes campaign results to the CLI's `campaign --json` schema:
/// the grid parameters and one object per cell, in cell order. Schedule
/// digests are emitted as hex *strings* — the reader parses numbers as
/// `f64`, which cannot represent all 64-bit digests exactly. A cell's
/// `slo_attainment` is an object (mean/ci95 over the replications that
/// had SLO-tagged jobs, plus how many did) or `null` when no replication
/// had any — never a vacuous 1.0.
#[must_use]
pub fn campaign_to_json(summaries: &[CellSummary], replications: usize, base_seed: u64) -> String {
    let cells: Vec<String> = summaries
        .iter()
        .map(|s| {
            let slo = s.slo_attainment.as_ref().map_or_else(
                || "null".to_string(),
                |a| {
                    format!(
                        "{{\"mean\": {:.6}, \"ci95\": {:.6}, \"replications\": {}}}",
                        a.mean, a.ci95, s.slo_replications
                    )
                },
            );
            format!(
                "    {{\"label\": \"{}\", \"replications\": {}, \"jobs\": {}, \
                 \"makespan_seconds\": {{\"mean\": {:.6}, \"ci95\": {:.6}}}, \
                 \"throughput_jobs_per_hour\": {{\"mean\": {:.6}, \"ci95\": {:.6}}}, \
                 \"queue_wait_mean_seconds\": {{\"mean\": {:.6}, \"ci95\": {:.6}}}, \
                 \"queue_wait_p50_seconds\": {:.6}, \"queue_wait_p95_seconds\": {:.6}, \
                 \"queue_wait_p99_seconds\": {:.6}, \"slo_attainment\": {slo}, \
                 \"schedule_digest\": \"{:#018x}\"}}",
                json_escape(&s.label),
                s.replications,
                s.jobs,
                s.makespan_seconds.mean,
                s.makespan_seconds.ci95,
                s.throughput_jobs_per_hour.mean,
                s.throughput_jobs_per_hour.ci95,
                s.queue_wait_mean_seconds.mean,
                s.queue_wait_mean_seconds.ci95,
                s.queue_wait_p50_seconds,
                s.queue_wait_p95_seconds,
                s.queue_wait_p99_seconds,
                s.schedule_digest
            )
        })
        .collect();
    format!(
        "{{\n  \"campaign\": {{\"replications\": {replications}, \"base_seed\": {base_seed}, \
         \"cells\": {}}},\n  \"cells\": [\n{}\n  ],\n  \"schema\": 1\n}}\n",
        summaries.len(),
        cells.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::parse_json;
    use mapa_topology::machines;

    fn tiny_grid() -> CampaignGrid {
        CampaignGrid {
            server_policies: vec!["round-robin".into(), "least-loaded".into()],
            alloc_policies: vec!["baseline".into()],
            shards: vec![2],
            job_counts: vec![30],
            dispatch: vec![DispatchMode::Sequential],
            replications: 2,
            base_seed: 7,
            ..CampaignGrid::new(machines::dgx1_v100())
        }
    }

    #[test]
    fn grid_flattens_in_axis_order() {
        let grid = tiny_grid();
        let cells = grid.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].server_policy, "round-robin");
        assert_eq!(cells[1].server_policy, "least-loaded");
        assert_eq!(
            cells[0].label(),
            "round-robin/baseline/shards=2/jobs=30/sequential"
        );
    }

    #[test]
    fn validate_rejects_unknown_policies_and_degenerate_axes() {
        let mut grid = tiny_grid();
        grid.alloc_policies = vec!["nope".into()];
        assert!(grid.validate().unwrap_err().contains("nope"));
        let mut grid = tiny_grid();
        grid.shards = vec![0];
        assert!(grid.validate().is_err());
        let mut grid = tiny_grid();
        grid.job_counts.clear();
        assert!(grid.validate().is_err());
        let mut grid = tiny_grid();
        grid.arrival_gaps = vec![Some(0.0)];
        assert!(grid.validate().is_err());
        let mut grid = tiny_grid();
        grid.partitions = vec![Some(PartitionPlan::new())];
        assert!(grid.validate().unwrap_err().contains("empty partition"));
        let mut grid = tiny_grid();
        grid.partitions = vec![Some(PartitionPlan::new().split(9, 2))];
        assert!(grid.validate().unwrap_err().contains("only 8 GPUs"));
        // Splitting 4 of 8 GPUs leaves 4 whole < gpus_max = 5.
        let mut grid = tiny_grid();
        grid.partitions = vec![Some(
            PartitionPlan::new()
                .split(0, 2)
                .split(1, 2)
                .split(2, 2)
                .split(3, 2),
        )];
        assert!(grid.validate().unwrap_err().contains("whole GPUs"));
    }

    #[test]
    fn arrival_and_partition_axes_extend_the_grid() {
        let mut grid = tiny_grid();
        grid.server_policies = vec!["round-robin".into()];
        grid.arrival_gaps = vec![None, Some(12.0)];
        grid.partitions = vec![None, Some(PartitionPlan::new().split(0, 4))];
        grid.validate().unwrap();
        let cells = grid.cells();
        assert_eq!(cells.len(), 4);
        let labels: Vec<String> = cells.iter().map(GridCell::label).collect();
        assert_eq!(
            labels[0],
            "round-robin/baseline/shards=2/jobs=30/sequential"
        );
        assert_eq!(
            labels[1],
            "round-robin/baseline/shards=2/jobs=30/sequential/mig=0:4"
        );
        assert_eq!(
            labels[2],
            "round-robin/baseline/shards=2/jobs=30/sequential/gap=12"
        );
        assert_eq!(
            labels[3],
            "round-robin/baseline/shards=2/jobs=30/sequential/gap=12/mig=0:4"
        );
    }

    #[test]
    fn partitioned_cells_run_and_differ_from_whole_cells() {
        let pool = Arc::new(WorkerPool::new(2));
        let mut grid = tiny_grid();
        grid.server_policies = vec!["round-robin".into()];
        grid.alloc_policies = vec!["greedy".into()];
        grid.job_counts = vec![20];
        grid.partitions = vec![None, Some(PartitionPlan::new().split(0, 4))];
        grid.mix.inference_fraction = 0.3;
        let summaries = grid.run(&pool).unwrap();
        assert_eq!(summaries.len(), 2);
        // CRN: both cells ran the identical job mix, but on different
        // machines — the schedules must genuinely differ.
        assert_ne!(
            summaries[0].schedule_digest, summaries[1].schedule_digest,
            "partitioning must change the schedule"
        );
    }

    #[test]
    fn campaign_json_round_trips() {
        let pool = Arc::new(WorkerPool::new(2));
        let grid = tiny_grid();
        let summaries = grid.run(&pool).unwrap();
        assert_eq!(summaries.len(), 2);
        let doc = campaign_to_json(&summaries, grid.replications, grid.base_seed);
        let v = parse_json(&doc).unwrap();
        assert_eq!(
            v.get("campaign").unwrap().get("cells").unwrap().as_f64(),
            Some(2.0)
        );
        let cells = v.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        for (cell, summary) in cells.iter().zip(&summaries) {
            assert_eq!(
                cell.get("label").unwrap().as_str(),
                Some(summary.label.as_str())
            );
            assert_eq!(
                cell.get("schedule_digest").unwrap().as_str(),
                Some(format!("{:#018x}", summary.schedule_digest).as_str())
            );
            assert!(
                cell.get("makespan_seconds")
                    .unwrap()
                    .get("mean")
                    .unwrap()
                    .as_f64()
                    .unwrap()
                    > 0.0
            );
            // The default mix has no SLO-tagged jobs: attainment is null,
            // not a vacuous 1.0.
            assert_eq!(cell.get("slo_attainment"), Some(&crate::report::Json::Null));
        }
    }

    #[test]
    fn campaign_json_reports_attainment_when_cells_have_slo_jobs() {
        let pool = Arc::new(WorkerPool::new(2));
        let mut grid = tiny_grid();
        grid.server_policies = vec!["round-robin".into()];
        grid.mix.inference_fraction = 0.5;
        let summaries = grid.run(&pool).unwrap();
        let doc = campaign_to_json(&summaries, grid.replications, grid.base_seed);
        let v = parse_json(&doc).unwrap();
        let cell = &v.get("cells").unwrap().as_array().unwrap()[0];
        let slo = cell.get("slo_attainment").unwrap();
        let mean = slo.get("mean").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&mean), "attainment in [0,1]: {mean}");
        assert_eq!(
            slo.get("replications").unwrap().as_f64(),
            Some(grid.replications as f64),
            "every replication drew SLO jobs"
        );
    }
}
