//! Cluster campaign grids: the façade layer between the generic
//! campaign runner ([`mapa_sim::campaign`]) and the fleet backend
//! ([`mapa_cluster::Cluster`]).
//!
//! A [`CampaignGrid`] names a cross-product of server policies ×
//! allocation policies × fleet sizes × load levels × dispatch modes;
//! [`CampaignGrid::run`] flattens it into cells, validates every policy
//! name up front, pre-fits the effective-bandwidth model once per
//! machine type, and fans the cells out over one shared worker pool.
//! Every cell's replication `r` draws its job mix and arrival stream
//! from [`mapa_sim::campaign::crn_seed`]`(base_seed, r)` — common random
//! numbers, so cells differ only by their configuration and paired
//! comparisons subtract away the arrival noise.

use crate::report::json_escape;
use mapa_cluster::{server_policy_by_name, Cluster, DispatchMode, DEFAULT_SHARD_QUEUE_DEPTH};
use mapa_core::policy::{
    AllocationPolicy, BaselinePolicy, EffBwGreedyPolicy, GreedyPolicy, PreservePolicy,
    TopoAwarePolicy,
};
use mapa_isomorph::WorkerPool;
use mapa_model::EffBwModel;
use mapa_sim::campaign::{run_campaign, CampaignSpec, CellSummary};
use mapa_sim::{ArrivalProcess, Engine, SimConfig, SimReport};
use mapa_topology::Topology;
use mapa_workloads::generator::{self, JobMixConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// The paper's allocation policies by CLI name (the same spellings
/// `mapa-sched --policy` accepts).
#[must_use]
pub fn allocation_policy_by_name(name: &str) -> Option<Box<dyn AllocationPolicy>> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Some(Box::new(BaselinePolicy)),
        "topo-aware" | "topoaware" => Some(Box::new(TopoAwarePolicy)),
        "greedy" => Some(Box::new(GreedyPolicy)),
        "preserve" | "preservation" => Some(Box::new(PreservePolicy)),
        "effbw-greedy" | "effbwgreedy" => Some(Box::new(EffBwGreedyPolicy)),
        _ => None,
    }
}

/// One flattened campaign cell: a complete cluster configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridCell {
    /// Cluster-level server-selection policy name.
    pub server_policy: String,
    /// Per-shard allocation policy name.
    pub alloc_policy: String,
    /// Number of identical shards in the fleet.
    pub shards: usize,
    /// Jobs per replication (the load level).
    pub jobs: usize,
    /// Dispatch mode for the queued path.
    pub dispatch: DispatchMode,
}

impl GridCell {
    /// The cell's display label, used in summary tables and JSON.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/shards={}/jobs={}/{}",
            self.server_policy,
            self.alloc_policy,
            self.shards,
            self.jobs,
            self.dispatch.name()
        )
    }
}

/// A campaign over homogeneous [`Cluster`] fleets: the cross-product of
/// the axis vectors below, each cell replicated `replications` times
/// under common random numbers.
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    /// The machine every shard runs (homogeneous fleets).
    pub machine: Topology,
    /// Server-selection policy axis (names per
    /// [`server_policy_by_name`]).
    pub server_policies: Vec<String>,
    /// Allocation policy axis (names per [`allocation_policy_by_name`]).
    pub alloc_policies: Vec<String>,
    /// Fleet-size axis.
    pub shards: Vec<usize>,
    /// Load axis: jobs per replication.
    pub job_counts: Vec<usize>,
    /// Dispatch-mode axis.
    pub dispatch: Vec<DispatchMode>,
    /// Per-shard queue bound for the queued dispatch path.
    pub shard_queue_depth: usize,
    /// `Some(gap)` runs Poisson arrivals with that mean inter-arrival
    /// gap (seconds), seeded by the replication's CRN seed; `None`
    /// submits all jobs at t=0.
    pub poisson_mean_gap: Option<f64>,
    /// Seeded replications per cell.
    pub replications: usize,
    /// CRN base seed (see [`mapa_sim::campaign::crn_seed`]).
    pub base_seed: u64,
}

impl CampaignGrid {
    /// A 1-cell grid with sensible defaults, ready for axis extension.
    #[must_use]
    pub fn new(machine: Topology) -> Self {
        Self {
            machine,
            server_policies: vec!["round-robin".into()],
            alloc_policies: vec!["preserve".into()],
            shards: vec![4],
            job_counts: vec![200],
            dispatch: vec![DispatchMode::Sequential],
            shard_queue_depth: DEFAULT_SHARD_QUEUE_DEPTH,
            poisson_mean_gap: None,
            replications: 5,
            base_seed: 42,
        }
    }

    /// Flattens the grid into cells, slowest axis first (server policy,
    /// then allocation policy, shards, jobs, dispatch) — the output
    /// order of [`CampaignGrid::run`].
    #[must_use]
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::new();
        for sp in &self.server_policies {
            for ap in &self.alloc_policies {
                for &shards in &self.shards {
                    for &jobs in &self.job_counts {
                        for &dispatch in &self.dispatch {
                            out.push(GridCell {
                                server_policy: sp.clone(),
                                alloc_policy: ap.clone(),
                                shards,
                                jobs,
                                dispatch,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Validates the grid without running it.
    ///
    /// # Errors
    /// Returns a message naming the first unknown policy name or
    /// degenerate axis.
    pub fn validate(&self) -> Result<(), String> {
        for sp in &self.server_policies {
            if server_policy_by_name(sp).is_none() {
                return Err(format!("unknown server policy '{sp}'"));
            }
        }
        for ap in &self.alloc_policies {
            if allocation_policy_by_name(ap).is_none() {
                return Err(format!("unknown allocation policy '{ap}'"));
            }
        }
        if self.shards.contains(&0) {
            return Err("shard counts must be at least 1".into());
        }
        if self.server_policies.is_empty()
            || self.alloc_policies.is_empty()
            || self.shards.is_empty()
            || self.job_counts.is_empty()
            || self.dispatch.is_empty()
        {
            return Err("every grid axis needs at least one value".into());
        }
        if let Some(gap) = self.poisson_mean_gap {
            if !(gap > 0.0 && gap.is_finite()) {
                return Err("poisson mean gap must be positive and finite".into());
            }
        }
        Ok(())
    }

    /// Runs the campaign on `pool`: one pool task per cell, replications
    /// sequential within a cell, results in [`CampaignGrid::cells`]
    /// order. The fitted effective-bandwidth model is computed once here
    /// and shared by every cell (context hoisting) — replications pay
    /// only job generation and simulation, never a model refit or a
    /// thread-pool spawn. Output tables are bit-identical for any pool
    /// size.
    ///
    /// # Errors
    /// Returns [`CampaignGrid::validate`]'s error without running
    /// anything when the grid is invalid.
    pub fn run(&self, pool: &Arc<WorkerPool>) -> Result<Vec<CellSummary>, String> {
        self.validate()?;
        // Pre-fit the model for the (single) machine type so cells only
        // ever hit the cache inside `Cluster::with_shared_resources`.
        let mut models: HashMap<String, EffBwModel> = HashMap::new();
        let _ = Cluster::with_shared_resources(
            vec![self.machine.clone()],
            || Box::new(BaselinePolicy),
            server_policy_by_name("round-robin").expect("built-in policy"),
            Arc::clone(pool),
            &mut models,
        );
        let ctx_proto = CellContext {
            machine: self.machine.clone(),
            pool: Arc::clone(pool),
            models,
            queue_depth: self.shard_queue_depth,
            poisson_mean_gap: self.poisson_mean_gap,
            cell: None,
        };
        let spec = CampaignSpec {
            cells: self.cells(),
            replications: self.replications,
            base_seed: self.base_seed,
        };
        Ok(run_campaign(
            spec,
            pool,
            GridCell::label,
            move |cell: &GridCell| CellContext {
                cell: Some(cell.clone()),
                models: ctx_proto.models.clone(),
                machine: ctx_proto.machine.clone(),
                pool: Arc::clone(&ctx_proto.pool),
                queue_depth: ctx_proto.queue_depth,
                poisson_mean_gap: ctx_proto.poisson_mean_gap,
            },
            CellContext::run_replication,
        ))
    }
}

/// Per-cell context: everything immutable a replication needs, built
/// once per cell. Replications reset simulation state by constructing a
/// fresh [`Cluster`], but reuse the fitted model map and the worker
/// pool.
struct CellContext {
    machine: Topology,
    pool: Arc<WorkerPool>,
    models: HashMap<String, EffBwModel>,
    queue_depth: usize,
    poisson_mean_gap: Option<f64>,
    cell: Option<GridCell>,
}

impl CellContext {
    fn run_replication(&mut self, seed: u64) -> SimReport {
        let cell = self.cell.as_ref().expect("cell set by setup").clone();
        let cluster = Cluster::with_shared_resources(
            vec![self.machine.clone(); cell.shards],
            || allocation_policy_by_name(&cell.alloc_policy).expect("validated before the run"),
            server_policy_by_name(&cell.server_policy).expect("validated before the run"),
            Arc::clone(&self.pool),
            &mut self.models,
        )
        .with_dispatch(cell.dispatch)
        .with_shard_queues(self.queue_depth);
        let mix = JobMixConfig {
            job_count: cell.jobs,
            ..JobMixConfig::default()
        };
        // CRN: the job mix and the arrival process both draw from the
        // replication's seed — and from nothing cell-specific.
        let jobs = generator::generate_jobs(&mix, seed);
        let arrivals = match self.poisson_mean_gap {
            Some(mean_gap) => ArrivalProcess::Poisson { mean_gap, seed },
            None => ArrivalProcess::Batch,
        };
        Engine::over(cluster)
            .with_config(SimConfig {
                arrivals,
                ..SimConfig::default()
            })
            .run(&jobs)
    }
}

/// Serializes campaign results to the CLI's `campaign --json` schema:
/// the grid parameters and one object per cell, in cell order. Schedule
/// digests are emitted as hex *strings* — the reader parses numbers as
/// `f64`, which cannot represent all 64-bit digests exactly.
#[must_use]
pub fn campaign_to_json(summaries: &[CellSummary], replications: usize, base_seed: u64) -> String {
    let cells: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "    {{\"label\": \"{}\", \"replications\": {}, \"jobs\": {}, \
                 \"makespan_seconds\": {{\"mean\": {:.6}, \"ci95\": {:.6}}}, \
                 \"throughput_jobs_per_hour\": {{\"mean\": {:.6}, \"ci95\": {:.6}}}, \
                 \"queue_wait_mean_seconds\": {{\"mean\": {:.6}, \"ci95\": {:.6}}}, \
                 \"queue_wait_p50_seconds\": {:.6}, \"queue_wait_p95_seconds\": {:.6}, \
                 \"queue_wait_p99_seconds\": {:.6}, \"schedule_digest\": \"{:#018x}\"}}",
                json_escape(&s.label),
                s.replications,
                s.jobs,
                s.makespan_seconds.mean,
                s.makespan_seconds.ci95,
                s.throughput_jobs_per_hour.mean,
                s.throughput_jobs_per_hour.ci95,
                s.queue_wait_mean_seconds.mean,
                s.queue_wait_mean_seconds.ci95,
                s.queue_wait_p50_seconds,
                s.queue_wait_p95_seconds,
                s.queue_wait_p99_seconds,
                s.schedule_digest
            )
        })
        .collect();
    format!(
        "{{\n  \"campaign\": {{\"replications\": {replications}, \"base_seed\": {base_seed}, \
         \"cells\": {}}},\n  \"cells\": [\n{}\n  ],\n  \"schema\": 1\n}}\n",
        summaries.len(),
        cells.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::parse_json;
    use mapa_topology::machines;

    fn tiny_grid() -> CampaignGrid {
        CampaignGrid {
            server_policies: vec!["round-robin".into(), "least-loaded".into()],
            alloc_policies: vec!["baseline".into()],
            shards: vec![2],
            job_counts: vec![30],
            dispatch: vec![DispatchMode::Sequential],
            replications: 2,
            base_seed: 7,
            ..CampaignGrid::new(machines::dgx1_v100())
        }
    }

    #[test]
    fn grid_flattens_in_axis_order() {
        let grid = tiny_grid();
        let cells = grid.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].server_policy, "round-robin");
        assert_eq!(cells[1].server_policy, "least-loaded");
        assert_eq!(
            cells[0].label(),
            "round-robin/baseline/shards=2/jobs=30/sequential"
        );
    }

    #[test]
    fn validate_rejects_unknown_policies_and_degenerate_axes() {
        let mut grid = tiny_grid();
        grid.alloc_policies = vec!["nope".into()];
        assert!(grid.validate().unwrap_err().contains("nope"));
        let mut grid = tiny_grid();
        grid.shards = vec![0];
        assert!(grid.validate().is_err());
        let mut grid = tiny_grid();
        grid.job_counts.clear();
        assert!(grid.validate().is_err());
        let mut grid = tiny_grid();
        grid.poisson_mean_gap = Some(0.0);
        assert!(grid.validate().is_err());
    }

    #[test]
    fn campaign_json_round_trips() {
        let pool = Arc::new(WorkerPool::new(2));
        let grid = tiny_grid();
        let summaries = grid.run(&pool).unwrap();
        assert_eq!(summaries.len(), 2);
        let doc = campaign_to_json(&summaries, grid.replications, grid.base_seed);
        let v = parse_json(&doc).unwrap();
        assert_eq!(
            v.get("campaign").unwrap().get("cells").unwrap().as_f64(),
            Some(2.0)
        );
        let cells = v.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        for (cell, summary) in cells.iter().zip(&summaries) {
            assert_eq!(
                cell.get("label").unwrap().as_str(),
                Some(summary.label.as_str())
            );
            assert_eq!(
                cell.get("schedule_digest").unwrap().as_str(),
                Some(format!("{:#018x}", summary.schedule_digest).as_str())
            );
            assert!(
                cell.get("makespan_seconds")
                    .unwrap()
                    .get("mean")
                    .unwrap()
                    .as_f64()
                    .unwrap()
                    > 0.0
            );
        }
    }
}
