//! # MAPA — Multi-Accelerator Pattern Allocation
//!
//! A production-quality reproduction of *"MAPA: Multi-Accelerator Pattern
//! Allocation Policy for Multi-Tenant GPU Servers"* (Ranganath et al.,
//! SC '21), including every substrate the paper relies on: a subgraph-
//! matching engine standing in for Peregrine, the DGX/Summit/synthetic
//! machine topologies, an NCCL-style interconnect simulator replacing the
//! hardware microbenchmarks, the Eq. 2 effective-bandwidth regression,
//! analytic workload models for the nine evaluated applications, and the
//! Fig. 14 multi-tenant simulator.
//!
//! This crate is a façade: each subsystem lives in its own crate and is
//! re-exported here under a stable module name.
//!
//! ## Quick start
//!
//! ```
//! use mapa::prelude::*;
//!
//! // A multi-tenant DGX-1 V100 scheduled with the paper's Preserve policy.
//! let mut allocator = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
//!
//! // A bandwidth-sensitive 3-GPU ring job (VGG-16-like).
//! let job = JobSpec::new(1, GpuDemand::Whole(3), Workload::Vgg16)
//!     .with_topology(AppTopology::Ring)
//!     .with_bandwidth_sensitive(true)
//!     .with_iterations(3000);
//! let outcome = allocator.try_allocate(&job).unwrap().expect("machine is idle");
//! assert_eq!(outcome.gpus.len(), 3);
//! // The Preserve policy gives sensitive jobs a high-EffBW match.
//! assert!(outcome.score.predicted_eff_bw > 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod report;

pub use mapa_agent as agent;
pub use mapa_cluster as cluster;
pub use mapa_core as core;
pub use mapa_graph as graph;
pub use mapa_interconnect as interconnect;
pub use mapa_isomorph as isomorph;
pub use mapa_model as model;
pub use mapa_sim as sim;
pub use mapa_topology as topology;
pub use mapa_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use mapa_agent::{
        Agent, AgentError, AllocateRequest, FakeProbe, GpuProbe, IdlePolicy, MachineDescription,
        Occupancy, Placement, ProbeSnapshot, SmiProbe, StateDir, StatusReport,
    };
    pub use mapa_cluster::{
        dispatch_mode_by_name, federation_policy_by_name, migration_policy_by_name,
        server_policy_by_name, BestScorePolicy, Cluster, ClusterView, DispatchMode, Federation,
        FederationPolicy, JobFeed, LeastLoadedPolicy, MigrationPolicy, MigrationStats,
        PackFirstPolicy, RoundRobinPolicy, ServerPolicy, ShardView, SpilloverPolicy,
        SubmissionFeed, DEFAULT_SHARD_QUEUE_DEPTH, FEDERATION_POLICY_NAMES,
    };
    pub use mapa_core::policy::{
        AllocationPolicy, BaselinePolicy, EffBwGreedyPolicy, GreedyPolicy, PreservePolicy,
        TopoAwarePolicy,
    };
    pub use mapa_core::{
        preemption_policy_by_name, scoring, AllocationCache, AllocationOutcome, AllocatorConfig,
        CacheStats, MapaAllocator, PreemptionPolicy, ALLOCATION_POLICY_NAMES,
    };
    pub use mapa_graph::{Graph, PatternGraph, WeightedGraph};
    pub use mapa_isomorph::{default_threads, MatchOptions, Matcher, WorkerPool};
    pub use mapa_model::{corpus, EffBwModel};
    pub use mapa_sim::campaign::{crn_seed, CampaignSpec, CellSummary};
    pub use mapa_sim::{
        stats, ArrivalProcess, DispatchReport, Engine, FederationReport, GangStats, PendingJob,
        PreemptionStats, SchedulerBackend, SimConfig, SimReport, Simulation, SloStats, Submission,
    };

    pub use crate::campaign::{allocation_policy_by_name, CampaignGrid, GridCell};
    pub use mapa_topology::{
        machines, HardwareState, LinkMix, LinkType, OccupancySignature, PartitionPlan,
        SliceBandwidth, SliceMap, Topology, VirtualTopology,
    };
    pub use mapa_workloads::{
        generator, perf, AppTopology, GpuDemand, JobGroup, JobSpec, Workload,
    };
}
