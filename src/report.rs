//! The machine-readable simulation report: `SimReport` → JSON, and a
//! minimal JSON reader so tests (and downstream tooling) can verify the
//! emitted artifact round-trips — the same schema CI checks on the
//! uploaded `CLUSTER_report.json` artifacts.
//!
//! The workspace is dependency-free offline, so both directions are
//! hand-rolled: [`to_json`] is the single serializer the `mapa-sched`
//! CLI's `--json` flag uses, and [`parse_json`] is a small, total JSON
//! reader sufficient for the reports we emit (objects, arrays, strings
//! with escapes, f64 numbers, booleans, null). `tests/report_schema.rs`
//! is the golden test pinning that what the binary emits parses back to
//! the values in the in-memory [`SimReport`].

use mapa_sim::SimReport;
use std::collections::BTreeMap;
use std::fmt;

/// Serializes a [`SimReport`] to the CLI's `--json` schema: run summary,
/// queue statistics, the dispatch layer (when one ran), the federation
/// layer (when one ran), preemption and gang counters, and one object
/// per shard. `slo.attainment` is a number for runs with SLO-tagged jobs
/// and JSON `null` otherwise — a vacuous run has no attainment, not a
/// perfect one.
#[must_use]
pub fn to_json(report: &SimReport) -> String {
    // `scheduling_stats` panics on an empty run; report zeros instead.
    let (latency_p50, latency_max, hit_rate) = if report.records.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let sched = report.scheduling_stats();
        (
            sched.latency_ms.p50,
            sched.latency_ms.max,
            sched.cache_hit_rate(),
        )
    };
    let dispatch = report.dispatch.as_ref().map_or(String::new(), |d| {
        let depths: Vec<String> = d.max_queue_depths.iter().map(usize::to_string).collect();
        format!(
            "  \"dispatch\": {{\"mode\": \"{}\", \"migration\": \"{}\", \
             \"shard_queue_depth\": {}, \"jobs_stolen\": {}, \"jobs_rebalanced\": {}, \
             \"max_queue_depths\": [{}]}},\n",
            d.mode,
            d.migration,
            d.shard_queue_depth,
            d.jobs_stolen,
            d.jobs_rebalanced,
            depths.join(", ")
        )
    });
    let federation = report.federation.as_ref().map_or(String::new(), |fed| {
        let clusters: Vec<String> = fed
            .clusters
            .iter()
            .map(|c| {
                format!(
                    "      {{\"cluster\": {}, \"machine\": \"{}\", \"first_server\": {}, \
                     \"servers\": {}, \"gpu_count\": {}, \"jobs_routed\": {}, \
                     \"spill_ins\": {}, \"jobs_completed\": {}, \"gpu_seconds\": {:.3}}}",
                    c.cluster,
                    json_escape(&c.label),
                    c.first_server,
                    c.servers,
                    c.gpu_count,
                    c.jobs_routed,
                    c.spill_ins,
                    c.jobs_completed,
                    c.gpu_seconds
                )
            })
            .collect();
        let tenants: Vec<String> = fed
            .tenants
            .iter()
            .map(|t| {
                let quota = t
                    .quota_gpus
                    .map_or_else(|| "null".to_string(), |q| q.to_string());
                format!(
                    "      {{\"tenant\": {}, \"quota_gpus\": {quota}, \"peak_gpus\": {}, \
                     \"quota_holds\": {}, \"jobs_completed\": {}, \"gpu_seconds\": {:.3}}}",
                    t.tenant, t.peak_gpus, t.quota_holds, t.jobs_completed, t.gpu_seconds
                )
            })
            .collect();
        format!(
            "  \"federation\": {{\"policy\": \"{}\", \"spillovers\": {}, \"quota_holds\": {}, \
             \"gangs_pinned\": {}, \"gangs_spanned\": {},\n    \"clusters\": [\n{}\n    ],\n    \
             \"tenants\": [{}{}{}]}},\n",
            fed.policy,
            fed.spillovers,
            fed.quota_holds,
            fed.gangs_pinned,
            fed.gangs_spanned,
            clusters.join(",\n"),
            if fed.tenants.is_empty() { "" } else { "\n" },
            tenants.join(",\n"),
            if fed.tenants.is_empty() { "" } else { "\n    " },
        )
    });
    let attainment = report
        .slo
        .attainment()
        .map_or_else(|| "null".to_string(), |a| format!("{a:.6}"));
    let shards: Vec<String> = report
        .shards
        .iter()
        .map(|s| {
            let (hits, misses) = s.cache.map_or((0, 0), |c| (c.hits, c.misses));
            format!(
                "    {{\"server\": {}, \"machine\": \"{}\", \"gpu_count\": {}, \
                 \"jobs_completed\": {}, \"gpu_seconds\": {:.3}, \"utilization\": {:.6}, \
                 \"cache_hits\": {hits}, \"cache_misses\": {misses}}}",
                s.server, s.machine, s.gpu_count, s.jobs_completed, s.gpu_seconds, s.utilization
            )
        })
        .collect();
    format!(
        "{{\n  \"machine\": \"{}\",\n  \"policy\": \"{}\",\n  \"jobs\": {},\n  \
         \"makespan_seconds\": {:.3},\n  \"throughput_jobs_per_hour\": {:.3},\n  \
         \"scheduling_latency_ms\": {{\"p50\": {:.6}, \"max\": {:.6}}},\n  \
         \"cache_hit_rate\": {:.6},\n  \
         \"queue\": {{\"max_depth\": {}, \"mean_depth\": {:.3}, \"dispatch_blocks\": {}, \
         \"fragmentation_blocks\": {}}},\n{dispatch}{federation}  \
         \"preemption\": {{\"jobs_preempted\": {}, \"gpu_seconds_lost\": {:.3}, \
         \"penalty_seconds_charged\": {:.3}}},\n  \
         \"gangs\": {{\"dispatched\": {}, \"members\": {}, \"total_wait_seconds\": {:.3}, \
         \"max_wait_seconds\": {:.3}}},\n  \
         \"slo\": {{\"jobs\": {}, \"met\": {}, \"missed\": {}, \"attainment\": {attainment}, \
         \"p95_latency_ms\": {:.6}, \"p95_target_ms\": {:.6}}},\n  \"shards\": [\n{}\n  ]\n}}\n",
        report.topology_name,
        report.policy_name,
        report.records.len(),
        report.makespan_seconds,
        report.throughput_jobs_per_hour,
        latency_p50,
        latency_max,
        hit_rate,
        report.queue.max_depth,
        report.queue.mean_depth,
        report.queue.dispatch_blocks,
        report.queue.fragmentation_blocks,
        report.preemption.jobs_preempted,
        report.preemption.gpu_seconds_lost,
        report.preemption.penalty_seconds_charged,
        report.gangs.gangs_dispatched,
        report.gangs.members_dispatched,
        report.gangs.total_wait_seconds,
        report.gangs.max_wait_seconds,
        report.slo.jobs,
        report.slo.met,
        report.slo.missed,
        report.slo.p95_latency_ms,
        report.slo.p95_target_ms,
        shards.join(",\n")
    )
}

/// Escapes a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters; everything else passes
/// through verbatim, including multi-byte UTF-8).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn agent_machine_json(machine: &mapa_agent::MachineDescription) -> String {
    let profile = machine
        .matched_profile
        .as_deref()
        .map_or_else(|| "null".to_string(), |p| format!("\"{}\"", json_escape(p)));
    format!(
        "{{\"name\": \"{}\", \"gpu_count\": {}, \"matched_profile\": {}, \
         \"synthesized\": {}}}",
        json_escape(machine.topology.name()),
        machine.topology.gpu_count(),
        profile,
        machine.is_synthesized()
    )
}

fn agent_occupancy_json(occupancy: &mapa_agent::Occupancy) -> String {
    use mapa_agent::Occupancy;
    match occupancy {
        Occupancy::Idle => "{\"kind\": \"idle\"}".to_string(),
        Occupancy::Utilized { pct } => {
            format!("{{\"kind\": \"utilized\", \"pct\": {pct}}}")
        }
        Occupancy::GhostProcess { pid, memory_mib } => {
            format!("{{\"kind\": \"ghost-process\", \"pid\": {pid}, \"memory_mib\": {memory_mib}}}")
        }
        Occupancy::MemoryHeld { mib } => {
            format!("{{\"kind\": \"memory-held\", \"mib\": {mib}}}")
        }
    }
}

fn agent_lease_json(lease: &mapa_agent::Lease) -> String {
    let gpus: Vec<String> = lease.gpus.iter().map(usize::to_string).collect();
    format!(
        "{{\"id\": {}, \"pid\": {}, \"created_unix\": {}, \"gpus\": [{}], \"tag\": \"{}\"}}",
        lease.id,
        lease.pid,
        lease.created_unix,
        gpus.join(", "),
        json_escape(&lease.tag)
    )
}

/// Serializes an agent [`StatusReport`](mapa_agent::StatusReport) to the
/// `mapa-agent status --json` schema (what CI checks on the uploaded
/// `AGENT_report.json` artifact).
#[must_use]
pub fn agent_status_to_json(status: &mapa_agent::StatusReport) -> String {
    let gpus: Vec<String> = status
        .gpus
        .iter()
        .map(|g| {
            let leased = g
                .leased_by
                .map_or_else(|| "null".to_string(), |id| id.to_string());
            format!(
                "    {{\"index\": {}, \"leased_by\": {}, \"free\": {}, \"occupancy\": {}}}",
                g.index,
                leased,
                g.is_free(),
                agent_occupancy_json(&g.occupancy)
            )
        })
        .collect();
    let leases: Vec<String> = status
        .leases
        .iter()
        .map(|l| format!("    {}", agent_lease_json(l)))
        .collect();
    let free: Vec<String> = status.free_gpus().iter().map(usize::to_string).collect();
    format!(
        "{{\n  \"schema\": \"mapa-agent-status-v1\",\n  \"source\": \"{}\",\n  \
         \"hostname\": \"{}\",\n  \"machine\": {},\n  \"free_gpus\": [{}],\n  \
         \"gpus\": [\n{}\n  ],\n  \"leases\": [{}{}]\n}}\n",
        json_escape(&status.source),
        json_escape(&status.hostname),
        agent_machine_json(&status.machine),
        free.join(", "),
        gpus.join(",\n"),
        if leases.is_empty() { "" } else { "\n" },
        if leases.is_empty() {
            String::new()
        } else {
            format!("{}\n  ", leases.join(",\n"))
        }
    )
}

/// Serializes an agent [`Placement`](mapa_agent::Placement) to the
/// `mapa-agent allocate --json` schema.
#[must_use]
pub fn agent_placement_to_json(placement: &mapa_agent::Placement) -> String {
    let gpus: Vec<String> = placement.gpus.iter().map(usize::to_string).collect();
    format!(
        "{{\n  \"schema\": \"mapa-agent-placement-v1\",\n  \"lease_id\": {},\n  \
         \"gpus\": [{}],\n  \"cuda_visible_devices\": \"{}\",\n  \"policy\": \"{}\",\n  \
         \"machine\": {},\n  \"score\": {{\"aggregated_bw\": {:.3}, \
         \"predicted_eff_bw\": {:.3}, \"preserved_bw\": {:.3}, \
         \"link_mix\": {{\"double_nvlink\": {}, \"single_nvlink\": {}, \"pcie\": {}}}}}\n}}\n",
        placement.lease_id,
        gpus.join(", "),
        json_escape(&placement.cuda_visible_devices),
        json_escape(&placement.policy),
        agent_machine_json(&placement.machine),
        placement.score.aggregated_bw,
        placement.score.predicted_eff_bw,
        placement.score.preserved_bw,
        placement.score.link_mix.double_nvlink,
        placement.score.link_mix.single_nvlink,
        placement.score.link_mix.pcie
    )
}

/// A parsed JSON value (the subset our reports use; no integer/float
/// distinction — every number is an `f64`, exactly how the report reads
/// them back).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is not preserved (sorted map).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object by key, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse error: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting [`parse_json`] accepts. The reports we
/// emit nest 3 deep; 128 leaves headroom for hand-edited files while
/// keeping the recursive-descent parser safely inside the stack (the
/// "total, never panics" contract would otherwise die on `[[[[…`).
pub const MAX_JSON_DEPTH: usize = 128;

/// Parses a JSON document (total: never panics on any input; containers
/// nested deeper than [`MAX_JSON_DEPTH`] are a [`JsonError`], not a
/// stack overflow).
///
/// # Errors
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            offset: pos,
            message: "trailing characters after the document",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8, message: &'static str) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError {
            offset: *pos,
            message,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_JSON_DEPTH {
        return Err(JsonError {
            offset: *pos,
            message: "containers nested too deeply",
        });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => Err(JsonError {
            offset: *pos,
            message: "expected a JSON value",
        }),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static [u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            offset: *pos,
            message: "malformed literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Number)
        .ok_or(JsonError {
            offset: start,
            message: "malformed number",
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected a string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes.get(*pos).copied().ok_or(JsonError {
                    offset: *pos,
                    message: "unterminated escape",
                })?;
                *pos += 1;
                match escaped {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            offset: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or(JsonError {
                                offset: *pos,
                                message: "bad \\u escape",
                            })?;
                        *pos += 4;
                        out.push(code);
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos - 1,
                            message: "unknown escape",
                        })
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid; find the char at this offset).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                    offset: *pos,
                    message: "invalid UTF-8",
                })?;
                let ch = s.chars().next().expect("non-empty checked above");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[', "expected an array")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{', "expected an object")?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':' after object key")?;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = r#"{"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -2e3}}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\n\"y\""));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2000.0)
        );
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for doc in [
            "{",
            "[1, ]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"abc",
            "{\"a\": +}",
        ] {
            let err = parse_json(doc).expect_err(doc);
            assert!(err.offset <= doc.len(), "{doc}: {err}");
        }
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = parse_json(&deep).expect_err("must not recurse to death");
        assert_eq!(err.message, "containers nested too deeply");
        // The limit leaves ample headroom for real reports (3 levels)
        // and reasonable hand-written files.
        let fine = "[".repeat(64) + &"]".repeat(64);
        assert!(parse_json(&fine).is_ok());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_json(r#""\u00e9A""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
        // Raw multi-byte UTF-8 passes through too (machine names like
        // "4× DGX-1 V100" appear in real reports).
        let raw = parse_json("\"4× DGX-1 V100\"").unwrap();
        assert_eq!(raw.as_str(), Some("4× DGX-1 V100"));
    }
}
