//! The Eq. 2 feature expansion.
//!
//! Predicted EffBW = θ₁x + θ₂y + θ₃z
//!                 + θ₄/(x+1) + θ₅/(y+1) + θ₆/(z+1)
//!                 + θ₇xy + θ₈yz + θ₉zx
//!                 + θ₁₀/(xy+1) + θ₁₁/(yz+1) + θ₁₂/(zx+1)
//!                 + θ₁₃xyz + θ₁₄/(xyz+1)
//!
//! where `x` = double NVLinks, `y` = single NVLinks, `z` = PCIe links in
//! the matching pattern. The model is *linear in θ*, so fitting it is
//! ordinary least squares over this 14-dimensional feature vector.

use mapa_topology::LinkMix;

/// Number of features (and coefficients) in Eq. 2.
pub const NUM_FEATURES: usize = 14;

/// Expands a link mix into the 14 Eq. 2 features, in θ₁…θ₁₄ order.
#[must_use]
pub fn expand(mix: &LinkMix) -> [f64; NUM_FEATURES] {
    let (x, y, z) = mix.xyz();
    [
        x,
        y,
        z,
        1.0 / (x + 1.0),
        1.0 / (y + 1.0),
        1.0 / (z + 1.0),
        x * y,
        y * z,
        z * x,
        1.0 / (x * y + 1.0),
        1.0 / (y * z + 1.0),
        1.0 / (z * x + 1.0),
        x * y * z,
        1.0 / (x * y * z + 1.0),
    ]
}

/// Dot product of a coefficient vector with the expanded features —
/// the Eq. 2 prediction.
#[must_use]
pub fn predict_with(theta: &[f64; NUM_FEATURES], mix: &LinkMix) -> f64 {
    expand(mix)
        .iter()
        .zip(theta.iter())
        .map(|(f, t)| f * t)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: usize, y: usize, z: usize) -> LinkMix {
        LinkMix {
            double_nvlink: x,
            single_nvlink: y,
            pcie: z,
        }
    }

    #[test]
    fn zero_mix_features() {
        let f = expand(&mix(0, 0, 0));
        // Linear and pairwise terms vanish; all inverse terms are 1.
        assert_eq!(f[0..3], [0.0, 0.0, 0.0]);
        assert_eq!(f[3..6], [1.0, 1.0, 1.0]);
        assert_eq!(f[6..9], [0.0, 0.0, 0.0]);
        assert_eq!(f[9..12], [1.0, 1.0, 1.0]);
        assert_eq!(f[12], 0.0);
        assert_eq!(f[13], 1.0);
    }

    #[test]
    fn feature_order_matches_equation() {
        let f = expand(&mix(2, 3, 4));
        assert_eq!(f[0], 2.0); // x
        assert_eq!(f[1], 3.0); // y
        assert_eq!(f[2], 4.0); // z
        assert_eq!(f[3], 1.0 / 3.0); // 1/(x+1)
        assert_eq!(f[4], 1.0 / 4.0); // 1/(y+1)
        assert_eq!(f[5], 1.0 / 5.0); // 1/(z+1)
        assert_eq!(f[6], 6.0); // xy
        assert_eq!(f[7], 12.0); // yz
        assert_eq!(f[8], 8.0); // zx
        assert_eq!(f[9], 1.0 / 7.0); // 1/(xy+1)
        assert_eq!(f[10], 1.0 / 13.0); // 1/(yz+1)
        assert_eq!(f[11], 1.0 / 9.0); // 1/(zx+1)
        assert_eq!(f[12], 24.0); // xyz
        assert_eq!(f[13], 1.0 / 25.0); // 1/(xyz+1)
    }

    #[test]
    fn predict_is_linear_in_theta() {
        let m = mix(1, 2, 0);
        let mut t1 = [0.0; NUM_FEATURES];
        t1[0] = 2.0;
        assert_eq!(predict_with(&t1, &m), 2.0 * 1.0);
        let mut t2 = [0.0; NUM_FEATURES];
        t2[4] = 3.0; // 3/(y+1) = 1
        assert_eq!(predict_with(&t2, &m), 1.0);
        // Sum of thetas = sum of predictions.
        let mut t3 = [0.0; NUM_FEATURES];
        t3[0] = 2.0;
        t3[4] = 3.0;
        assert_eq!(predict_with(&t3, &m), 3.0);
    }

    #[test]
    fn features_are_finite_for_large_mixes() {
        let f = expand(&mix(100, 100, 100));
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
