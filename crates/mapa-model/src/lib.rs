//! Predicted Effective Bandwidth — the paper's Eq. 2 regression model.
//!
//! §3.4.3 of the paper: effective bandwidth "cannot be trivially obtained
//! given an allocation without microbenchmarking", so MAPA predicts it from
//! the allocation's link mix `(x, y, z)` (double NVLinks, single NVLinks,
//! PCIe links) via a polynomial regression with 14 non-linear features and
//! coefficients θ₁…θ₁₄ (Table 2).
//!
//! This crate provides:
//!
//! * [`features`] — the exact Eq. 2 feature expansion;
//! * [`linalg`] — a small dense-matrix toolkit with a partial-pivot
//!   Gaussian solver, enough to do ordinary least squares in-repo;
//! * [`EffBwModel`] — fit (via OLS over the features, exactly the paper's
//!   "non-linear polynomial regression") and predict;
//! * [`paper_coefficients`] — the published Table 2 θ values, kept for
//!   comparison with our re-fit model;
//! * [`corpus`] — the training-set protocol of §3.4.3: enumerate 2–5-GPU
//!   allocations on a machine, deduplicate by unique `(x, y, z)`, and
//!   measure EffBW with the simulated microbenchmark (31 samples on
//!   DGX-1V, same as the paper);
//! * [`metrics`] — RMSE, MAE, mean relative error, Pearson correlation.
//!
//! # Example
//!
//! ```
//! use mapa_model::{corpus, EffBwModel};
//! use mapa_topology::{machines, LinkMix};
//!
//! let dgx = machines::dgx1_v100();
//! let samples = corpus::build_corpus(&dgx, 2..=5);
//! let model = EffBwModel::fit(&samples).unwrap();
//! // A pure double-NVLink pair should predict near 50 GB/s.
//! let mix = LinkMix { double_nvlink: 1, single_nvlink: 0, pcie: 0 };
//! let pred = model.predict(&mix);
//! assert!((pred - 50.0).abs() < 10.0, "prediction {pred}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod features;
pub mod linalg;
pub mod metrics;
mod paper;
mod regress;

pub use paper::paper_coefficients;
pub use regress::{EffBwModel, FitError};
