//! Minimal dense linear algebra: just enough for ordinary least squares.
//!
//! A reproduction should not pull a BLAS for a 14×14 normal-equation
//! solve. [`Matrix`] is row-major `Vec<f64>`-backed with multiplication,
//! transpose, and a partial-pivot Gaussian solver; [`least_squares`] wraps
//! them as `θ = (AᵀA + λI)⁻¹ Aᵀ b` with a tiny ridge `λ` for numerical
//! safety on collinear feature sets.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors from linear solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Dimensions incompatible for the requested operation.
    DimensionMismatch,
    /// The system is singular (no pivot above tolerance).
    Singular,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch => write!(f, "matrix dimension mismatch"),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl Matrix {
    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    /// Panics if rows are ragged.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Self {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    /// Fails when inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    /// Fails when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect())
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    /// Fails for non-square systems, mismatched `b`, or singular matrices.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below row.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[(r1, col)].abs().total_cmp(&a[(r2, col)].abs()))
                .expect("non-empty range");
            if a[(pivot_row, col)].abs() < 1e-12 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = tmp;
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[(col, col)];
            for row in (col + 1)..n {
                let factor = a[(row, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[(row, j)] -= factor * a[(col, j)];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            x[col] /= a[(col, col)];
            for row in 0..col {
                x[row] -= a[(row, col)] * x[col];
            }
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Ordinary least squares with ridge damping: minimises
/// `‖A·θ − b‖² + λ‖θ‖²` via the normal equations.
///
/// # Errors
/// Fails on dimension mismatch or if `AᵀA + λI` is singular (only possible
/// with `λ = 0` and rank-deficient features).
pub fn least_squares(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    let at = a.transpose();
    let mut ata = at.matmul(a)?;
    for i in 0..ata.rows() {
        ata[(i, i)] += lambda;
    }
    let atb = at.matvec(b)?;
    ata.solve(&atb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_solve() {
        let i = Matrix::identity(3);
        let x = i.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn known_system() {
        // 2x + y = 5; x + 3y = 10  →  x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(1, 1)], 50.0);
        let t = a.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined but consistent: b = A·θ with θ = (2, -1).
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 3.0],
        ]);
        let theta = [2.0, -1.0];
        let b = a.matvec(&theta).unwrap();
        let est = least_squares(&a, &b, 0.0).unwrap();
        assert_close(&est, &theta, 1e-10);
    }

    #[test]
    fn ridge_regularizes_rank_deficiency() {
        // Duplicate columns are rank-deficient; λ > 0 still solves.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = [2.0, 4.0, 6.0];
        assert_eq!(least_squares(&a, &b, 0.0), Err(LinalgError::Singular));
        let est = least_squares(&a, &b, 1e-8).unwrap();
        // Symmetric split: each coefficient ≈ 1.
        assert_close(&est, &[1.0, 1.0], 1e-3);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_roundtrips(
            n in 1usize..6,
            seed in proptest::collection::vec(-5.0f64..5.0, 36 + 6),
        ) {
            // Build a diagonally dominant (hence nonsingular) matrix.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                let mut rowsum = 0.0;
                for j in 0..n {
                    if i != j {
                        a[(i, j)] = seed[i * 6 + j];
                        rowsum += a[(i, j)].abs();
                    }
                }
                a[(i, i)] = rowsum + 1.0;
            }
            let b: Vec<f64> = seed[36..36 + n].to_vec();
            let x = a.solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            for (orig, got) in b.iter().zip(&back) {
                prop_assert!((orig - got).abs() < 1e-8);
            }
        }
    }
}
