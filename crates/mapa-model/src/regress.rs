//! Fitting and evaluating the Predicted-EffBW model.

use crate::corpus::Sample;
use crate::features::{self, NUM_FEATURES};
use crate::linalg::{self, LinalgError, Matrix};
use crate::metrics;
use mapa_topology::LinkMix;
use std::fmt;

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than features — the system is underdetermined.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required (the feature count).
        need: usize,
    },
    /// The normal equations could not be solved.
    Linalg(LinalgError),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { got, need } => {
                write!(f, "need at least {need} samples to fit, got {got}")
            }
            FitError::Linalg(e) => write!(f, "normal equations failed: {e}"),
        }
    }
}

impl std::error::Error for FitError {}

/// The Eq. 2 effective-bandwidth predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct EffBwModel {
    theta: [f64; NUM_FEATURES],
}

impl EffBwModel {
    /// Wraps an explicit coefficient vector (e.g.
    /// [`crate::paper_coefficients`]).
    #[must_use]
    pub fn from_coefficients(theta: [f64; NUM_FEATURES]) -> Self {
        Self { theta }
    }

    /// Fits θ by least squares over the Eq. 2 features, the paper's
    /// "non-linear polynomial regression" (the model is linear in θ).
    ///
    /// A tiny ridge term (1e-6) guards against collinear corpora; its
    /// effect on predictions is far below measurement noise.
    ///
    /// # Errors
    /// Fails with fewer samples than features or on a singular system.
    pub fn fit(samples: &[Sample]) -> Result<Self, FitError> {
        if samples.len() < NUM_FEATURES {
            return Err(FitError::TooFewSamples {
                got: samples.len(),
                need: NUM_FEATURES,
            });
        }
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| features::expand(&s.mix).to_vec())
            .collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = samples.iter().map(|s| s.eff_bw_gbps).collect();
        let theta_vec = linalg::least_squares(&a, &b, 1e-6).map_err(FitError::Linalg)?;
        let mut theta = [0.0; NUM_FEATURES];
        theta.copy_from_slice(&theta_vec);
        Ok(Self { theta })
    }

    /// The fitted coefficients θ₁…θ₁₄.
    #[must_use]
    pub fn coefficients(&self) -> &[f64; NUM_FEATURES] {
        &self.theta
    }

    /// Predicted effective bandwidth (GB/s) for a link mix. Clamped at 0
    /// from below — the regression is unconstrained but bandwidth is not.
    #[must_use]
    pub fn predict(&self, mix: &LinkMix) -> f64 {
        features::predict_with(&self.theta, mix).max(0.0)
    }

    /// Evaluates the model on a sample set, returning
    /// `(mean relative error, RMSE, MAE, Pearson r)` — the quartet the
    /// paper reports for Fig. 12.
    #[must_use]
    pub fn evaluate(&self, samples: &[Sample]) -> ModelQuality {
        let predicted: Vec<f64> = samples.iter().map(|s| self.predict(&s.mix)).collect();
        let actual: Vec<f64> = samples.iter().map(|s| s.eff_bw_gbps).collect();
        ModelQuality {
            relative_error: metrics::mean_relative_error(&predicted, &actual),
            rmse: metrics::rmse(&predicted, &actual),
            mae: metrics::mae(&predicted, &actual),
            pearson_r: metrics::pearson(&predicted, &actual),
        }
    }
}

/// Prediction-quality summary (paper Fig. 12 reports the first three).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelQuality {
    /// Mean relative error.
    pub relative_error: f64,
    /// Root-mean-square error (GB/s).
    pub rmse: f64,
    /// Mean absolute error (GB/s).
    pub mae: f64,
    /// Pearson correlation between predicted and actual.
    pub pearson_r: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, build_full_corpus};
    use mapa_topology::machines;

    #[test]
    fn fit_on_dgx_corpus_is_accurate() {
        let dgx = machines::dgx1_v100();
        let corpus = build_corpus(&dgx, 2..=5);
        let model = EffBwModel::fit(&corpus).unwrap();
        let q = model.evaluate(&corpus);
        // The paper reports RelErr 0.0709 on its own 31-sample corpus; our
        // simulated corpus is noise-free, so the fit should be at least
        // comparable.
        assert!(q.relative_error < 0.25, "relative error {q:?}");
        assert!(q.pearson_r > 0.9, "correlation {q:?}");
    }

    #[test]
    fn model_generalizes_to_all_allocations() {
        // Fit on the 31 unique mixes, evaluate on every 2–5-GPU allocation
        // (Fig. 12's "generalizes well even when the number of GPUs in a
        // job varies").
        let dgx = machines::dgx1_v100();
        let train = build_corpus(&dgx, 2..=5);
        let test = build_full_corpus(&dgx, 2..=5);
        let model = EffBwModel::fit(&train).unwrap();
        let q = model.evaluate(&test);
        assert!(q.pearson_r > 0.85, "generalization correlation {q:?}");
    }

    #[test]
    fn predictions_track_link_class_order() {
        let dgx = machines::dgx1_v100();
        let model = EffBwModel::fit(&build_corpus(&dgx, 2..=5)).unwrap();
        let d = model.predict(&LinkMix {
            double_nvlink: 1,
            single_nvlink: 0,
            pcie: 0,
        });
        let s = model.predict(&LinkMix {
            double_nvlink: 0,
            single_nvlink: 1,
            pcie: 0,
        });
        let p = model.predict(&LinkMix {
            double_nvlink: 0,
            single_nvlink: 0,
            pcie: 1,
        });
        assert!(d > s && s > p, "{d} {s} {p}");
    }

    #[test]
    fn too_few_samples_rejected() {
        let dgx = machines::dgx1_v100();
        let corpus = build_corpus(&dgx, 2..=2);
        // 2-GPU allocations on DGX-1V yield only 3 unique mixes.
        assert!(matches!(
            EffBwModel::fit(&corpus),
            Err(FitError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn predictions_never_negative() {
        let model = EffBwModel::from_coefficients(crate::paper_coefficients());
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    let mix = LinkMix {
                        double_nvlink: x,
                        single_nvlink: y,
                        pcie: z,
                    };
                    assert!(model.predict(&mix) >= 0.0, "({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn from_coefficients_roundtrip() {
        let theta = crate::paper_coefficients();
        let model = EffBwModel::from_coefficients(theta);
        assert_eq!(model.coefficients(), &theta);
    }
}
