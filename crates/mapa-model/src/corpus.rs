//! Training-corpus construction — the paper's §3.4.3 protocol.
//!
//! "To obtain data to train the model, we generate a set of 2, 3, 4, and
//! 5-GPU allocations in a DGX-V machine … we use an exhaustive set of
//! allocations with unique (x, y, z) resulting in a total of 31 samples.
//! Next, we recorded the EffBW by running the NCCL microbenchmark."
//!
//! [`build_corpus`] does exactly that against the simulated microbenchmark:
//! enumerate every k-GPU combination for k in the requested range, compute
//! each allocation's link mix, keep the first allocation per unique
//! `(x, y, z)`, and measure its effective bandwidth.

use mapa_interconnect::effbw;
use mapa_topology::{LinkMix, Topology};
use std::collections::HashSet;

/// One training sample: a link mix and its measured effective bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The allocation's `(x, y, z)` link mix.
    pub mix: LinkMix,
    /// Simulated-microbenchmark effective bandwidth in GB/s.
    pub eff_bw_gbps: f64,
    /// A representative allocation producing this mix (physical GPU ids).
    pub gpus: Vec<usize>,
}

/// Enumerates all k-combinations of `0..n` in lexicographic order.
#[must_use]
pub fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// The link mix of an allocation: every GPU pair inside it contributes one
/// link (the complete matching pattern — an upper bound on what any
/// application pattern can use).
#[must_use]
pub fn allocation_mix(topology: &Topology, gpus: &[usize]) -> LinkMix {
    let mut pairs = Vec::new();
    for i in 0..gpus.len() {
        for j in (i + 1)..gpus.len() {
            pairs.push((gpus[i], gpus[j]));
        }
    }
    topology.link_mix(&pairs)
}

/// Builds the unique-(x, y, z) corpus for `sizes`-GPU allocations.
#[must_use]
pub fn build_corpus(topology: &Topology, sizes: std::ops::RangeInclusive<usize>) -> Vec<Sample> {
    let n = topology.gpu_count();
    let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut out = Vec::new();
    for k in sizes {
        for combo in combinations(n, k) {
            let mix = allocation_mix(topology, &combo);
            let key = (mix.double_nvlink, mix.single_nvlink, mix.pcie);
            if seen.insert(key) {
                out.push(Sample {
                    mix,
                    eff_bw_gbps: effbw::measure(topology, &combo),
                    gpus: combo,
                });
            }
        }
    }
    out
}

/// Builds a corpus of *all* allocations (no (x, y, z) dedup) — used for
/// validation scatter plots where each allocation is a point.
#[must_use]
pub fn build_full_corpus(
    topology: &Topology,
    sizes: std::ops::RangeInclusive<usize>,
) -> Vec<Sample> {
    let n = topology.gpu_count();
    let mut out = Vec::new();
    for k in sizes {
        for combo in combinations(n, k) {
            out.push(Sample {
                mix: allocation_mix(topology, &combo),
                eff_bw_gbps: effbw::measure(topology, &combo),
                gpus: combo,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_topology::machines;

    #[test]
    fn combination_counts() {
        assert_eq!(combinations(8, 2).len(), 28);
        assert_eq!(combinations(8, 5).len(), 56);
        assert_eq!(combinations(4, 4).len(), 1);
        assert_eq!(combinations(3, 5).len(), 0);
        assert_eq!(combinations(5, 0).len(), 1); // the empty allocation
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let combos = combinations(6, 3);
        for c in &combos {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let set: std::collections::HashSet<_> = combos.iter().collect();
        assert_eq!(set.len(), combos.len());
    }

    #[test]
    fn paper_fragmentation_example_mix() {
        let dgx = machines::dgx1_v100();
        // {0,1,4}: 1 single + 1 double + 1 PCIe (the 87 GB/s example).
        let mix = allocation_mix(&dgx, &[0, 1, 4]);
        assert_eq!((mix.double_nvlink, mix.single_nvlink, mix.pcie), (1, 1, 1));
    }

    #[test]
    fn dgx_corpus_size_matches_papers_protocol() {
        // The paper reports 31 unique (x, y, z) samples for 2–5-GPU
        // allocations on its DGX-1 V100; our reconstruction of the link
        // layout yields 26 — the same order, recorded in EXPERIMENTS.md.
        // The test pins the exact value so topology changes are noticed.
        let dgx = machines::dgx1_v100();
        let corpus = build_corpus(&dgx, 2..=5);
        assert_eq!(corpus.len(), 26, "unique (x,y,z) mixes on DGX-1V");
        // All sampled EffBWs are positive and within the Fig. 12 range.
        assert!(corpus
            .iter()
            .all(|s| s.eff_bw_gbps > 0.0 && s.eff_bw_gbps <= 80.0));
    }

    #[test]
    fn corpus_mixes_are_unique() {
        let dgx = machines::dgx1_v100();
        let corpus = build_corpus(&dgx, 2..=5);
        let mut keys: Vec<_> = corpus
            .iter()
            .map(|s| (s.mix.double_nvlink, s.mix.single_nvlink, s.mix.pcie))
            .collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn full_corpus_counts_all_allocations() {
        let dgx = machines::dgx1_v100();
        let full = build_full_corpus(&dgx, 2..=3);
        assert_eq!(full.len(), 28 + 56); // C(8,2) + C(8,3)
    }

    #[test]
    fn mix_total_is_complete_pattern_size() {
        let dgx = machines::dgx1_v100();
        for k in 2..=5 {
            for combo in combinations(8, k).into_iter().take(6) {
                let mix = allocation_mix(&dgx, &combo);
                assert_eq!(mix.total(), k * (k - 1) / 2);
            }
        }
    }
}
