//! Prediction-quality metrics reported in the paper (Fig. 12 caption):
//! relative error, RMSE, MAE — plus Pearson correlation used for the
//! Fig. 15 simulator-validation plot.

/// Root-mean-square error between predictions and ground truth.
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    check(predicted, actual);
    let mse = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predicted.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    check(predicted, actual);
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Mean relative error `|p − a| / |a|`, skipping zero-valued truths.
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn mean_relative_error(predicted: &[f64], actual: &[f64]) -> f64 {
    check(predicted, actual);
    let pairs: Vec<(f64, f64)> = predicted
        .iter()
        .zip(actual)
        .filter(|(_, a)| **a != 0.0)
        .map(|(p, a)| (*p, *a))
        .collect();
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|(p, a)| (p - a).abs() / a.abs())
        .sum::<f64>()
        / pairs.len() as f64
}

/// Pearson correlation coefficient.
///
/// Returns 0 when either series has zero variance.
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    check(xs, ys);
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

fn check(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    assert!(!a.is_empty(), "metrics need at least one sample");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_are_zero_error() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(mean_relative_error(&a, &a), 0.0);
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_errors() {
        let p = [2.0, 2.0];
        let a = [0.0, 4.0];
        assert_eq!(mae(&p, &a), 2.0);
        assert_eq!(rmse(&p, &a), 2.0);
        // Relative error skips the zero truth: |2-4|/4 = 0.5.
        assert_eq!(mean_relative_error(&p, &a), 0.5);
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_series_panic() {
        let _ = mae(&[], &[]);
    }
}
