//! The published Table 2 coefficients.

use crate::features::NUM_FEATURES;

/// The θ₁…θ₁₄ values of the paper's Table 2, fitted by the authors on 31
/// unique-(x, y, z) NCCL all-reduce measurements from their DGX-1 V100.
///
/// Kept verbatim so benches can compare the paper's model against the one
/// re-fitted on our simulated microbenchmark corpus.
#[must_use]
pub fn paper_coefficients() -> [f64; NUM_FEATURES] {
    [
        16.396,  // θ1  · x
        4.536,   // θ2  · y
        1.556,   // θ3  · z
        -20.694, // θ4  / (x+1)
        -9.467,  // θ5  / (y+1)
        7.615,   // θ6  / (z+1)
        -7.973,  // θ7  · xy
        12.733,  // θ8  · yz
        -4.195,  // θ9  · zx
        -8.413,  // θ10 / (xy+1)
        62.851,  // θ11 / (yz+1)
        27.418,  // θ12 / (zx+1)
        -5.114,  // θ13 · xyz
        -46.973, // θ14 / (xyz+1)
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::predict_with;
    use mapa_topology::LinkMix;

    #[test]
    fn paper_model_predicts_sane_link_class_values() {
        let theta = paper_coefficients();
        // One double NVLink (a 2-GPU double allocation).
        let double = predict_with(
            &theta,
            &LinkMix {
                double_nvlink: 1,
                single_nvlink: 0,
                pcie: 0,
            },
        );
        // One single NVLink.
        let single = predict_with(
            &theta,
            &LinkMix {
                double_nvlink: 0,
                single_nvlink: 1,
                pcie: 0,
            },
        );
        // One PCIe hop.
        let pcie = predict_with(
            &theta,
            &LinkMix {
                double_nvlink: 0,
                single_nvlink: 0,
                pcie: 1,
            },
        );
        // The paper's model orders the three link classes correctly.
        assert!(double > single, "{double} vs {single}");
        assert!(single > pcie, "{single} vs {pcie}");
        // And stays in the plausible 0–80 GB/s EffBW range of Fig. 12.
        for v in [double, single, pcie] {
            assert!(v > 0.0 && v < 80.0, "{v}");
        }
    }

    #[test]
    fn exact_table2_values() {
        let t = paper_coefficients();
        assert_eq!(t[0], 16.396);
        assert_eq!(t[7], 12.733);
        assert_eq!(t[13], -46.973);
        assert_eq!(t.len(), 14);
    }
}
