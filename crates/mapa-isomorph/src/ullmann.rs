//! Ullmann's bit-matrix subgraph isomorphism algorithm.
//!
//! The 1976 algorithm the paper cites: maintain a candidate matrix
//! `M[p][d]` (pattern vertex `p` may map to data vertex `d`), refine it by
//! the neighborhood condition — if `p` maps to `d`, every pattern neighbor
//! of `p` must have a candidate among data neighbors of `d` — and backtrack
//! row by row. Kept deliberately independent of the VF2 code so the two
//! backends cross-validate each other.

use crate::Embedding;
use mapa_graph::{BitSet, Graph};

/// Enumerates embeddings of `pattern` into `data` using Ullmann's
/// algorithm. `induced` additionally requires pattern non-edges to map to
/// data non-edges. `frozen` excludes data vertices from use.
pub fn enumerate<P: Copy, D: Copy>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    induced: bool,
    frozen: Option<&BitSet>,
    visit: &mut dyn FnMut(&[usize]) -> bool,
) {
    let pn = pattern.vertex_count();
    let dn = data.vertex_count();
    if pn == 0 {
        visit(&[]);
        return;
    }

    // Initial candidate matrix: degree condition + frozen mask.
    let mut m: Vec<BitSet> = Vec::with_capacity(pn);
    for p in 0..pn {
        let mut row = BitSet::new(dn);
        for d in 0..dn {
            if frozen.is_some_and(|f| f.contains(d)) {
                continue;
            }
            let deg_ok = if induced {
                // Induced embeddings into a fixed-size pattern still only
                // need data degree >= pattern degree within the image; the
                // non-edge condition is enforced during search.
                data.degree(d) >= pattern.degree(p)
            } else {
                data.degree(d) >= pattern.degree(p)
            };
            if deg_ok {
                row.insert(d);
            }
        }
        m.push(row);
    }

    if !refine(pattern, data, &mut m) {
        return;
    }

    let mut map = vec![usize::MAX; pn];
    let mut used = BitSet::new(dn);
    let mut stopped = false;
    backtrack(
        pattern,
        data,
        induced,
        &m,
        0,
        &mut map,
        &mut used,
        &mut stopped,
        visit,
    );
}

/// Ullmann refinement to fixpoint. Returns `false` if any row empties
/// (no embedding can exist).
fn refine<P: Copy, D: Copy>(pattern: &Graph<P>, data: &Graph<D>, m: &mut [BitSet]) -> bool {
    let pn = pattern.vertex_count();
    loop {
        let mut changed = false;
        for p in 0..pn {
            let mut to_remove = Vec::new();
            for d in m[p].iter() {
                // Every pattern neighbor q of p needs a candidate adjacent to d.
                let ok = pattern.neighbors(p).all(|q| {
                    let mut inter = m[q].clone();
                    inter.intersect_with(data.adjacency_row(d));
                    !inter.is_empty()
                });
                if !ok {
                    to_remove.push(d);
                }
            }
            for d in to_remove {
                m[p].remove(d);
                changed = true;
            }
            if m[p].is_empty() {
                return false;
            }
        }
        if !changed {
            return true;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn backtrack<P: Copy, D: Copy>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    induced: bool,
    m: &[BitSet],
    depth: usize,
    map: &mut Vec<usize>,
    used: &mut BitSet,
    stopped: &mut bool,
    visit: &mut dyn FnMut(&[usize]) -> bool,
) {
    if *stopped {
        return;
    }
    if depth == pattern.vertex_count() {
        if !visit(map) {
            *stopped = true;
        }
        return;
    }
    for d in m[depth].iter() {
        if *stopped {
            return;
        }
        if used.contains(d) {
            continue;
        }
        let ok = (0..depth).all(|p| {
            let pe = pattern.has_edge(depth, p);
            let de = data.has_edge(d, map[p]);
            if induced {
                pe == de
            } else {
                !pe || de
            }
        });
        if ok {
            map[depth] = d;
            used.insert(d);
            backtrack(
                pattern,
                data,
                induced,
                m,
                depth + 1,
                map,
                used,
                stopped,
                visit,
            );
            used.remove(d);
            map[depth] = usize::MAX;
        }
    }
}

/// Convenience wrapper collecting all embeddings into a sorted vector.
#[must_use]
pub fn all_embeddings<P: Copy, D: Copy>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    induced: bool,
) -> Vec<Embedding> {
    let mut out = Vec::new();
    enumerate(pattern, data, induced, None, &mut |map| {
        out.push(Embedding::new(map.to_vec()));
        true
    });
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_embeddings;
    use mapa_graph::PatternGraph;
    use proptest::prelude::*;

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases = [
            (PatternGraph::ring(3), PatternGraph::all_to_all(5)),
            (PatternGraph::chain(4), PatternGraph::ring(6)),
            (PatternGraph::ring(4), PatternGraph::ring(4)),
            (PatternGraph::star(4), PatternGraph::all_to_all(4)),
        ];
        for (p, d) in cases {
            for induced in [false, true] {
                let got = all_embeddings(&p, &d, induced);
                let mut expect = brute_force_embeddings(&p, &d, induced);
                expect.sort();
                assert_eq!(got, expect, "pattern={p:?} induced={induced}");
            }
        }
    }

    #[test]
    fn refinement_prunes_impossible_rows() {
        // Triangle into a star: no data vertex pair among leaves is
        // adjacent, refinement must detect emptiness quickly.
        let p = PatternGraph::all_to_all(3);
        let d = PatternGraph::star(6);
        assert!(all_embeddings(&p, &d, false).is_empty());
    }

    #[test]
    fn frozen_vertices_are_excluded() {
        let p = PatternGraph::ring(2);
        let d = PatternGraph::all_to_all(4);
        let frozen = BitSet::from_indices(4, &[3]);
        let mut out = Vec::new();
        enumerate(&p, &d, false, Some(&frozen), &mut |m| {
            out.push(m.to_vec());
            true
        });
        assert_eq!(out.len(), 6); // K3 ordered pairs
        assert!(out.iter().all(|m| !m.contains(&3)));
    }

    #[test]
    fn early_stop() {
        let p = PatternGraph::ring(2);
        let d = PatternGraph::all_to_all(6);
        let mut n = 0;
        enumerate(&p, &d, false, None, &mut |_| {
            n += 1;
            n < 5
        });
        assert_eq!(n, 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn agrees_with_brute_force_on_random_graphs(
            pn in 1usize..5,
            dn in 1usize..7,
            pedges in proptest::collection::vec((0usize..5, 0usize..5), 0..8),
            dedges in proptest::collection::vec((0usize..7, 0usize..7), 0..16),
            induced in any::<bool>(),
        ) {
            let mut p = PatternGraph::new(pn);
            for (u, v) in pedges {
                let (u, v) = (u % pn, v % pn);
                if u != v { let _ = p.set_edge(u, v, ()); }
            }
            let mut d = PatternGraph::new(dn);
            for (u, v) in dedges {
                let (u, v) = (u % dn, v % dn);
                if u != v { let _ = d.set_edge(u, v, ()); }
            }
            let got = all_embeddings(&p, &d, induced);
            let mut expect = brute_force_embeddings(&p, &d, induced);
            expect.sort();
            prop_assert_eq!(got, expect);
        }
    }
}
