//! Pattern-aware subgraph matching — MAPA's stand-in for Peregrine.
//!
//! The MAPA paper (§3.3) delegates its pattern-matching stage to the
//! Peregrine graph-mining system: given an application *pattern graph* `P`
//! and a server *hardware graph* `G`, produce every subgraph of `G`
//! isomorphic to `P`. This crate provides that contract natively:
//!
//! * [`vf2`] — a VF2-style backtracking matcher (the algorithm family the
//!   paper cites via Cordella et al. and VF3) with bitset candidate pruning;
//! * [`ullmann`] — Ullmann's bit-matrix algorithm, also cited by the paper,
//!   kept as an independently-implemented cross-check backend;
//! * [`symmetry`] — pattern automorphism detection and GraphZero-style
//!   symmetry-breaking constraints, Peregrine's key trick for enumerating
//!   each match exactly once per automorphism class;
//! * [`parallel`] — parallel enumeration splitting the search on
//!   first-level candidates, running on a persistent [`WorkerPool`]
//!   (long-lived threads, channel-fed queue, deterministic ordering);
//! * [`Matcher`] — the high-level façade selecting backend, dedup mode and
//!   match caps.
//!
//! Matching semantics are *monomorphism* by default: every pattern edge must
//! map to a data-graph edge, extra data edges are allowed. That is exactly
//! the paper's setting — hardware graphs are complete (PCIe fallback), so
//! any injective placement is a valid match and scoring does the
//! discrimination. Induced-isomorphism mode is available for callers that
//! work on sparse (NVLink-only) hardware graphs.
//!
//! # Example
//!
//! ```
//! use mapa_graph::{Graph, PatternGraph};
//! use mapa_isomorph::{Matcher, MatchOptions};
//!
//! // 3-GPU ring pattern in a 4-GPU server where only some links exist.
//! let pattern = PatternGraph::ring(3);
//! let mut hw: Graph<f64> = Graph::new(4);
//! hw.add_edge(0, 1, 50.0).unwrap();
//! hw.add_edge(1, 2, 25.0).unwrap();
//! hw.add_edge(0, 2, 12.0).unwrap();
//! hw.add_edge(2, 3, 12.0).unwrap();
//!
//! let matches = Matcher::new(MatchOptions::default())
//!     .find(&pattern, &hw.to_pattern())
//!     .unwrap();
//! // Only {0,1,2} forms a triangle; one canonical embedding survives
//! // symmetry breaking (C3 has 6 automorphisms).
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].vertex_set(), vec![0, 1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
pub mod catalog;
mod embedding;
mod matcher;
mod order;
pub mod parallel;
pub mod pool;
pub mod symmetry;
pub mod ullmann;
pub mod vf2;

pub use brute::brute_force_embeddings;
pub use embedding::Embedding;
pub use matcher::{Backend, DedupMode, MatchError, MatchOptions, Matcher};
pub use order::SearchPlan;
pub use pool::{default_threads, WorkerPool};
