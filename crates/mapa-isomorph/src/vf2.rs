//! VF2-style backtracking subgraph matcher with bitset candidate pruning.
//!
//! The matcher assigns pattern vertices in [`SearchPlan`] order. For a
//! vertex with already-assigned neighbors, the candidate set is the bitwise
//! AND of the data-graph adjacency rows of those neighbors' images — one
//! word-wise intersection per back edge — minus already-used vertices.
//! Symmetry-breaking constraints are checked as soon as both endpoints are
//! assigned, pruning entire subtrees rather than filtering post-hoc.

use crate::symmetry::Constraint;
use crate::SearchPlan;
use mapa_graph::{BitSet, Graph};

/// Search configuration for a single [`enumerate`] call.
#[derive(Debug, Clone, Default)]
pub struct Vf2Config {
    /// Require induced isomorphism (pattern non-edges map to non-edges).
    pub induced: bool,
    /// Symmetry-breaking constraints over pattern vertices.
    pub constraints: Vec<Constraint>,
    /// Restricts the candidate data vertices for the *first* pattern vertex
    /// in plan order. Used by the parallel enumerator to partition the
    /// search tree; `None` allows all.
    pub first_candidates: Option<BitSet>,
}

/// Enumerates embeddings of `pattern` into `data`, invoking `visit` with the
/// complete assignment (`visit[p]` = data vertex). Return `false` from the
/// visitor to stop enumeration early.
///
/// `frozen` marks data vertices that must not be used (e.g. already
/// allocated GPUs); pass an all-zero bitset (or `None`) to allow all.
pub fn enumerate<P: Copy, D: Copy>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    config: &Vf2Config,
    frozen: Option<&BitSet>,
    visit: &mut dyn FnMut(&[usize]) -> bool,
) {
    let pn = pattern.vertex_count();
    let dn = data.vertex_count();
    if pn == 0 {
        visit(&[]);
        return;
    }
    let available = dn - frozen.map_or(0, BitSet::count);
    if pn > available {
        return;
    }

    let plan = SearchPlan::build(pattern);
    // Constraints indexed by the *position* at which they become checkable
    // (the later of the two endpoints in plan order).
    let pos_of: Vec<usize> = {
        let mut pos = vec![0usize; pn];
        for (i, &v) in plan.order.iter().enumerate() {
            pos[v] = i;
        }
        pos
    };
    let mut checks_at: Vec<Vec<Constraint>> = vec![Vec::new(); pn];
    for &c in &config.constraints {
        let at = pos_of[c.small].max(pos_of[c.large]);
        checks_at[at].push(c);
    }

    let mut state = State {
        pattern,
        data,
        plan: &plan,
        induced: config.induced,
        checks_at: &checks_at,
        first_candidates: config.first_candidates.as_ref(),
        map: vec![usize::MAX; pn],
        used: frozen.cloned().unwrap_or_else(|| BitSet::new(dn)),
        stopped: false,
    };
    state.recurse(0, visit);
}

struct State<'a, P: Copy, D: Copy> {
    pattern: &'a Graph<P>,
    data: &'a Graph<D>,
    plan: &'a SearchPlan,
    induced: bool,
    checks_at: &'a [Vec<Constraint>],
    first_candidates: Option<&'a BitSet>,
    map: Vec<usize>,
    used: BitSet,
    stopped: bool,
}

impl<P: Copy, D: Copy> State<'_, P, D> {
    fn recurse(&mut self, depth: usize, visit: &mut dyn FnMut(&[usize]) -> bool) {
        if self.stopped {
            return;
        }
        if depth == self.plan.len() {
            if !visit(&self.map) {
                self.stopped = true;
            }
            return;
        }
        let pv = self.plan.order[depth];
        let candidates = self.candidates(depth);
        for d in candidates.iter() {
            if self.stopped {
                return;
            }
            if !self.feasible(depth, pv, d) {
                continue;
            }
            self.map[pv] = d;
            self.used.insert(d);
            self.recurse(depth + 1, visit);
            self.used.remove(d);
            self.map[pv] = usize::MAX;
        }
    }

    /// Candidate data vertices for the pattern vertex at `depth`:
    /// intersection of mapped-neighbor adjacency rows, minus used vertices.
    fn candidates(&self, depth: usize) -> BitSet {
        let back = &self.plan.back_neighbors[depth];
        let dn = self.data.vertex_count();
        let mut cand = if back.is_empty() {
            BitSet::full(dn)
        } else {
            let first_img = self.map[self.plan.order[back[0]]];
            let mut c = self.data.adjacency_row(first_img).clone();
            for &j in &back[1..] {
                c.intersect_with(self.data.adjacency_row(self.map[self.plan.order[j]]));
            }
            c
        };
        cand.difference_with(&self.used);
        if depth == 0 {
            if let Some(first) = self.first_candidates {
                cand.intersect_with(first);
            }
        }
        cand
    }

    /// Checks induced non-edges and symmetry constraints for assigning
    /// data vertex `d` to pattern vertex `pv` at position `depth`.
    fn feasible(&self, depth: usize, pv: usize, d: usize) -> bool {
        if self.induced {
            // All earlier positions NOT adjacent to pv in the pattern must
            // also be non-adjacent in the data graph.
            for j in 0..depth {
                let pu = self.plan.order[j];
                if !self.pattern.has_edge(pv, pu) && self.data.has_edge(d, self.map[pu]) {
                    return false;
                }
            }
        }
        for c in &self.checks_at[depth] {
            let (s, l) = (self.image_or(c.small, pv, d), self.image_or(c.large, pv, d));
            if s >= l {
                return false;
            }
        }
        true
    }

    fn image_or(&self, pattern_vertex: usize, pv: usize, d: usize) -> usize {
        if pattern_vertex == pv {
            d
        } else {
            self.map[pattern_vertex]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_embeddings;
    use crate::symmetry::analyze;
    use crate::Embedding;
    use mapa_graph::PatternGraph;
    use proptest::prelude::*;

    fn collect(pattern: &PatternGraph, data: &PatternGraph, config: &Vf2Config) -> Vec<Embedding> {
        let mut out = Vec::new();
        enumerate(pattern, data, config, None, &mut |m| {
            out.push(Embedding::new(m.to_vec()));
            true
        });
        out.sort();
        out
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases = [
            (PatternGraph::ring(3), PatternGraph::all_to_all(5)),
            (PatternGraph::chain(3), PatternGraph::ring(6)),
            (PatternGraph::ring(4), PatternGraph::ring(4)),
            (PatternGraph::star(4), PatternGraph::all_to_all(4)),
            (PatternGraph::binary_tree(5), PatternGraph::all_to_all(6)),
            (PatternGraph::ring(5), PatternGraph::ring(4)), // no match
        ];
        for (p, d) in cases {
            for induced in [false, true] {
                let cfg = Vf2Config {
                    induced,
                    constraints: vec![],
                    first_candidates: None,
                };
                let got = collect(&p, &d, &cfg);
                let mut expect = brute_force_embeddings(&p, &d, induced);
                expect.sort();
                assert_eq!(got, expect, "pattern={p:?} data={d:?} induced={induced}");
            }
        }
    }

    #[test]
    fn empty_pattern_has_single_empty_embedding() {
        let p = PatternGraph::new(0);
        let d = PatternGraph::ring(3);
        let out = collect(&p, &d, &Vf2Config::default());
        assert_eq!(out, vec![Embedding::new(vec![])]);
    }

    #[test]
    fn frozen_vertices_are_excluded() {
        let p = PatternGraph::new(1);
        let d = PatternGraph::all_to_all(4);
        let frozen = mapa_graph::BitSet::from_indices(4, &[0, 2]);
        let mut out = Vec::new();
        enumerate(&p, &d, &Vf2Config::default(), Some(&frozen), &mut |m| {
            out.push(m[0]);
            true
        });
        out.sort_unstable();
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn early_stop_respected() {
        let p = PatternGraph::ring(2);
        let d = PatternGraph::all_to_all(5);
        let mut seen = 0;
        enumerate(&p, &d, &Vf2Config::default(), None, &mut |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn symmetry_constraints_reduce_by_automorphism_factor() {
        for (pattern, data) in [
            (PatternGraph::ring(4), PatternGraph::all_to_all(6)),
            (PatternGraph::ring(5), PatternGraph::all_to_all(6)),
            (PatternGraph::star(4), PatternGraph::all_to_all(5)),
            (PatternGraph::chain(4), PatternGraph::all_to_all(5)),
        ] {
            let (autos, constraints) = analyze(&pattern);
            let all = collect(&pattern, &data, &Vf2Config::default());
            let canon = collect(
                &pattern,
                &data,
                &Vf2Config {
                    induced: false,
                    constraints,
                    first_candidates: None,
                },
            );
            assert_eq!(
                all.len(),
                canon.len() * autos.len(),
                "pattern {pattern:?}: {} != {} * {}",
                all.len(),
                canon.len(),
                autos.len()
            );
        }
    }

    #[test]
    fn disconnected_pattern_supported() {
        // Two isolated vertices into a 3-vertex graph: 3*2 = 6 embeddings.
        let p = PatternGraph::new(2);
        let d = PatternGraph::ring(3);
        assert_eq!(collect(&p, &d, &Vf2Config::default()).len(), 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn agrees_with_brute_force_on_random_graphs(
            pn in 1usize..5,
            dn in 1usize..7,
            pedges in proptest::collection::vec((0usize..5, 0usize..5), 0..8),
            dedges in proptest::collection::vec((0usize..7, 0usize..7), 0..16),
            induced in any::<bool>(),
        ) {
            let mut p = PatternGraph::new(pn);
            for (u, v) in pedges {
                let (u, v) = (u % pn, v % pn);
                if u != v { let _ = p.set_edge(u, v, ()); }
            }
            let mut d = PatternGraph::new(dn);
            for (u, v) in dedges {
                let (u, v) = (u % dn, v % dn);
                if u != v { let _ = d.set_edge(u, v, ()); }
            }
            let cfg = Vf2Config { induced, constraints: vec![], first_candidates: None };
            let got = collect(&p, &d, &cfg);
            let mut expect = brute_force_embeddings(&p, &d, induced);
            expect.sort();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn constrained_count_times_aut_equals_total(
            pn in 2usize..5,
            dn in 2usize..7,
            pedges in proptest::collection::vec((0usize..5, 0usize..5), 0..8),
            dedges in proptest::collection::vec((0usize..7, 0usize..7), 0..16),
        ) {
            let mut p = PatternGraph::new(pn);
            for (u, v) in pedges {
                let (u, v) = (u % pn, v % pn);
                if u != v { let _ = p.set_edge(u, v, ()); }
            }
            let mut d = PatternGraph::new(dn);
            for (u, v) in dedges {
                let (u, v) = (u % dn, v % dn);
                if u != v { let _ = d.set_edge(u, v, ()); }
            }
            let (autos, constraints) = analyze(&p);
            let all = collect(&p, &d, &Vf2Config::default());
            let canon = collect(&p, &d, &Vf2Config { induced: false, constraints, first_candidates: None });
            prop_assert_eq!(all.len(), canon.len() * autos.len());
        }
    }
}
