//! A catalog of small pattern graphs.
//!
//! Peregrine-style mining systems ship a library of canonical small
//! patterns; MAPA's application graphs (rings, trees, stars, cliques) are
//! a subset. This module enumerates *all* connected unlabeled graphs up to
//! a vertex count, deduplicated by canonical code — used for exhaustive
//! matcher stress tests ("does every backend agree on every 4-vertex
//! pattern?") and available to users exploring richer application
//! topologies than NCCL's.

use mapa_graph::canonical::{canonical_code, CanonicalCode};
use mapa_graph::PatternGraph;
use std::collections::HashSet;

/// Enumerates all connected unlabeled graphs on exactly `n` vertices, one
/// representative per isomorphism class, ordered by edge count then
/// canonical code.
///
/// Known class counts: n=1 → 1, n=2 → 1, n=3 → 2, n=4 → 6, n=5 → 21.
///
/// # Panics
/// Panics for `n == 0` or `n > 6` (exhaustive edge-subset enumeration is
/// `2^(n(n-1)/2)`; n=6 is 32 768 subsets and the practical cap).
#[must_use]
pub fn connected_patterns(n: usize) -> Vec<PatternGraph> {
    assert!(
        (1..=6).contains(&n),
        "catalog supports 1..=6 vertices, got {n}"
    );
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .collect();
    let m = pairs.len();
    let mut seen: HashSet<CanonicalCode> = HashSet::new();
    let mut out: Vec<(usize, CanonicalCode, PatternGraph)> = Vec::new();
    for mask in 0u64..(1 << m) {
        let mut g = PatternGraph::new(n);
        for (bit, &(a, b)) in pairs.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                g.add_edge(a, b, ()).expect("subset edges valid");
            }
        }
        if !g.is_connected() {
            continue;
        }
        let code = canonical_code(&g);
        if seen.insert(code.clone()) {
            out.push((g.edge_count(), code, g));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out.into_iter().map(|(_, _, g)| g).collect()
}

/// All connected patterns with between `min_n` and `max_n` vertices.
#[must_use]
pub fn connected_patterns_up_to(min_n: usize, max_n: usize) -> Vec<PatternGraph> {
    (min_n..=max_n).flat_map(connected_patterns).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, DedupMode, MatchOptions, Matcher};
    use mapa_graph::canonical::are_isomorphic;

    #[test]
    fn class_counts_match_oeis_a001349() {
        // Connected graphs on n nodes: 1, 1, 2, 6, 21, 112 (OEIS A001349).
        assert_eq!(connected_patterns(1).len(), 1);
        assert_eq!(connected_patterns(2).len(), 1);
        assert_eq!(connected_patterns(3).len(), 2);
        assert_eq!(connected_patterns(4).len(), 6);
        assert_eq!(connected_patterns(5).len(), 21);
        assert_eq!(connected_patterns(6).len(), 112);
    }

    #[test]
    fn catalog_entries_are_pairwise_non_isomorphic() {
        let cat = connected_patterns(4);
        for i in 0..cat.len() {
            for j in (i + 1)..cat.len() {
                assert!(!are_isomorphic(&cat[i], &cat[j]), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn catalog_contains_the_nccl_shapes() {
        let cat = connected_patterns(5);
        for shape in [
            PatternGraph::ring(5),
            PatternGraph::chain(5),
            PatternGraph::star(5),
            PatternGraph::all_to_all(5),
            PatternGraph::binary_tree(5),
        ] {
            assert!(
                cat.iter().any(|p| are_isomorphic(p, &shape)),
                "catalog must contain {shape:?}"
            );
        }
    }

    #[test]
    fn ordered_by_edge_count() {
        let cat = connected_patterns(5);
        for w in cat.windows(2) {
            assert!(w[0].edge_count() <= w[1].edge_count());
        }
        // Tree first (n-1 edges), clique last (n(n-1)/2 edges).
        assert_eq!(cat.first().unwrap().edge_count(), 4);
        assert_eq!(cat.last().unwrap().edge_count(), 10);
    }

    #[test]
    fn range_helper() {
        let cat = connected_patterns_up_to(2, 4);
        assert_eq!(cat.len(), 1 + 2 + 6);
    }

    /// The matcher torture test the catalog exists for: every backend
    /// agrees on every connected 4-vertex pattern against a nontrivial
    /// data graph, in both dedup modes.
    #[test]
    fn all_backends_agree_on_entire_catalog() {
        let data = {
            // DGX-1V NVLink-only graph: sparse enough to be interesting.
            let mut g = PatternGraph::new(8);
            for (a, b) in [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (4, 6),
                (4, 7),
                (5, 6),
                (5, 7),
                (6, 7),
                (0, 4),
                (1, 5),
                (2, 6),
                (3, 7),
            ] {
                g.add_edge(a, b, ()).unwrap();
            }
            g
        };
        for pattern in connected_patterns_up_to(2, 4) {
            let mut counts = Vec::new();
            for backend in [Backend::Vf2, Backend::Ullmann, Backend::BruteForce] {
                for dedup in [DedupMode::CanonicalOnly, DedupMode::AllMappings] {
                    let m = Matcher::new(MatchOptions {
                        backend,
                        dedup,
                        ..MatchOptions::default()
                    });
                    counts.push((
                        format!("{backend:?}/{dedup:?}"),
                        m.find(&pattern, &data).unwrap().len(),
                    ));
                }
            }
            // Canonical counts equal across backends; all-mapping counts
            // equal across backends.
            let canon: Vec<usize> = counts.iter().step_by(2).map(|(_, c)| *c).collect();
            let full: Vec<usize> = counts.iter().skip(1).step_by(2).map(|(_, c)| *c).collect();
            assert!(
                canon.windows(2).all(|w| w[0] == w[1]),
                "{pattern:?}: {counts:?}"
            );
            assert!(
                full.windows(2).all(|w| w[0] == w[1]),
                "{pattern:?}: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "1..=6")]
    fn oversized_catalog_rejected() {
        let _ = connected_patterns(7);
    }
}
