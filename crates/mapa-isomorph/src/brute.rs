//! Brute-force reference enumerator.
//!
//! Tries every injective assignment of pattern vertices to data vertices and
//! keeps the ones preserving pattern edges (and, in induced mode, non-edges).
//! Exponential, but exact — the other backends are property-tested against
//! it on every build.

use crate::Embedding;
use mapa_graph::Graph;

/// Enumerates all monomorphic (or induced, if `induced`) embeddings of
/// `pattern` into `data` by exhaustive search.
#[must_use]
pub fn brute_force_embeddings<P: Copy, D: Copy>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    induced: bool,
) -> Vec<Embedding> {
    let pn = pattern.vertex_count();
    let dn = data.vertex_count();
    if pn > dn {
        return vec![];
    }
    let mut out = Vec::new();
    let mut map = vec![usize::MAX; pn];
    let mut used = vec![false; dn];
    rec(pattern, data, induced, 0, &mut map, &mut used, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn rec<P: Copy, D: Copy>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    induced: bool,
    depth: usize,
    map: &mut Vec<usize>,
    used: &mut Vec<bool>,
    out: &mut Vec<Embedding>,
) {
    if depth == pattern.vertex_count() {
        out.push(Embedding::new(map.clone()));
        return;
    }
    for d in 0..data.vertex_count() {
        if used[d] {
            continue;
        }
        let ok = (0..depth).all(|p| {
            let pe = pattern.has_edge(depth, p);
            let de = data.has_edge(d, map[p]);
            if induced {
                pe == de
            } else {
                !pe || de
            }
        });
        if ok {
            map[depth] = d;
            used[d] = true;
            rec(pattern, data, induced, depth + 1, map, used, out);
            used[d] = false;
            map[depth] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_graph::PatternGraph;

    #[test]
    fn single_vertex_pattern_matches_every_vertex() {
        let p = PatternGraph::new(1);
        let d = PatternGraph::ring(4);
        assert_eq!(brute_force_embeddings(&p, &d, false).len(), 4);
    }

    #[test]
    fn edge_into_complete_graph() {
        // One edge into K4: 4*3 = 12 ordered embeddings.
        let p = PatternGraph::ring(2);
        let d = PatternGraph::all_to_all(4);
        assert_eq!(brute_force_embeddings(&p, &d, false).len(), 12);
    }

    #[test]
    fn triangle_into_ring_has_no_match() {
        let p = PatternGraph::all_to_all(3);
        let d = PatternGraph::ring(5);
        assert!(brute_force_embeddings(&p, &d, false).is_empty());
    }

    #[test]
    fn pattern_larger_than_data() {
        let p = PatternGraph::ring(5);
        let d = PatternGraph::ring(4);
        assert!(brute_force_embeddings(&p, &d, false).is_empty());
    }

    #[test]
    fn induced_vs_monomorphic_counts_differ() {
        // Pattern P3 (path) into K3: monomorphic = all 6 injections;
        // induced = 0 because K3 has the chord.
        let p = PatternGraph::chain(3);
        let d = PatternGraph::all_to_all(3);
        assert_eq!(brute_force_embeddings(&p, &d, false).len(), 6);
        assert_eq!(brute_force_embeddings(&p, &d, true).len(), 0);
        // P3 into C4 induced: each path of length 2; C4 has 4 such, times
        // 2 orientations = 8.
        let c4 = PatternGraph::ring(4);
        assert_eq!(brute_force_embeddings(&p, &c4, true).len(), 8);
    }

    #[test]
    fn all_results_are_valid() {
        let p = PatternGraph::ring(4);
        let d = PatternGraph::all_to_all(5);
        for e in brute_force_embeddings(&p, &d, false) {
            assert!(e.is_valid_monomorphism(&p, &d));
        }
    }

    #[test]
    fn c4_into_k4_count() {
        // C4 into K4: injections mapping cycle edges onto edges of K4 — all
        // 4! = 24 injective maps work since K4 is complete.
        let p = PatternGraph::ring(4);
        let d = PatternGraph::all_to_all(4);
        assert_eq!(brute_force_embeddings(&p, &d, false).len(), 24);
        // Induced C4 in K4: none (chords exist).
        assert_eq!(brute_force_embeddings(&p, &d, true).len(), 0);
    }
}
