//! Parallel match enumeration.
//!
//! The paper notes (§5.4) that MAPA's scoring overhead "can be reduced by
//! parallelizing ... since it is a data parallel problem". Enumeration
//! parallelises the same way: the search tree is partitioned at the first
//! assignment level — each candidate image of the first pattern vertex
//! roots an independent subtree — and subtrees are distributed over a
//! persistent [`WorkerPool`] as one task per subtree root. Each task runs
//! a VF2 search whose first-vertex candidate set is restricted to its
//! assigned root, so no work is duplicated, and the pool's shared queue
//! load-balances uneven subtrees across workers.

use crate::pool::WorkerPool;
use crate::vf2::{self, Vf2Config};
use crate::Embedding;
use mapa_graph::{BitSet, Graph, PatternGraph};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Search state shared by every subtree task of one enumeration call. The
/// pool's tasks are `'static`, so the call owns structure-only copies of
/// both graphs (matching ignores weights; the copy is a few bitset rows).
struct SharedSearch {
    pattern: PatternGraph,
    data: PatternGraph,
    config: Vf2Config,
    frozen: Option<BitSet>,
    found: AtomicUsize,
    cap: usize,
}

/// Enumerates up to `cap` embeddings on `pool`'s workers.
///
/// Ordering contract: the result is always **sorted lexicographically**
/// by assignment vector — callers need not sort. When enumeration runs to
/// exhaustion the result is therefore fully deterministic; under cap
/// truncation the *set* of returned matches remains nondeterministic (as
/// with any early-terminated parallel search), but the count respects the
/// cap and the order within the set is still sorted.
#[must_use]
pub fn enumerate_parallel<P: Copy, D: Copy>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    config: &Vf2Config,
    frozen: Option<&BitSet>,
    pool: &WorkerPool,
    cap: usize,
) -> Vec<Embedding> {
    let pn = pattern.vertex_count();
    let dn = data.vertex_count();
    if pn == 0 {
        return vec![Embedding::new(vec![])];
    }
    if pool.threads() <= 1 || dn == 0 {
        let mut out = Vec::new();
        vf2::enumerate(pattern, data, config, frozen, &mut |m| {
            out.push(Embedding::new(m.to_vec()));
            out.len() < cap
        });
        out.sort();
        return out;
    }

    let candidates: Vec<usize> = (0..dn)
        .filter(|&d| frozen.is_none_or(|f| !f.contains(d)))
        .collect();

    let shared = Arc::new(SharedSearch {
        pattern: pattern.to_pattern(),
        data: data.to_pattern(),
        config: config.clone(),
        frozen: frozen.cloned(),
        found: AtomicUsize::new(0),
        cap,
    });

    let tasks: Vec<_> = candidates
        .into_iter()
        .map(|root| {
            let sh = Arc::clone(&shared);
            move || search_subtree(&sh, root, dn)
        })
        .collect();

    // Deterministic reassembly: subtree i's results are in VF2 order and
    // subtrees are concatenated in root order, so (absent truncation) the
    // output equals the sequential enumeration, independent of worker
    // count and scheduling. Sorting unconditionally keeps the contract
    // simple even when the match count lands exactly on the cap.
    let mut out: Vec<Embedding> = pool.scatter(tasks).into_iter().flatten().collect();
    out.sort();
    out.truncate(cap);
    out
}

fn search_subtree(sh: &SharedSearch, root: usize, dn: usize) -> Vec<Embedding> {
    let mut local = Vec::new();
    if sh.found.load(Ordering::Relaxed) >= sh.cap {
        return local;
    }
    let subtree = Vf2Config {
        induced: sh.config.induced,
        constraints: sh.config.constraints.clone(),
        first_candidates: Some(BitSet::from_indices(dn, &[root])),
    };
    vf2::enumerate(
        &sh.pattern,
        &sh.data,
        &subtree,
        sh.frozen.as_ref(),
        &mut |m| {
            local.push(Embedding::new(m.to_vec()));
            sh.found.fetch_add(1, Ordering::Relaxed) + 1 < sh.cap
        },
    );
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::analyze;
    use mapa_graph::PatternGraph;

    fn sequential(
        pattern: &PatternGraph,
        data: &PatternGraph,
        config: &Vf2Config,
    ) -> Vec<Embedding> {
        let mut out = Vec::new();
        vf2::enumerate(pattern, data, config, None, &mut |m| {
            out.push(Embedding::new(m.to_vec()));
            true
        });
        out.sort();
        out
    }

    #[test]
    fn parallel_equals_sequential_unconstrained() {
        let pattern = PatternGraph::ring(4);
        let data = PatternGraph::all_to_all(7);
        let config = Vf2Config::default();
        let expect = sequential(&pattern, &data, &config);
        for threads in [2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let got = enumerate_parallel(&pattern, &data, &config, None, &pool, usize::MAX);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn untruncated_results_are_sorted_without_caller_sorting() {
        let pattern = PatternGraph::ring(3);
        let data = PatternGraph::all_to_all(6);
        let pool = WorkerPool::new(4);
        let got = enumerate_parallel(
            &pattern,
            &data,
            &Vf2Config::default(),
            None,
            &pool,
            usize::MAX,
        );
        assert!(
            got.windows(2).all(|w| w[0] <= w[1]),
            "must come back sorted"
        );
    }

    #[test]
    fn pool_reuse_across_calls_is_deterministic() {
        let pattern = PatternGraph::ring(4);
        let data = PatternGraph::all_to_all(7);
        let config = Vf2Config::default();
        let pool = WorkerPool::new(3);
        let first = enumerate_parallel(&pattern, &data, &config, None, &pool, usize::MAX);
        for _ in 0..5 {
            let again = enumerate_parallel(&pattern, &data, &config, None, &pool, usize::MAX);
            assert_eq!(again, first);
        }
    }

    #[test]
    fn parallel_equals_sequential_with_constraints() {
        let pattern = PatternGraph::ring(5);
        let (_, constraints) = analyze(&pattern);
        let data = PatternGraph::all_to_all(7);
        let config = Vf2Config {
            induced: false,
            constraints,
            first_candidates: None,
        };
        let expect = sequential(&pattern, &data, &config);
        let pool = WorkerPool::new(4);
        let got = enumerate_parallel(&pattern, &data, &config, None, &pool, usize::MAX);
        assert_eq!(got, expect);
    }

    #[test]
    fn respects_frozen_mask() {
        let pattern = PatternGraph::ring(3);
        let data = PatternGraph::all_to_all(6);
        let frozen = BitSet::from_indices(6, &[0, 5]);
        let config = Vf2Config::default();
        let pool = WorkerPool::new(3);
        let got = enumerate_parallel(&pattern, &data, &config, Some(&frozen), &pool, usize::MAX);
        assert!(!got.is_empty());
        for e in &got {
            assert!(e.as_slice().iter().all(|&d| d != 0 && d != 5));
        }
    }

    #[test]
    fn cap_limits_results() {
        let pattern = PatternGraph::ring(2);
        let data = PatternGraph::all_to_all(8);
        let pool = WorkerPool::new(4);
        let got = enumerate_parallel(&pattern, &data, &Vf2Config::default(), None, &pool, 5);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_pattern() {
        let pool = WorkerPool::new(4);
        let got = enumerate_parallel(
            &PatternGraph::new(0),
            &PatternGraph::all_to_all(3),
            &Vf2Config::default(),
            None,
            &pool,
            usize::MAX,
        );
        assert_eq!(got, vec![Embedding::new(vec![])]);
    }

    #[test]
    fn induced_mode_parallel() {
        // Induced C4s in the 3-cube graph (Q3 has 6 faces × 8 mappings each).
        let mut q3 = PatternGraph::new(8);
        for u in 0..8u32 {
            for b in 0..3 {
                let v = u ^ (1 << b);
                if u < v {
                    q3.add_edge(u as usize, v as usize, ()).unwrap();
                }
            }
        }
        let pattern = PatternGraph::ring(4);
        let config = Vf2Config {
            induced: true,
            ..Vf2Config::default()
        };
        let expect = sequential(&pattern, &q3, &config);
        let pool = WorkerPool::new(4);
        let got = enumerate_parallel(&pattern, &q3, &config, None, &pool, usize::MAX);
        assert_eq!(got, expect);
        assert_eq!(expect.len(), 6 * 8);
    }
}
