//! Parallel match enumeration.
//!
//! The paper notes (§5.4) that MAPA's scoring overhead "can be reduced by
//! parallelizing ... since it is a data parallel problem". Enumeration
//! parallelises the same way: the search tree is partitioned at the first
//! assignment level — each candidate image of the first pattern vertex
//! roots an independent subtree — and subtrees are distributed over
//! crossbeam scoped threads through a shared atomic work index. Each worker
//! runs a VF2 search whose first-vertex candidate set is restricted to its
//! assigned subtree root, so no work is duplicated.

use crate::vf2::{self, Vf2Config};
use crate::Embedding;
use mapa_graph::{BitSet, Graph};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Enumerates up to `cap` embeddings using `threads` workers.
///
/// Results are concatenated in nondeterministic order — callers sort. With
/// `cap < usize::MAX` the *set* of returned matches is nondeterministic (as
/// with any early-terminated parallel search), but the count respects the
/// cap.
#[must_use]
pub fn enumerate_parallel<P: Copy + Sync, D: Copy + Sync>(
    pattern: &Graph<P>,
    data: &Graph<D>,
    config: &Vf2Config,
    frozen: Option<&BitSet>,
    threads: usize,
    cap: usize,
) -> Vec<Embedding> {
    let pn = pattern.vertex_count();
    let dn = data.vertex_count();
    if pn == 0 {
        return vec![Embedding::new(vec![])];
    }
    if threads <= 1 || dn == 0 {
        let mut out = Vec::new();
        vf2::enumerate(pattern, data, config, frozen, &mut |m| {
            out.push(Embedding::new(m.to_vec()));
            out.len() < cap
        });
        return out;
    }

    let candidates: Vec<usize> = (0..dn)
        .filter(|&d| frozen.is_none_or(|f| !f.contains(d)))
        .collect();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Embedding>> = Mutex::new(Vec::new());
    let found = AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(candidates.len().max(1)) {
            scope.spawn(|_| {
                let mut local = Vec::new();
                loop {
                    if found.load(Ordering::Relaxed) >= cap {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= candidates.len() {
                        break;
                    }
                    let subtree = Vf2Config {
                        induced: config.induced,
                        constraints: config.constraints.clone(),
                        first_candidates: Some(BitSet::from_indices(dn, &[candidates[i]])),
                    };
                    vf2::enumerate(pattern, data, &subtree, frozen, &mut |m| {
                        local.push(Embedding::new(m.to_vec()));
                        found.fetch_add(1, Ordering::Relaxed) + 1 < cap
                    });
                }
                results
                    .lock()
                    .expect("no panics hold the lock")
                    .extend(local);
            });
        }
    })
    .expect("matcher worker panicked");

    let mut out = results.into_inner().expect("scope joined all workers");
    out.truncate(cap);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::analyze;
    use mapa_graph::PatternGraph;

    fn sequential(
        pattern: &PatternGraph,
        data: &PatternGraph,
        config: &Vf2Config,
    ) -> Vec<Embedding> {
        let mut out = Vec::new();
        vf2::enumerate(pattern, data, config, None, &mut |m| {
            out.push(Embedding::new(m.to_vec()));
            true
        });
        out.sort();
        out
    }

    #[test]
    fn parallel_equals_sequential_unconstrained() {
        let pattern = PatternGraph::ring(4);
        let data = PatternGraph::all_to_all(7);
        let config = Vf2Config::default();
        let expect = sequential(&pattern, &data, &config);
        for threads in [2, 3, 8] {
            let mut got = enumerate_parallel(&pattern, &data, &config, None, threads, usize::MAX);
            got.sort();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_sequential_with_constraints() {
        let pattern = PatternGraph::ring(5);
        let (_, constraints) = analyze(&pattern);
        let data = PatternGraph::all_to_all(7);
        let config = Vf2Config {
            induced: false,
            constraints,
            first_candidates: None,
        };
        let expect = sequential(&pattern, &data, &config);
        let mut got = enumerate_parallel(&pattern, &data, &config, None, 4, usize::MAX);
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn respects_frozen_mask() {
        let pattern = PatternGraph::ring(3);
        let data = PatternGraph::all_to_all(6);
        let frozen = BitSet::from_indices(6, &[0, 5]);
        let config = Vf2Config::default();
        let got = enumerate_parallel(&pattern, &data, &config, Some(&frozen), 3, usize::MAX);
        assert!(!got.is_empty());
        for e in &got {
            assert!(e.as_slice().iter().all(|&d| d != 0 && d != 5));
        }
    }

    #[test]
    fn cap_limits_results() {
        let pattern = PatternGraph::ring(2);
        let data = PatternGraph::all_to_all(8);
        let got = enumerate_parallel(&pattern, &data, &Vf2Config::default(), None, 4, 5);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_pattern() {
        let got = enumerate_parallel(
            &PatternGraph::new(0),
            &PatternGraph::all_to_all(3),
            &Vf2Config::default(),
            None,
            4,
            usize::MAX,
        );
        assert_eq!(got, vec![Embedding::new(vec![])]);
    }

    #[test]
    fn induced_mode_parallel() {
        // Induced C4s in the 3-cube graph (Q3 has 6 faces × 8 mappings each).
        let mut q3 = PatternGraph::new(8);
        for u in 0..8u32 {
            for b in 0..3 {
                let v = u ^ (1 << b);
                if u < v {
                    q3.add_edge(u as usize, v as usize, ()).unwrap();
                }
            }
        }
        let pattern = PatternGraph::ring(4);
        let config = Vf2Config {
            induced: true,
            ..Vf2Config::default()
        };
        let expect = sequential(&pattern, &q3, &config);
        let mut got = enumerate_parallel(&pattern, &q3, &config, None, 4, usize::MAX);
        got.sort();
        assert_eq!(got, expect);
        assert_eq!(expect.len(), 6 * 8);
    }
}
