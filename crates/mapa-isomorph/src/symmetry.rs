//! Pattern automorphisms and symmetry-breaking constraints.
//!
//! A pattern with a non-trivial automorphism group (a 5-ring has 10
//! automorphisms) yields every subgraph occurrence multiple times — once per
//! automorphism. Peregrine/GraphZero-style engines avoid the redundancy by
//! imposing *symmetry-breaking constraints*: a set of `map[a] < map[b]`
//! restrictions such that exactly one embedding per automorphism class
//! satisfies all of them. We implement the GraphZero construction: repeatedly
//! stabilise the smallest moved vertex, emitting one constraint per orbit
//! element.

use mapa_graph::Graph;

/// Enumerates all automorphisms of `pattern` as permutation vectors
/// (`a[v]` = image of vertex `v`). The identity is always present.
#[must_use]
pub fn automorphisms<W: Copy>(pattern: &Graph<W>) -> Vec<Vec<usize>> {
    let n = pattern.vertex_count();
    let mut result = Vec::new();
    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];
    search(pattern, &mut perm, &mut used, 0, &mut result);
    result
}

fn search<W: Copy>(
    g: &Graph<W>,
    perm: &mut Vec<usize>,
    used: &mut Vec<bool>,
    depth: usize,
    out: &mut Vec<Vec<usize>>,
) {
    let n = g.vertex_count();
    if depth == n {
        out.push(perm.clone());
        return;
    }
    for candidate in 0..n {
        if used[candidate] || g.degree(candidate) != g.degree(depth) {
            continue;
        }
        let consistent =
            (0..depth).all(|prev| g.has_edge(depth, prev) == g.has_edge(candidate, perm[prev]));
        if consistent {
            perm[depth] = candidate;
            used[candidate] = true;
            search(g, perm, used, depth + 1, out);
            used[candidate] = false;
            perm[depth] = usize::MAX;
        }
    }
}

/// A symmetry-breaking restriction: the data vertex assigned to pattern
/// vertex `small` must be numerically less than the one assigned to `large`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Pattern vertex whose image must be smaller.
    pub small: usize,
    /// Pattern vertex whose image must be larger.
    pub large: usize,
}

/// Computes symmetry-breaking constraints for `pattern` from its
/// automorphism group (GraphZero, Mawhirter et al.):
///
/// 1. Let `A` = Aut(P).
/// 2. While `|A| > 1`: pick the smallest vertex `v` moved by some `a ∈ A`;
///    for every distinct image `a(v) ≠ v` emit `map[v] < map[a(v)]`; replace
///    `A` by the stabiliser of `v`.
///
/// An embedding class (orbit under Aut(P)) contains exactly one embedding
/// satisfying all emitted constraints — see the crate tests, which verify
/// `|all embeddings| = |constrained embeddings| × |Aut(P)|` exhaustively.
#[must_use]
pub fn symmetry_breaking_constraints(automorphisms: &[Vec<usize>]) -> Vec<Constraint> {
    let mut group: Vec<&Vec<usize>> = automorphisms.iter().collect();
    let mut constraints = Vec::new();
    let n = automorphisms.first().map_or(0, |a| a.len());

    while group.len() > 1 {
        // Smallest vertex moved by any remaining automorphism.
        let Some(v) = (0..n).find(|&v| group.iter().any(|a| a[v] != v)) else {
            break; // only identity-like elements remain
        };
        let mut images: Vec<usize> = group.iter().map(|a| a[v]).filter(|&i| i != v).collect();
        images.sort_unstable();
        images.dedup();
        for img in images {
            constraints.push(Constraint {
                small: v,
                large: img,
            });
        }
        group.retain(|a| a[v] == v);
    }
    constraints
}

/// Convenience: automorphisms + constraints for a pattern in one call.
#[must_use]
pub fn analyze<W: Copy>(pattern: &Graph<W>) -> (Vec<Vec<usize>>, Vec<Constraint>) {
    let autos = automorphisms(pattern);
    let constraints = symmetry_breaking_constraints(&autos);
    (autos, constraints)
}

/// Checks a complete assignment against all constraints.
#[must_use]
pub fn satisfies(map: &[usize], constraints: &[Constraint]) -> bool {
    constraints.iter().all(|c| map[c.small] < map[c.large])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_graph::PatternGraph;

    #[test]
    fn automorphism_group_sizes() {
        assert_eq!(automorphisms(&PatternGraph::ring(4)).len(), 8);
        assert_eq!(automorphisms(&PatternGraph::ring(5)).len(), 10);
        assert_eq!(automorphisms(&PatternGraph::chain(3)).len(), 2);
        assert_eq!(automorphisms(&PatternGraph::star(4)).len(), 6);
        assert_eq!(automorphisms(&PatternGraph::all_to_all(3)).len(), 6);
        // Asymmetric graph: a path with a pendant making degrees unique.
        let asym =
            PatternGraph::from_edges(4, &[(0, 1, ()), (1, 2, ()), (2, 3, ()), (1, 3, ())]).unwrap();
        // deg: 0->1, 1->3, 2->2, 3->2; vertices 2,3 are swappable? 2-3 edge
        // exists, both adjacent to 1... swap(2,3) keeps edges: (1,2)->(1,3) ok,
        // (2,3)->(3,2) ok. So 2 automorphisms.
        assert_eq!(automorphisms(&asym).len(), 2);
    }

    #[test]
    fn identity_always_present() {
        let autos = automorphisms(&PatternGraph::binary_tree(5));
        let n = 5;
        assert!(autos.contains(&(0..n).collect::<Vec<_>>()));
    }

    #[test]
    fn automorphisms_preserve_edges() {
        let g = PatternGraph::ring_tree(5);
        for a in automorphisms(&g) {
            for (u, v, ()) in g.edges() {
                assert!(g.has_edge(a[u], a[v]), "{a:?} breaks edge ({u},{v})");
            }
        }
    }

    #[test]
    fn constraints_trivial_group_is_empty() {
        // Pattern with unique degrees has only the identity automorphism.
        let g = PatternGraph::from_edges(3, &[(0, 1, ()), (1, 2, ())]).unwrap();
        // P3: end-swap automorphism exists, so use a truly rigid graph —
        // a spider with legs of distinct lengths 1, 2, 3 from center 2.
        let rigid = PatternGraph::from_edges(
            7,
            &[
                (0, 1, ()),
                (1, 2, ()),
                (2, 3, ()),
                (2, 4, ()),
                (4, 5, ()),
                (5, 6, ()),
            ],
        )
        .unwrap();
        assert_eq!(automorphisms(&rigid).len(), 1);
        assert!(symmetry_breaking_constraints(&automorphisms(&rigid)).is_empty());
        // P3 by contrast yields exactly one constraint (ends ordered).
        let (_, c) = analyze(&g);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], Constraint { small: 0, large: 2 });
    }

    #[test]
    fn constraint_filtering_keeps_one_per_class_complete_graph() {
        // Pattern K3 embedded into data K3 (automorphism case): 6 injective
        // maps, exactly one should satisfy constraints.
        let (autos, constraints) = analyze(&PatternGraph::all_to_all(3));
        assert_eq!(autos.len(), 6);
        let mut kept = 0;
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            if satisfies(&p, &constraints) {
                kept += 1;
            }
        }
        assert_eq!(kept, 1);
    }

    #[test]
    fn ring5_constraint_filtering() {
        let (autos, constraints) = analyze(&PatternGraph::ring(5));
        assert_eq!(autos.len(), 10);
        // Generate all 120 bijections of {0..5}; exactly 120/10 = 12 classes,
        // but a bijection is an embedding of C5 into K5 only if it maps ring
        // edges to edges — in K5 all are. Each automorphism class has 10
        // members; count satisfying assignments.
        let mut kept = 0;
        let mut total = 0;
        permute(&mut (0..5).collect::<Vec<_>>(), 0, &mut |p| {
            total += 1;
            if satisfies(p, &constraints) {
                kept += 1;
            }
        });
        assert_eq!(total, 120);
        assert_eq!(kept, 120 / 10);
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }
}
