//! High-level matching façade.
//!
//! [`Matcher`] wraps the backends ([`crate::vf2`], [`crate::ullmann`],
//! brute force) behind one configuration struct, handles symmetry-breaking
//! deduplication, match caps, frozen-vertex masks, and (optionally)
//! parallel enumeration, and returns results in a deterministic order.

use crate::pool::{default_threads, WorkerPool};
use crate::symmetry::{self, Constraint};
use crate::vf2::Vf2Config;
use crate::{brute_force_embeddings, parallel, ullmann, vf2, Embedding};
use mapa_graph::{BitSet, Graph};
use std::fmt;
use std::sync::Arc;

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// VF2-style backtracking with bitset pruning (default; fastest).
    #[default]
    Vf2,
    /// Ullmann's bit-matrix algorithm (independent cross-check).
    Ullmann,
    /// Exhaustive injective assignment (reference; exponential).
    BruteForce,
}

/// How to treat automorphic duplicates of the same subgraph occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// Return one canonical embedding per automorphism class (Peregrine
    /// behaviour; default). A 5-ring occurrence is reported once, not 10×.
    #[default]
    CanonicalOnly,
    /// Return every distinct vertex mapping.
    AllMappings,
}

/// Matching configuration.
#[derive(Debug, Clone, Default)]
pub struct MatchOptions {
    /// Search backend.
    pub backend: Backend,
    /// Automorphic-duplicate handling.
    pub dedup: DedupMode,
    /// Require induced isomorphism instead of monomorphism.
    pub induced: bool,
    /// Stop after this many matches (`None` = unbounded).
    pub max_matches: Option<usize>,
    /// Number of worker threads (`None` or `Some(1)` = sequential).
    /// Only the VF2 backend parallelises; others ignore this.
    pub threads: Option<usize>,
}

impl MatchOptions {
    /// Default options with parallel enumeration sized by
    /// [`default_threads`] (the machine's available parallelism) — the
    /// replacement for caller-supplied magic thread counts.
    #[must_use]
    pub fn parallel() -> Self {
        Self {
            threads: Some(default_threads()),
            ..Self::default()
        }
    }
}

/// Errors from [`Matcher::find`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// `threads == Some(0)` was requested.
    ZeroThreads,
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::ZeroThreads => write!(f, "thread count must be at least 1"),
        }
    }
}

impl std::error::Error for MatchError {}

/// A configured subgraph matcher. Holds no graph state; when configured
/// with more than one thread it owns (or shares) a persistent
/// [`WorkerPool`] that is reused across every `find` call — thread
/// start-up is paid once, at construction. Cloning a matcher shares its
/// pool.
#[derive(Debug, Clone, Default)]
pub struct Matcher {
    opts: MatchOptions,
    pool: Option<Arc<WorkerPool>>,
}

impl Matcher {
    /// Creates a matcher with the given options. If `opts.threads`
    /// requests parallelism (`Some(t)` with `t > 1`), a dedicated worker
    /// pool of that size is spawned here and reused for the matcher's
    /// lifetime.
    #[must_use]
    pub fn new(opts: MatchOptions) -> Self {
        let pool = match opts.threads {
            Some(t) if t > 1 => Some(Arc::new(WorkerPool::new(t))),
            _ => None,
        };
        Self { opts, pool }
    }

    /// Creates a matcher that runs parallel enumeration on an existing
    /// shared pool (e.g. one pool serving every allocator of a server).
    /// `opts.threads` still gates *whether* the parallel path is taken;
    /// the pool decides the worker count.
    #[must_use]
    pub fn with_pool(opts: MatchOptions, pool: Arc<WorkerPool>) -> Self {
        Self {
            opts,
            pool: Some(pool),
        }
    }

    /// The worker pool backing parallel enumeration, if any. Exposed so
    /// callers can verify pool sharing (e.g. every shard of a cluster
    /// matching on one `Arc`'d pool) or hand the same pool to further
    /// matchers.
    #[must_use]
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Finds embeddings of `pattern` in `data`. All data vertices are
    /// available.
    ///
    /// # Errors
    /// Returns [`MatchError`] on invalid configuration.
    pub fn find<P: Copy, D: Copy>(
        &self,
        pattern: &Graph<P>,
        data: &Graph<D>,
    ) -> Result<Vec<Embedding>, MatchError> {
        self.find_with_frozen(pattern, data, None)
    }

    /// Finds embeddings of `pattern` in `data`, excluding `frozen` data
    /// vertices (e.g. GPUs already allocated to other tenants).
    ///
    /// Results are sorted lexicographically by assignment vector, so output
    /// is deterministic across backends and thread counts (except under
    /// `max_matches`, where which matches are found first is
    /// backend-dependent).
    ///
    /// # Errors
    /// Returns [`MatchError`] on invalid configuration.
    pub fn find_with_frozen<P: Copy, D: Copy>(
        &self,
        pattern: &Graph<P>,
        data: &Graph<D>,
        frozen: Option<&BitSet>,
    ) -> Result<Vec<Embedding>, MatchError> {
        if self.opts.threads == Some(0) {
            return Err(MatchError::ZeroThreads);
        }
        let cap = self.opts.max_matches.unwrap_or(usize::MAX);
        if cap == 0 {
            return Ok(vec![]);
        }

        let constraints: Vec<Constraint> = match self.opts.dedup {
            DedupMode::CanonicalOnly => {
                let autos = symmetry::automorphisms(pattern);
                symmetry::symmetry_breaking_constraints(&autos)
            }
            DedupMode::AllMappings => vec![],
        };

        let mut out: Vec<Embedding> = match self.opts.backend {
            Backend::Vf2 => {
                let config = Vf2Config {
                    induced: self.opts.induced,
                    constraints,
                    first_candidates: None,
                };
                match (&self.pool, self.opts.threads) {
                    (Some(pool), Some(t)) if t > 1 => {
                        parallel::enumerate_parallel(pattern, data, &config, frozen, pool, cap)
                    }
                    _ => {
                        let mut v = Vec::new();
                        vf2::enumerate(pattern, data, &config, frozen, &mut |m| {
                            v.push(Embedding::new(m.to_vec()));
                            v.len() < cap
                        });
                        v
                    }
                }
            }
            Backend::Ullmann => {
                let mut v = Vec::new();
                ullmann::enumerate(pattern, data, self.opts.induced, frozen, &mut |m| {
                    if symmetry::satisfies(m, &constraints) {
                        v.push(Embedding::new(m.to_vec()));
                    }
                    v.len() < cap
                });
                v
            }
            Backend::BruteForce => {
                let mut v: Vec<Embedding> =
                    brute_force_embeddings(pattern, data, self.opts.induced)
                        .into_iter()
                        .filter(|e| {
                            symmetry::satisfies(e.as_slice(), &constraints)
                                && frozen
                                    .is_none_or(|f| e.as_slice().iter().all(|&d| !f.contains(d)))
                        })
                        .collect();
                v.truncate(cap);
                v
            }
        };

        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Streams embeddings to `visit` without materialising them — the
    /// memory-safe path for large searches (a 9-vertex ring in a 16-vertex
    /// complete graph has hundreds of millions of mappings). Respects the
    /// configured dedup mode and induced flag; `max_matches` caps the
    /// number of visits; returning `false` from the visitor stops early.
    ///
    /// Only the configured backend's sequential path is used (`threads`
    /// is ignored: a streaming visitor has no meaningful parallel order).
    ///
    /// # Errors
    /// Returns [`MatchError`] on invalid configuration.
    pub fn for_each_with_frozen<P: Copy, D: Copy>(
        &self,
        pattern: &Graph<P>,
        data: &Graph<D>,
        frozen: Option<&BitSet>,
        visit: &mut dyn FnMut(&[usize]) -> bool,
    ) -> Result<(), MatchError> {
        if self.opts.threads == Some(0) {
            return Err(MatchError::ZeroThreads);
        }
        let cap = self.opts.max_matches.unwrap_or(usize::MAX);
        if cap == 0 {
            return Ok(());
        }
        let constraints: Vec<Constraint> = match self.opts.dedup {
            DedupMode::CanonicalOnly => {
                let autos = symmetry::automorphisms(pattern);
                symmetry::symmetry_breaking_constraints(&autos)
            }
            DedupMode::AllMappings => vec![],
        };
        let mut seen = 0usize;
        match self.opts.backend {
            Backend::Vf2 => {
                let config = Vf2Config {
                    induced: self.opts.induced,
                    constraints,
                    first_candidates: None,
                };
                vf2::enumerate(pattern, data, &config, frozen, &mut |m| {
                    seen += 1;
                    visit(m) && seen < cap
                });
            }
            Backend::Ullmann => {
                ullmann::enumerate(pattern, data, self.opts.induced, frozen, &mut |m| {
                    if symmetry::satisfies(m, &constraints) {
                        seen += 1;
                        return visit(m) && seen < cap;
                    }
                    true
                });
            }
            Backend::BruteForce => {
                for e in brute_force_embeddings(pattern, data, self.opts.induced) {
                    if seen >= cap {
                        break;
                    }
                    let ok = symmetry::satisfies(e.as_slice(), &constraints)
                        && frozen.is_none_or(|f| e.as_slice().iter().all(|&d| !f.contains(d)));
                    if ok {
                        seen += 1;
                        if !visit(e.as_slice()) {
                            break;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Counts embeddings without materialising them.
    ///
    /// # Errors
    /// Returns [`MatchError`] on invalid configuration.
    pub fn count<P: Copy, D: Copy>(
        &self,
        pattern: &Graph<P>,
        data: &Graph<D>,
    ) -> Result<usize, MatchError> {
        let mut n = 0usize;
        self.for_each_with_frozen(pattern, data, None, &mut |_| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// The options this matcher was built with.
    #[must_use]
    pub fn options(&self) -> &MatchOptions {
        &self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_graph::PatternGraph;

    fn k(n: usize) -> PatternGraph {
        PatternGraph::all_to_all(n)
    }

    #[test]
    fn backends_agree_in_all_mappings_mode() {
        let pattern = PatternGraph::ring(4);
        let data = k(6);
        let mut results = Vec::new();
        for backend in [Backend::Vf2, Backend::Ullmann, Backend::BruteForce] {
            let m = Matcher::new(MatchOptions {
                backend,
                dedup: DedupMode::AllMappings,
                ..MatchOptions::default()
            });
            results.push(m.find(&pattern, &data).unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert!(!results[0].is_empty());
    }

    #[test]
    fn backends_agree_in_canonical_mode() {
        let pattern = PatternGraph::ring(5);
        let data = k(6);
        let mut results = Vec::new();
        for backend in [Backend::Vf2, Backend::Ullmann, Backend::BruteForce] {
            let m = Matcher::new(MatchOptions {
                backend,
                ..MatchOptions::default()
            });
            results.push(m.find(&pattern, &data).unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        // C5 in K6: C(6,5) vertex sets × (5!/10) distinct cycles per set
        //   = 6 × 12 = 72 occurrences.
        assert_eq!(results[0].len(), 72);
    }

    #[test]
    fn canonical_mode_divides_by_automorphisms() {
        let pattern = PatternGraph::ring(4); // 8 automorphisms
        let data = k(5);
        let all = Matcher::new(MatchOptions {
            dedup: DedupMode::AllMappings,
            ..MatchOptions::default()
        })
        .find(&pattern, &data)
        .unwrap();
        let canon = Matcher::new(MatchOptions::default())
            .find(&pattern, &data)
            .unwrap();
        assert_eq!(all.len(), canon.len() * 8);
    }

    #[test]
    fn max_matches_caps_results() {
        let pattern = PatternGraph::ring(2);
        let data = k(6);
        let m = Matcher::new(MatchOptions {
            max_matches: Some(4),
            ..MatchOptions::default()
        });
        assert_eq!(m.find(&pattern, &data).unwrap().len(), 4);
        let m0 = Matcher::new(MatchOptions {
            max_matches: Some(0),
            ..MatchOptions::default()
        });
        assert!(m0.find(&pattern, &data).unwrap().is_empty());
    }

    #[test]
    fn zero_threads_rejected() {
        let m = Matcher::new(MatchOptions {
            threads: Some(0),
            ..MatchOptions::default()
        });
        assert_eq!(
            m.find(&PatternGraph::ring(2), &k(3)),
            Err(MatchError::ZeroThreads)
        );
    }

    #[test]
    fn frozen_mask_respected_across_backends() {
        let pattern = PatternGraph::ring(3);
        let data = k(5);
        let frozen = mapa_graph::BitSet::from_indices(5, &[0, 1]);
        for backend in [Backend::Vf2, Backend::Ullmann, Backend::BruteForce] {
            let m = Matcher::new(MatchOptions {
                backend,
                ..MatchOptions::default()
            });
            let found = m.find_with_frozen(&pattern, &data, Some(&frozen)).unwrap();
            // Only {2,3,4} remains: exactly one triangle occurrence.
            assert_eq!(found.len(), 1, "{backend:?}");
            assert_eq!(found[0].vertex_set(), vec![2, 3, 4]);
        }
    }

    #[test]
    fn single_vertex_job_on_partially_allocated_server() {
        let pattern = PatternGraph::new(1);
        let data = k(8);
        let frozen = mapa_graph::BitSet::from_indices(8, &[0, 1, 2, 3, 4, 5, 6]);
        let found = Matcher::default()
            .find_with_frozen(&pattern, &data, Some(&frozen))
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].image(0), 7);
    }

    #[test]
    fn streaming_agrees_with_collecting() {
        let pattern = PatternGraph::ring(4);
        let data = k(7);
        for backend in [Backend::Vf2, Backend::Ullmann, Backend::BruteForce] {
            for dedup in [DedupMode::CanonicalOnly, DedupMode::AllMappings] {
                let m = Matcher::new(MatchOptions {
                    backend,
                    dedup,
                    ..MatchOptions::default()
                });
                let collected = m.find(&pattern, &data).unwrap();
                let mut streamed: Vec<Vec<usize>> = Vec::new();
                m.for_each_with_frozen(&pattern, &data, None, &mut |e| {
                    streamed.push(e.to_vec());
                    true
                })
                .unwrap();
                streamed.sort();
                let collected_raw: Vec<Vec<usize>> =
                    collected.iter().map(|e| e.as_slice().to_vec()).collect();
                assert_eq!(streamed, collected_raw, "{backend:?}/{dedup:?}");
                assert_eq!(m.count(&pattern, &data).unwrap(), collected.len());
            }
        }
    }

    #[test]
    fn streaming_early_stop_and_cap() {
        let pattern = PatternGraph::ring(2);
        let data = k(6);
        let m = Matcher::default();
        let mut n = 0;
        m.for_each_with_frozen(&pattern, &data, None, &mut |_| {
            n += 1;
            n < 3
        })
        .unwrap();
        assert_eq!(n, 3);
        let capped = Matcher::new(MatchOptions {
            max_matches: Some(4),
            ..MatchOptions::default()
        });
        assert_eq!(capped.count(&pattern, &data).unwrap(), 4);
    }

    #[test]
    fn streaming_respects_frozen() {
        let pattern = PatternGraph::ring(3);
        let data = k(5);
        let frozen = mapa_graph::BitSet::from_indices(5, &[4]);
        let m = Matcher::default();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        m.for_each_with_frozen(&pattern, &data, Some(&frozen), &mut |e| {
            sets.push(e.to_vec());
            true
        })
        .unwrap();
        assert!(!sets.is_empty());
        assert!(sets.iter().all(|s| !s.contains(&4)));
    }

    #[test]
    fn parallel_matches_sequential() {
        let pattern = PatternGraph::ring(4);
        let data = k(8);
        let seq = Matcher::new(MatchOptions::default())
            .find(&pattern, &data)
            .unwrap();
        let par = Matcher::new(MatchOptions {
            threads: Some(4),
            ..MatchOptions::default()
        })
        .find(&pattern, &data)
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn matcher_reuses_its_pool_across_calls_and_clones() {
        let m = Matcher::new(MatchOptions {
            threads: Some(3),
            ..MatchOptions::default()
        });
        let pool_ptr = std::sync::Arc::as_ptr(m.pool().expect("parallel matcher has a pool"));
        let pattern = PatternGraph::ring(4);
        let data = k(7);
        let first = m.find(&pattern, &data).unwrap();
        for _ in 0..3 {
            assert_eq!(m.find(&pattern, &data).unwrap(), first);
        }
        // Clones share the same pool instead of spawning new threads.
        let clone = m.clone();
        assert_eq!(
            std::sync::Arc::as_ptr(clone.pool().unwrap()),
            pool_ptr,
            "clone must share the pool"
        );
        assert_eq!(clone.find(&pattern, &data).unwrap(), first);
    }

    #[test]
    fn shared_pool_serves_multiple_matchers() {
        let pool = std::sync::Arc::new(crate::WorkerPool::new(2));
        let a = Matcher::with_pool(
            MatchOptions {
                threads: Some(2),
                ..MatchOptions::default()
            },
            std::sync::Arc::clone(&pool),
        );
        let b = Matcher::with_pool(MatchOptions::parallel(), std::sync::Arc::clone(&pool));
        let pattern = PatternGraph::ring(3);
        let data = k(6);
        let seq = Matcher::default().find(&pattern, &data).unwrap();
        assert_eq!(a.find(&pattern, &data).unwrap(), seq);
        assert_eq!(b.find(&pattern, &data).unwrap(), seq);
    }

    #[test]
    fn parallel_options_use_available_parallelism() {
        let opts = MatchOptions::parallel();
        assert_eq!(opts.threads, Some(crate::default_threads()));
        assert!(opts.threads.unwrap() >= 1);
    }
}
