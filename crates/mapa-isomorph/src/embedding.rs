//! Embeddings: injective maps from pattern vertices to data vertices.

use mapa_graph::{BitSet, Graph};

/// An embedding of a pattern graph into a data graph.
///
/// `map[p]` is the data vertex assigned to pattern vertex `p`. The map is
/// injective by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Embedding {
    map: Vec<usize>,
}

impl Embedding {
    /// Wraps a complete assignment vector.
    ///
    /// # Panics
    /// Panics (in debug builds) if the map is not injective.
    #[must_use]
    pub fn new(map: Vec<usize>) -> Self {
        debug_assert!(
            {
                let mut sorted = map.clone();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "embedding must be injective: {map:?}"
        );
        Self { map }
    }

    /// Number of pattern vertices mapped.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True for the empty embedding (0-vertex pattern).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The data vertex that pattern vertex `p` maps to.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn image(&self, p: usize) -> usize {
        self.map[p]
    }

    /// The full assignment slice (`[p] -> data vertex`).
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// The set of data vertices used, sorted ascending.
    #[must_use]
    pub fn vertex_set(&self) -> Vec<usize> {
        let mut v = self.map.clone();
        v.sort_unstable();
        v
    }

    /// The set of data vertices used, as a bitset of capacity `data_n`.
    ///
    /// # Panics
    /// Panics if any mapped vertex is `>= data_n`.
    #[must_use]
    pub fn vertex_bitset(&self, data_n: usize) -> BitSet {
        BitSet::from_indices(data_n, &self.map)
    }

    /// Sum of data-graph weights over the *pattern's* edges — the paper's
    /// Aggregated Bandwidth (Eq. 1) when `data` is a hardware graph: only
    /// links the application actually uses are counted.
    ///
    /// Pattern edges whose images are not connected in `data` contribute 0
    /// (cannot happen for monomorphic embeddings, but the method is total).
    #[must_use]
    pub fn mapped_edge_weight<W: Copy>(&self, pattern: &Graph<W>, data: &Graph<f64>) -> f64 {
        pattern
            .edges()
            .filter_map(|(u, v, _)| data.weight(self.image(u), self.image(v)))
            .sum()
    }

    /// Verifies that this embedding is a valid monomorphism of `pattern`
    /// into `data`: injective, in-range, and edge-preserving.
    #[must_use]
    pub fn is_valid_monomorphism<P: Copy, D: Copy>(
        &self,
        pattern: &Graph<P>,
        data: &Graph<D>,
    ) -> bool {
        if self.map.len() != pattern.vertex_count() {
            return false;
        }
        if self.map.iter().any(|&d| d >= data.vertex_count()) {
            return false;
        }
        let mut sorted = self.map.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return false;
        }
        pattern
            .edges()
            .all(|(u, v, _)| data.has_edge(self.image(u), self.image(v)))
    }

    /// Normalises the embedding by the pattern's automorphism group: returns
    /// the lexicographically-least assignment vector among `{map ∘ a}` for
    /// all automorphisms `a`. Two embeddings are equivalent (same subgraph
    /// occurrence) iff their canonical forms are equal.
    #[must_use]
    pub fn canonicalize(&self, automorphisms: &[Vec<usize>]) -> Embedding {
        let mut best = self.map.clone();
        for a in automorphisms {
            debug_assert_eq!(a.len(), self.map.len());
            let candidate: Vec<usize> = a.iter().map(|&pa| self.map[pa]).collect();
            if candidate < best {
                best = candidate;
            }
        }
        Embedding { map: best }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_graph::PatternGraph;

    #[test]
    fn accessors() {
        let e = Embedding::new(vec![3, 1, 2]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.image(0), 3);
        assert_eq!(e.vertex_set(), vec![1, 2, 3]);
        assert_eq!(e.vertex_bitset(5).to_vec(), vec![1, 2, 3]);
        assert!(!e.is_empty());
        assert!(Embedding::new(vec![]).is_empty());
    }

    #[test]
    fn mapped_edge_weight_counts_only_pattern_edges() {
        // Pattern: chain 0-1-2. Data: triangle with distinct weights.
        let pattern = PatternGraph::chain(3);
        let data =
            mapa_graph::Graph::from_edges(3, &[(0, 1, 50.0), (1, 2, 25.0), (0, 2, 12.0)]).unwrap();
        let e = Embedding::new(vec![0, 1, 2]);
        // Chain uses edges (0,1) and (1,2) only; the 12.0 link is unused.
        assert!((e.mapped_edge_weight(&pattern, &data) - 75.0).abs() < 1e-12);
        // Different embedding of the same vertex set uses different links.
        let e2 = Embedding::new(vec![1, 0, 2]);
        assert!((e2.mapped_edge_weight(&pattern, &data) - 62.0).abs() < 1e-12);
    }

    #[test]
    fn validity_checks() {
        let pattern = PatternGraph::ring(3);
        let tri = PatternGraph::all_to_all(3);
        let path = PatternGraph::chain(3);
        assert!(Embedding::new(vec![0, 1, 2]).is_valid_monomorphism(&pattern, &tri));
        assert!(!Embedding::new(vec![0, 1, 2]).is_valid_monomorphism(&pattern, &path));
        // Wrong arity.
        assert!(!Embedding::new(vec![0, 1]).is_valid_monomorphism(&pattern, &tri));
        // Out of range.
        assert!(!Embedding::new(vec![0, 1, 5]).is_valid_monomorphism(&pattern, &tri));
    }

    #[test]
    fn canonicalize_picks_least_under_automorphism() {
        // C3 automorphisms = all 6 permutations of {0,1,2}.
        let autos: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let e = Embedding::new(vec![7, 3, 5]);
        let canon = e.canonicalize(&autos);
        assert_eq!(canon.as_slice(), &[3, 5, 7]);
        // Any other embedding of the same set canonicalizes identically.
        let e2 = Embedding::new(vec![5, 7, 3]);
        assert_eq!(e2.canonicalize(&autos), canon);
    }
}
