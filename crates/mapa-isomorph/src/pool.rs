//! A persistent worker pool for parallel match enumeration.
//!
//! The paper's §5.4 observes that MAPA's matching/scoring overhead "can be
//! reduced by parallelizing ... since it is a data parallel problem". The
//! first cut of this crate spawned fresh scoped threads on every matcher
//! call; at allocation-decision frequency (one decision per job arrival)
//! thread spawn/join dominates small searches. [`WorkerPool`] instead keeps
//! long-lived workers fed by a channel work queue, so a [`crate::Matcher`]
//! — or several matchers sharing one pool through an [`std::sync::Arc`] —
//! pays thread start-up once per process.
//!
//! Tasks are `'static` closures (the pool owns no caller stack frames);
//! [`WorkerPool::scatter`] provides the fork/join idiom the matcher needs
//! with *deterministic result ordering*: results come back indexed and are
//! reassembled in submission order regardless of which worker finished
//! first.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of pool work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Process-unique pool ids, so a worker thread can recognize its own pool.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The id of the pool whose worker loop is running on this thread
    /// (`0` outside any pool). Lets [`WorkerPool::scatter`] detect
    /// re-entrant use — a pool task scattering on its own pool — and fall
    /// back to inline execution instead of deadlocking on workers that
    /// are all busy waiting for each other.
    static CURRENT_POOL: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The default worker count: the machine's available parallelism, falling
/// back to 1 when the runtime cannot report it. Use this instead of
/// caller-supplied magic thread counts.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fixed-size pool of long-lived worker threads fed by a shared queue.
///
/// Dropping the pool closes the queue and joins every worker. A panicking
/// task is contained to its own execution (the worker survives and keeps
/// serving the queue); the panic surfaces at the join point of the batch
/// that submitted it.
///
/// Calling [`WorkerPool::scatter`] from *inside* a task of the same pool
/// is safe: the nested batch runs inline on the calling worker (the
/// blocked-caller deadlock cannot happen), in task order, so results are
/// identical to a top-level scatter.
pub struct WorkerPool {
    id: u64,
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("mapa-matcher-{i}"))
                    .spawn(move || {
                        CURRENT_POOL.with(|p| p.set(id));
                        worker_loop(&rx);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            id,
            sender: Some(sender),
            workers,
        }
    }

    /// Spawns a pool sized by [`default_threads`].
    #[must_use]
    pub fn with_default_threads() -> Self {
        Self::new(default_threads())
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a fire-and-forget task.
    pub fn submit(&self, task: Task) {
        self.sender
            .as_ref()
            .expect("sender lives until drop")
            .send(task)
            .expect("pool workers outlive the pool handle");
    }

    /// Runs every task on the pool and returns their results *in task
    /// order* — the deterministic fork/join primitive. The calling thread
    /// blocks until all tasks finish.
    ///
    /// Re-entrant: when called from a task already running on this pool
    /// (e.g. a parallel dispatch task whose shard policy enumerates
    /// through the same shared matcher pool), the batch runs inline on
    /// the calling worker in task order — same results, no deadlock.
    ///
    /// # Panics
    /// Panics if any task panicked (the batch cannot be completed).
    pub fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if CURRENT_POOL.with(std::cell::Cell::get) == self.id {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let n = tasks.len();
        let (tx, rx) = channel::<(usize, T)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(Box::new(move || {
                // Errors mean the batch caller gave up; nothing to do.
                let _ = tx.send((i, task()));
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, value) = rx
                .recv()
                .expect("a pool task panicked before delivering its result");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index delivered exactly once"))
            .collect()
    }
}

fn worker_loop(rx: &Mutex<Receiver<Task>>) {
    loop {
        // Hold the lock only for the dequeue, not while running the task.
        let task = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a worker panicked while holding the lock
        };
        match task {
            // Contain panics so one bad task cannot kill the pool; the
            // batch that submitted it notices via its result channel.
            Ok(task) => {
                let _ = catch_unwind(AssertUnwindSafe(task));
            }
            Err(_) => return, // queue closed: pool is being dropped
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.sender.take(); // close the queue; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    // Stagger so completion order differs from submission.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((32 - i) % 5) as u64 * 50,
                    ));
                    i * i
                }
            })
            .collect();
        let got = pool.scatter(tasks);
        let expect: Vec<usize> = (0..32).map(|i| i * i).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..10usize {
            let got = pool.scatter((0..8).map(|i| move || i + round).collect::<Vec<_>>());
            assert_eq!(got, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn submit_runs_detached_work() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..6 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            }));
        }
        for _ in 0..6 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        pool.submit(Box::new(|| panic!("task failure is contained")));
        pool.submit(Box::new(move || {
            let _ = tx.send(7usize);
        }));
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn nested_scatter_on_the_same_pool_runs_inline() {
        // Every worker scatters on its own pool: without the re-entrancy
        // fallback this deadlocks (all workers blocked waiting for tasks
        // only they could run). Results must still come back in order.
        let pool = Arc::new(WorkerPool::new(2));
        let outer: Vec<_> = (0..4usize)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner = pool.scatter((0..3usize).map(|j| move || i * 10 + j).collect());
                    assert_eq!(inner, vec![i * 10, i * 10 + 1, i * 10 + 2]);
                    i
                }
            })
            .collect();
        assert_eq!(pool.scatter(outer), vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_scatter_on_a_different_pool_still_parallelizes() {
        // Re-entrancy detection is per pool id: scattering on *another*
        // pool from inside a task must keep using that pool's workers.
        let outer_pool = WorkerPool::new(2);
        let inner_pool = Arc::new(WorkerPool::new(2));
        let tasks: Vec<_> = (0..4usize)
            .map(|i| {
                let inner_pool = Arc::clone(&inner_pool);
                move || inner_pool.scatter(vec![move || i * 2]).pop().unwrap()
            })
            .collect();
        assert_eq!(outer_pool.scatter(tasks), vec![0, 2, 4, 6]);
    }

    #[test]
    fn zero_thread_request_is_clamped() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.scatter(vec![|| 1 + 1]), vec![2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(WorkerPool::with_default_threads().threads() >= 1);
    }

    #[test]
    fn drop_joins_cleanly_with_pending_results_consumed() {
        let pool = WorkerPool::new(3);
        let got = pool.scatter((0..100usize).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(got.len(), 100);
        drop(pool); // must not hang
    }
}
