//! Pattern search-order planning.
//!
//! Backtracking matchers are sensitive to the order in which pattern
//! vertices are assigned: placing a vertex adjacent to already-placed ones
//! lets the candidate set be computed by adjacency intersection instead of a
//! full scan. The plan here is the classic connectivity-first heuristic:
//! start from a highest-degree vertex, grow by always picking the unplaced
//! vertex with the most placed neighbors (ties: higher degree, then lower
//! index for determinism).

use mapa_graph::Graph;

/// A precomputed assignment order for a pattern graph.
#[derive(Debug, Clone)]
pub struct SearchPlan {
    /// Pattern vertices in assignment order.
    pub order: Vec<usize>,
    /// For each position `i`, the positions `< i` whose pattern vertices are
    /// adjacent to `order[i]` (the "back edges" to check/intersect).
    pub back_neighbors: Vec<Vec<usize>>,
}

impl SearchPlan {
    /// Builds the plan for `pattern`.
    #[must_use]
    pub fn build<W: Copy>(pattern: &Graph<W>) -> Self {
        let n = pattern.vertex_count();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut placed = vec![false; n];

        for _ in 0..n {
            let next = (0..n)
                .filter(|&v| !placed[v])
                .max_by(|&a, &b| {
                    let ka = placed_neighbor_count(pattern, &placed, a);
                    let kb = placed_neighbor_count(pattern, &placed, b);
                    ka.cmp(&kb)
                        .then(pattern.degree(a).cmp(&pattern.degree(b)))
                        .then(b.cmp(&a)) // prefer smaller index
                })
                .expect("unplaced vertex exists");
            placed[next] = true;
            order.push(next);
        }

        let back_neighbors = order
            .iter()
            .enumerate()
            .map(|(i, &v)| (0..i).filter(|&j| pattern.has_edge(v, order[j])).collect())
            .collect();

        Self {
            order,
            back_neighbors,
        }
    }

    /// Number of pattern vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the empty pattern.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

fn placed_neighbor_count<W: Copy>(pattern: &Graph<W>, placed: &[bool], v: usize) -> usize {
    pattern.neighbors(v).filter(|&u| placed[u]).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_graph::PatternGraph;

    #[test]
    fn order_is_a_permutation() {
        for pattern in [
            PatternGraph::ring(6),
            PatternGraph::chain(5),
            PatternGraph::star(7),
            PatternGraph::binary_tree(6),
            PatternGraph::new(4),
        ] {
            let plan = SearchPlan::build(&pattern);
            let mut seen = plan.order.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..pattern.vertex_count()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn connected_pattern_always_extends_frontier() {
        // After the first vertex, every placed vertex of a connected pattern
        // must touch at least one earlier vertex.
        for pattern in [
            PatternGraph::ring(7),
            PatternGraph::chain(6),
            PatternGraph::binary_tree(7),
            PatternGraph::all_to_all(5),
        ] {
            let plan = SearchPlan::build(&pattern);
            for i in 1..plan.len() {
                assert!(
                    !plan.back_neighbors[i].is_empty(),
                    "position {i} of {pattern:?} has no back neighbors"
                );
            }
        }
    }

    #[test]
    fn star_starts_at_hub() {
        let plan = SearchPlan::build(&PatternGraph::star(5));
        assert_eq!(plan.order[0], 0, "hub has highest degree");
    }

    #[test]
    fn back_neighbors_reference_adjacent_positions() {
        let pattern = PatternGraph::ring(5);
        let plan = SearchPlan::build(&pattern);
        for i in 0..plan.len() {
            for &j in &plan.back_neighbors[i] {
                assert!(j < i);
                assert!(pattern.has_edge(plan.order[i], plan.order[j]));
            }
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(SearchPlan::build(&PatternGraph::new(0)).is_empty());
        let single = SearchPlan::build(&PatternGraph::new(1));
        assert_eq!(single.order, vec![0]);
        assert!(single.back_neighbors[0].is_empty());
    }
}
