//! Virtualized accelerators — the paper's §3.2/§3.3 extension sketch.
//!
//! "A potential solution to address this is to label the vertices … with
//! the amount of physical resources available", and for many-to-one
//! mapping, "representing virtual GPUs as separate nodes in the hardware
//! graph". This module implements the second idea for Nvidia MIG-style
//! hardware partitioning: a physical GPU is replaced by `k` virtual GPU
//! vertices. Each slice inherits the physical GPU's external links (they
//! *share* the physical NVLink — the pessimistic alternative of dividing
//! bandwidth per slice is selectable), and slices of the same GPU talk
//! through on-die memory, modeled as the fastest link class.
//!
//! The entry point is [`PartitionPlan`]: declare which GPUs split into how
//! many slices, then [`PartitionPlan::apply`] it to a machine to get a
//! [`VirtualTopology`] whose [`SliceMap`] names every slice's physical
//! GPU. The map travels inside the [`Topology`] itself, so allocators and
//! schedulers downstream see slice structure without extra plumbing.
//!
//! Static link interference is still out of scope exactly as the paper
//! leaves it; *dynamic* co-residency pressure is scored by the allocator
//! (see `mapa-core`), which reads the [`SliceMap`] embedded here.

use crate::{LinkType, Topology};
use mapa_graph::Graph;
use std::collections::BTreeMap;
use std::fmt;

/// How a slice shares its physical GPU's external links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceBandwidth {
    /// Each slice sees the full physical link (optimistic; fine when
    /// co-resident slices rarely communicate simultaneously).
    Shared,
    /// External links are degraded one class per extra slice
    /// (pessimistic static partitioning): double → single → PCIe.
    Degraded,
}

/// Slice↔physical mapping of a partitioned machine.
///
/// Vertices of a [`VirtualTopology`] are slices (or whole GPUs, for
/// physical GPUs the plan left alone); this type answers which physical
/// GPU each vertex lives on and how many slices each physical GPU was cut
/// into. Slices of one GPU always occupy consecutive vertex ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceMap {
    /// Per vertex: the physical GPU it lives on.
    phys_of: Vec<usize>,
    /// Per physical GPU: how many slices it was cut into (1 = whole).
    slice_count: Vec<usize>,
    /// Per physical GPU: its first vertex id.
    first_vertex: Vec<usize>,
}

impl SliceMap {
    fn new(phys_of: Vec<usize>, slice_count: Vec<usize>) -> Self {
        let mut first_vertex = Vec::with_capacity(slice_count.len());
        let mut next = 0;
        for &c in &slice_count {
            first_vertex.push(next);
            next += c;
        }
        debug_assert_eq!(next, phys_of.len());
        Self {
            phys_of,
            slice_count,
            first_vertex,
        }
    }

    /// An identity map: `n` physical GPUs, none sliced.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self::new((0..n).collect(), vec![1; n])
    }

    /// Number of vertices (slices + whole GPUs).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.phys_of.len()
    }

    /// Number of physical GPUs.
    #[must_use]
    pub fn physical_count(&self) -> usize {
        self.slice_count.len()
    }

    /// The physical GPU vertex `v` lives on.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn physical_of(&self, v: usize) -> usize {
        self.phys_of[v]
    }

    /// How many slices physical GPU `phys` was cut into (1 = whole).
    ///
    /// # Panics
    /// Panics if `phys` is out of range.
    #[must_use]
    pub fn slices_of(&self, phys: usize) -> usize {
        self.slice_count[phys]
    }

    /// The vertex ids living on physical GPU `phys` (consecutive).
    ///
    /// # Panics
    /// Panics if `phys` is out of range.
    #[must_use]
    pub fn vertices_of(&self, phys: usize) -> std::ops::Range<usize> {
        let first = self.first_vertex[phys];
        first..first + self.slice_count[phys]
    }

    /// Whether vertex `v` is a slice of a partitioned GPU (as opposed to
    /// a whole GPU the plan left alone).
    #[must_use]
    pub fn is_slice(&self, v: usize) -> bool {
        self.slice_count[self.phys_of[v]] > 1
    }

    /// Whether two vertices share a physical GPU.
    #[must_use]
    pub fn co_resident(&self, a: usize, b: usize) -> bool {
        self.phys_of[a] == self.phys_of[b]
    }

    /// Whether any GPU is actually split.
    #[must_use]
    pub fn is_partitioned(&self) -> bool {
        self.slice_count.iter().any(|&c| c > 1)
    }
}

/// A declarative multi-GPU partition plan: which physical GPUs split into
/// how many slices, and how slices share external links.
///
/// ```
/// use mapa_topology::virt::{PartitionPlan, SliceBandwidth};
/// use mapa_topology::machines;
///
/// let virt = PartitionPlan::new()
///     .split(0, 7)
///     .split(3, 2)
///     .apply(&machines::dgx1_v100());
/// assert_eq!(virt.topology().gpu_count(), 8 + 6 + 1);
/// assert_eq!(virt.slice_map().slices_of(0), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionPlan {
    splits: BTreeMap<usize, usize>,
    degraded: bool,
}

impl PartitionPlan {
    /// An empty plan (no GPU split, links shared).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the slice-bandwidth mode for the whole plan (default
    /// [`SliceBandwidth::Shared`]).
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: SliceBandwidth) -> Self {
        self.degraded = bandwidth == SliceBandwidth::Degraded;
        self
    }

    /// Splits physical GPU `gpu` into `slices` slices. Splitting the same
    /// GPU twice keeps the last value; `slices = 1` removes the split.
    ///
    /// # Panics
    /// Panics if `slices` is 0 or exceeds 7 (MIG's hardware limit).
    #[must_use]
    pub fn split(mut self, gpu: usize, slices: usize) -> Self {
        assert!(
            (1..=7).contains(&slices),
            "MIG supports 1..=7 slices, got {slices}"
        );
        if slices == 1 {
            self.splits.remove(&gpu);
        } else {
            self.splits.insert(gpu, slices);
        }
        self
    }

    /// Whether the plan splits nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }

    /// The slice-bandwidth mode.
    #[must_use]
    pub fn bandwidth(&self) -> SliceBandwidth {
        if self.degraded {
            SliceBandwidth::Degraded
        } else {
            SliceBandwidth::Shared
        }
    }

    /// The `(gpu, slices)` pairs, ascending by GPU.
    pub fn splits(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.splits.iter().map(|(&g, &s)| (g, s))
    }

    /// Parses the CLI spelling `"gpu:slices,gpu:slices,..."` (e.g.
    /// `"0:7,3:2"`), optionally suffixed with `";degraded"` for
    /// [`SliceBandwidth::Degraded`].
    ///
    /// # Errors
    /// Returns a human-readable message for malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let (body, mode) = match s.split_once(';') {
            Some((body, mode)) => (body, Some(mode.trim())),
            None => (s, None),
        };
        let mut plan = PartitionPlan::new();
        match mode {
            None => {}
            Some(m) if m.eq_ignore_ascii_case("shared") => {}
            Some(m) if m.eq_ignore_ascii_case("degraded") => {
                plan = plan.with_bandwidth(SliceBandwidth::Degraded);
            }
            Some(m) => return Err(format!("unknown slice-bandwidth mode '{m}'")),
        }
        for part in body.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (gpu, slices) = part
                .split_once(':')
                .ok_or_else(|| format!("expected gpu:slices, got '{part}'"))?;
            let gpu: usize = gpu
                .trim()
                .parse()
                .map_err(|_| format!("bad GPU index '{gpu}'"))?;
            let slices: usize = slices
                .trim()
                .parse()
                .map_err(|_| format!("bad slice count '{slices}'"))?;
            if !(1..=7).contains(&slices) {
                return Err(format!("MIG supports 1..=7 slices, got {slices}"));
            }
            plan = plan.split(gpu, slices);
        }
        Ok(plan)
    }

    /// Canonical spelling, parseable by [`PartitionPlan::parse`].
    #[must_use]
    pub fn label(&self) -> String {
        let body = self
            .splits
            .iter()
            .map(|(g, s)| format!("{g}:{s}"))
            .collect::<Vec<_>>()
            .join(",");
        if self.degraded {
            format!("{body};degraded")
        } else {
            body
        }
    }

    /// Applies the plan to a machine, expanding each split GPU in place
    /// into consecutive slice vertices. Physical GPUs keep their relative
    /// order; the virtual machine's name encodes the plan (so model
    /// caches keyed by machine name never confuse two plans).
    ///
    /// # Panics
    /// Panics if any split GPU is out of range, or if `topology` is
    /// already partitioned.
    #[must_use]
    pub fn apply(&self, topology: &Topology) -> VirtualTopology {
        assert!(
            topology.slice_map().is_none(),
            "topology '{}' is already partitioned",
            topology.name()
        );
        let n_old = topology.gpu_count();
        for &gpu in self.splits.keys() {
            assert!(gpu < n_old, "GPU {gpu} out of range");
        }

        let copies = |old: usize| -> usize { self.splits.get(&old).copied().unwrap_or(1) };
        // old vertex -> first new vertex id.
        let mut new_id = Vec::with_capacity(n_old);
        let mut phys_of = Vec::new();
        let mut slice_count = Vec::with_capacity(n_old);
        for old in 0..n_old {
            new_id.push(phys_of.len());
            let c = copies(old);
            slice_count.push(c);
            for _ in 0..c {
                phys_of.push(old);
            }
        }
        let n_new = phys_of.len();

        let degrade = |l: LinkType| -> Option<LinkType> {
            match l {
                LinkType::DoubleNvLink2 => Some(LinkType::SingleNvLink2),
                LinkType::SingleNvLink2 | LinkType::SingleNvLink1 => None, // PCIe fallback
                LinkType::Pcie => None,
            }
        };

        let mut g: Graph<LinkType> = Graph::new(n_new);
        for (a, b, link) in topology.link_graph().edges() {
            // A link is degraded when either endpoint is actually sliced.
            let effective = if self.degraded && (copies(a) > 1 || copies(b) > 1) {
                degrade(link)
            } else {
                Some(link)
            };
            if let Some(l) = effective {
                for ta in new_id[a]..new_id[a] + copies(a) {
                    for tb in new_id[b]..new_id[b] + copies(b) {
                        g.add_edge(ta, tb, l).expect("expansion edges valid");
                    }
                }
            }
        }
        // On-die links among slices of the same GPU.
        for (old, &base) in new_id.iter().enumerate() {
            for i in 0..copies(old) {
                for j in (i + 1)..copies(old) {
                    g.add_edge(base + i, base + j, LinkType::DoubleNvLink2)
                        .expect("intra-GPU links valid");
                }
            }
        }

        let sockets = phys_of.iter().map(|&p| topology.socket_of(p)).collect();
        let name = format!("{}+MIG({})", topology.name(), self.label());
        let map = SliceMap::new(phys_of, slice_count);
        let topology = Topology::new(name, g, sockets).with_slice_map(map.clone());
        VirtualTopology { topology, map }
    }
}

impl fmt::Display for PartitionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A partitioned machine: the expanded [`Topology`] (which also carries
/// the [`SliceMap`] internally) plus the map as a named handle.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualTopology {
    topology: Topology,
    map: SliceMap,
}

impl VirtualTopology {
    /// The expanded machine topology (slice map embedded).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the virtual machine, yielding the topology.
    #[must_use]
    pub fn into_topology(self) -> Topology {
        self.topology
    }

    /// The slice↔physical mapping.
    #[must_use]
    pub fn slice_map(&self) -> &SliceMap {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    /// Single-GPU split through the supported [`PartitionPlan`] entry
    /// point, unpacked into the `(topology, phys-of-vertex)` pair the
    /// assertions below inspect.
    fn split_one(
        topology: &Topology,
        gpu: usize,
        slices: usize,
        bandwidth: SliceBandwidth,
    ) -> (Topology, Vec<usize>) {
        let virt = PartitionPlan::new()
            .with_bandwidth(bandwidth)
            .split(gpu, slices)
            .apply(topology);
        let phys = (0..virt.slice_map().vertex_count())
            .map(|v| virt.slice_map().physical_of(v))
            .collect();
        (virt.into_topology(), phys)
    }

    #[test]
    fn partition_expands_vertex_count() {
        let dgx = machines::dgx1_v100();
        let (virt, phys) = split_one(&dgx, 3, 3, SliceBandwidth::Shared);
        assert_eq!(virt.gpu_count(), 10);
        assert_eq!(phys.len(), 10);
        // Slices 3,4,5 live on physical GPU 3.
        assert_eq!(&phys[3..6], &[3, 3, 3]);
        assert_eq!(phys[6], 4, "later GPUs shift up");
    }

    #[test]
    fn slices_inherit_external_links_when_shared() {
        let dgx = machines::dgx1_v100();
        let (virt, _) = split_one(&dgx, 0, 2, SliceBandwidth::Shared);
        // Physical 0-3 was double NVLink; both slices (0 and 1) keep it to
        // new id of 3, which is 3 + 1 = 4.
        assert_eq!(virt.link_type(0, 4), LinkType::DoubleNvLink2);
        assert_eq!(virt.link_type(1, 4), LinkType::DoubleNvLink2);
        // Slices talk on-die at the fastest class.
        assert_eq!(virt.link_type(0, 1), LinkType::DoubleNvLink2);
    }

    #[test]
    fn degraded_mode_steps_links_down() {
        let dgx = machines::dgx1_v100();
        let (virt, _) = split_one(&dgx, 0, 2, SliceBandwidth::Degraded);
        // double (0-3) degrades to single for each slice.
        assert_eq!(virt.link_type(0, 4), LinkType::SingleNvLink2);
        // single (0-1, new id 2) degrades to the PCIe fallback.
        assert_eq!(virt.link_type(0, 2), LinkType::Pcie);
        // Intra-GPU stays fast.
        assert_eq!(virt.link_type(0, 1), LinkType::DoubleNvLink2);
    }

    #[test]
    fn single_slice_is_identity() {
        let dgx = machines::dgx1_v100();
        let (virt, phys) = split_one(&dgx, 2, 1, SliceBandwidth::Degraded);
        assert_eq!(virt.gpu_count(), 8);
        assert_eq!(phys, (0..8).collect::<Vec<_>>());
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert_eq!(virt.link_type(a, b), dgx.link_type(a, b));
            }
        }
    }

    #[test]
    fn sockets_are_inherited() {
        let dgx = machines::dgx1_v100();
        let (virt, phys) = split_one(&dgx, 5, 4, SliceBandwidth::Shared);
        for (v, &p) in phys.iter().enumerate() {
            assert_eq!(virt.socket_of(v), dgx.socket_of(p));
        }
    }

    #[test]
    fn mig_machine_schedules_jobs_end_to_end() {
        // The virtual topology plugs into the normal matcher/policy path:
        // verify it produces a valid complete bandwidth graph.
        let dgx = machines::dgx1_v100();
        let (virt, _) = split_one(&dgx, 0, 7, SliceBandwidth::Shared);
        assert_eq!(virt.gpu_count(), 14);
        let bw = virt.bandwidth_graph();
        assert_eq!(bw.edge_count(), 14 * 13 / 2);
        assert!(bw.is_connected());
    }

    #[test]
    #[should_panic(expected = "MIG supports")]
    fn too_many_slices_rejected() {
        let _ = PartitionPlan::new().split(0, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_gpu_rejected() {
        let _ = PartitionPlan::new()
            .split(8, 2)
            .apply(&machines::dgx1_v100());
    }

    #[test]
    fn one_split_plan_expands_in_place() {
        // A single-GPU split (what the removed `partition_gpu` shim
        // wrapped): GPU 3 expands into 4 consecutive vertices, all other
        // GPUs keep relative order, under both bandwidth modes.
        let dgx = machines::dgx1_v100();
        for bw in [SliceBandwidth::Shared, SliceBandwidth::Degraded] {
            let (topo, phys) = split_one(&dgx, 3, 4, bw);
            assert_eq!(topo.gpu_count(), 11);
            assert_eq!(&phys[..3], &[0, 1, 2]);
            assert_eq!(&phys[3..7], &[3, 3, 3, 3]);
            assert_eq!(&phys[7..], &[4, 5, 6, 7]);
        }
    }

    #[test]
    fn multi_gpu_plan_expands_every_split() {
        let dgx = machines::dgx1_v100();
        let virt = PartitionPlan::new().split(0, 7).split(3, 2).apply(&dgx);
        let map = virt.slice_map();
        assert_eq!(virt.topology().gpu_count(), 7 + 2 + 6);
        assert_eq!(map.vertex_count(), 15);
        assert_eq!(map.physical_count(), 8);
        assert_eq!(map.slices_of(0), 7);
        assert_eq!(map.slices_of(3), 2);
        assert_eq!(map.slices_of(1), 1);
        assert_eq!(map.vertices_of(0), 0..7);
        // Physical 1 follows GPU 0's seven slices.
        assert_eq!(map.vertices_of(1), 7..8);
        assert_eq!(map.vertices_of(3), 9..11);
        assert!(map.is_slice(0) && map.is_slice(9));
        assert!(!map.is_slice(7), "unsplit GPUs are whole vertices");
        assert!(map.co_resident(9, 10));
        assert!(!map.co_resident(0, 9));
        // The map also rides inside the topology.
        assert_eq!(virt.topology().slice_map(), Some(map));
        assert!(virt.topology().is_partitioned());
    }

    #[test]
    fn plan_name_encodes_the_plan() {
        let dgx = machines::dgx1_v100();
        let shared = PartitionPlan::new().split(0, 7).split(3, 2).apply(&dgx);
        assert_eq!(shared.topology().name(), "DGX-1 V100+MIG(0:7,3:2)");
        let degraded = PartitionPlan::new()
            .with_bandwidth(SliceBandwidth::Degraded)
            .split(0, 2)
            .apply(&dgx);
        assert_eq!(degraded.topology().name(), "DGX-1 V100+MIG(0:2;degraded)");
    }

    #[test]
    fn plan_parse_roundtrip() {
        for text in ["0:7,3:2", "0:2;degraded", "5:4"] {
            let plan = PartitionPlan::parse(text).unwrap();
            assert_eq!(plan.label(), text);
            assert_eq!(PartitionPlan::parse(&plan.label()).unwrap(), plan);
        }
        assert!(PartitionPlan::parse("0:8").is_err());
        assert!(PartitionPlan::parse("0-7").is_err());
        assert!(PartitionPlan::parse("x:2").is_err());
        assert!(PartitionPlan::parse("0:2;sideways").is_err());
        assert!(PartitionPlan::parse("").unwrap().is_empty());
        // `shared` is the explicit spelling of the default.
        assert_eq!(
            PartitionPlan::parse("0:2;shared").unwrap(),
            PartitionPlan::parse("0:2").unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "already partitioned")]
    fn double_partition_rejected() {
        let once = PartitionPlan::new()
            .split(0, 2)
            .apply(&machines::dgx1_v100())
            .into_topology();
        let _ = PartitionPlan::new().split(1, 2).apply(&once);
    }
}
