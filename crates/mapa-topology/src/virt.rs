//! Virtualized accelerators — the paper's §3.2/§3.3 extension sketch.
//!
//! "A potential solution to address this is to label the vertices … with
//! the amount of physical resources available", and for many-to-one
//! mapping, "representing virtual GPUs as separate nodes in the hardware
//! graph". This module implements the second idea for Nvidia MIG-style
//! hardware partitioning: a physical GPU is replaced by `k` virtual GPU
//! vertices. Each slice inherits the physical GPU's external links (they
//! *share* the physical NVLink — the pessimistic alternative of dividing
//! bandwidth per slice is selectable), and slices of the same GPU talk
//! through on-die memory, modeled as the fastest link class.
//!
//! Interference between co-resident slices competing for the same physical
//! links is out of scope, exactly as the paper leaves it ("account … for
//! the potential interference of the inter-accelerator interconnects").

use crate::{LinkType, Topology};
use mapa_graph::Graph;

/// How a slice shares its physical GPU's external links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceBandwidth {
    /// Each slice sees the full physical link (optimistic; fine when
    /// co-resident slices rarely communicate simultaneously).
    Shared,
    /// External links are degraded one class per extra slice
    /// (pessimistic static partitioning): double → single → PCIe.
    Degraded,
}

/// Splits physical GPU `gpu` of `topology` into `slices` virtual GPUs.
///
/// Virtual vertex ids: the physical GPUs keep their relative order; GPU
/// `gpu` expands in place into `slices` consecutive ids. The returned map
/// gives, for every new vertex, the physical GPU it lives on.
///
/// # Panics
/// Panics if `gpu` is out of range or `slices` is 0 or exceeds 7 (MIG's
/// hardware limit).
#[must_use]
pub fn partition_gpu(
    topology: &Topology,
    gpu: usize,
    slices: usize,
    bandwidth: SliceBandwidth,
) -> (Topology, Vec<usize>) {
    assert!(gpu < topology.gpu_count(), "GPU {gpu} out of range");
    assert!(
        (1..=7).contains(&slices),
        "MIG supports 1..=7 slices, got {slices}"
    );

    let n_old = topology.gpu_count();
    let n_new = n_old + slices - 1;

    // old vertex -> first new vertex id; `gpu` occupies a range.
    let new_id = |old: usize| -> usize {
        if old <= gpu {
            old
        } else {
            old + slices - 1
        }
    };
    let mut phys_of = Vec::with_capacity(n_new);
    for old in 0..n_old {
        let copies = if old == gpu { slices } else { 1 };
        for _ in 0..copies {
            phys_of.push(old);
        }
    }

    let degrade = |l: LinkType| -> Option<LinkType> {
        match l {
            LinkType::DoubleNvLink2 => Some(LinkType::SingleNvLink2),
            LinkType::SingleNvLink2 | LinkType::SingleNvLink1 => None, // PCIe fallback
            LinkType::Pcie => None,
        }
    };

    let mut g: Graph<LinkType> = Graph::new(n_new);
    for (a, b, link) in topology.link_graph().edges() {
        let targets_a: Vec<usize> = if a == gpu {
            (new_id(a)..new_id(a) + slices).collect()
        } else {
            vec![new_id(a)]
        };
        let targets_b: Vec<usize> = if b == gpu {
            (new_id(b)..new_id(b) + slices).collect()
        } else {
            vec![new_id(b)]
        };
        let effective = match bandwidth {
            SliceBandwidth::Shared => Some(link),
            SliceBandwidth::Degraded if slices == 1 => Some(link),
            SliceBandwidth::Degraded => degrade(link),
        };
        if let Some(l) = effective {
            for &ta in &targets_a {
                for &tb in &targets_b {
                    g.add_edge(ta, tb, l).expect("expansion edges valid");
                }
            }
        }
    }
    // On-die links among slices of the same GPU.
    for i in 0..slices {
        for j in (i + 1)..slices {
            g.add_edge(new_id(gpu) + i, new_id(gpu) + j, LinkType::DoubleNvLink2)
                .expect("intra-GPU links valid");
        }
    }

    let sockets = phys_of.iter().map(|&p| topology.socket_of(p)).collect();
    let virt = Topology::new(format!("{}+MIG", topology.name()), g, sockets);
    (virt, phys_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn partition_expands_vertex_count() {
        let dgx = machines::dgx1_v100();
        let (virt, phys) = partition_gpu(&dgx, 3, 3, SliceBandwidth::Shared);
        assert_eq!(virt.gpu_count(), 10);
        assert_eq!(phys.len(), 10);
        // Slices 3,4,5 live on physical GPU 3.
        assert_eq!(&phys[3..6], &[3, 3, 3]);
        assert_eq!(phys[6], 4, "later GPUs shift up");
    }

    #[test]
    fn slices_inherit_external_links_when_shared() {
        let dgx = machines::dgx1_v100();
        let (virt, _) = partition_gpu(&dgx, 0, 2, SliceBandwidth::Shared);
        // Physical 0-3 was double NVLink; both slices (0 and 1) keep it to
        // new id of 3, which is 3 + 1 = 4.
        assert_eq!(virt.link_type(0, 4), LinkType::DoubleNvLink2);
        assert_eq!(virt.link_type(1, 4), LinkType::DoubleNvLink2);
        // Slices talk on-die at the fastest class.
        assert_eq!(virt.link_type(0, 1), LinkType::DoubleNvLink2);
    }

    #[test]
    fn degraded_mode_steps_links_down() {
        let dgx = machines::dgx1_v100();
        let (virt, _) = partition_gpu(&dgx, 0, 2, SliceBandwidth::Degraded);
        // double (0-3) degrades to single for each slice.
        assert_eq!(virt.link_type(0, 4), LinkType::SingleNvLink2);
        // single (0-1, new id 2) degrades to the PCIe fallback.
        assert_eq!(virt.link_type(0, 2), LinkType::Pcie);
        // Intra-GPU stays fast.
        assert_eq!(virt.link_type(0, 1), LinkType::DoubleNvLink2);
    }

    #[test]
    fn single_slice_is_identity() {
        let dgx = machines::dgx1_v100();
        let (virt, phys) = partition_gpu(&dgx, 2, 1, SliceBandwidth::Degraded);
        assert_eq!(virt.gpu_count(), 8);
        assert_eq!(phys, (0..8).collect::<Vec<_>>());
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert_eq!(virt.link_type(a, b), dgx.link_type(a, b));
            }
        }
    }

    #[test]
    fn sockets_are_inherited() {
        let dgx = machines::dgx1_v100();
        let (virt, phys) = partition_gpu(&dgx, 5, 4, SliceBandwidth::Shared);
        for (v, &p) in phys.iter().enumerate() {
            assert_eq!(virt.socket_of(v), dgx.socket_of(p));
        }
    }

    #[test]
    fn mig_machine_schedules_jobs_end_to_end() {
        // The virtual topology plugs into the normal matcher/policy path:
        // verify it produces a valid complete bandwidth graph.
        let dgx = machines::dgx1_v100();
        let (virt, _) = partition_gpu(&dgx, 0, 7, SliceBandwidth::Shared);
        assert_eq!(virt.gpu_count(), 14);
        let bw = virt.bandwidth_graph();
        assert_eq!(bw.edge_count(), 14 * 13 / 2);
        assert!(bw.is_connected());
    }

    #[test]
    #[should_panic(expected = "MIG supports")]
    fn too_many_slices_rejected() {
        let _ = partition_gpu(&machines::dgx1_v100(), 0, 8, SliceBandwidth::Shared);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_gpu_rejected() {
        let _ = partition_gpu(&machines::dgx1_v100(), 8, 2, SliceBandwidth::Shared);
    }
}
