//! Constructors for the machines evaluated in the paper.
//!
//! * [`dgx1_v100`] — the paper's real-world testbed (Fig. 1c), an 8-GPU
//!   hybrid cube-mesh with single/double NVLink-v2 links. The link layout is
//!   validated against every worked example in the paper (§2.2's 87 vs
//!   125 GB/s fragmentation example and Fig. 2b's GPU-pair/link mapping).
//! * [`dgx1_p100`] — the Pascal predecessor (Fig. 1b): 4 NVLink-v1 bricks
//!   per GPU, quad cliques plus one cross link each.
//! * [`summit`] — one Summit node (Fig. 1a): two sockets × 3 GPUs, double
//!   NVLink-v2 triangles within a socket.
//! * [`dgx2`] — 16 GPUs behind NVSwitch: uniform all-to-all double NVLink.
//! * [`torus_2d`] / [`cube_mesh`] — the novel 16-GPU point-to-point
//!   topologies of §5 (Fig. 17).
//!
//! All constructors use 0-indexed GPUs; the paper's figures are 1-indexed.

use crate::{LinkType, Topology};
use mapa_graph::Graph;

use LinkType::{DoubleNvLink2, SingleNvLink1, SingleNvLink2};

/// DGX-1 with Volta V100 GPUs (Fig. 1c) — the paper's testbed.
///
/// Eight GPUs in two quads `{0..3}` and `{4..7}`, each GPU using its six
/// NVLink-v2 bricks as: three intra-quad links (one of them double) and one
/// inter-quad link. Pairs without NVLink (e.g. 1–4) fall back to PCIe
/// across the QPI bridge.
#[must_use]
pub fn dgx1_v100() -> Topology {
    let mut g = Graph::new(8);
    // Quad {0,1,2,3}.
    g.add_edge(0, 1, SingleNvLink2).unwrap();
    g.add_edge(0, 2, SingleNvLink2).unwrap();
    g.add_edge(0, 3, DoubleNvLink2).unwrap();
    g.add_edge(1, 2, DoubleNvLink2).unwrap();
    g.add_edge(1, 3, SingleNvLink2).unwrap();
    g.add_edge(2, 3, DoubleNvLink2).unwrap();
    // Quad {4,5,6,7} mirrors it.
    g.add_edge(4, 5, SingleNvLink2).unwrap();
    g.add_edge(4, 6, SingleNvLink2).unwrap();
    g.add_edge(4, 7, DoubleNvLink2).unwrap();
    g.add_edge(5, 6, DoubleNvLink2).unwrap();
    g.add_edge(5, 7, SingleNvLink2).unwrap();
    g.add_edge(6, 7, DoubleNvLink2).unwrap();
    // Inter-quad links close the hybrid cube-mesh.
    g.add_edge(0, 4, DoubleNvLink2).unwrap();
    g.add_edge(1, 5, DoubleNvLink2).unwrap();
    g.add_edge(2, 6, SingleNvLink2).unwrap();
    g.add_edge(3, 7, SingleNvLink2).unwrap();
    Topology::new("DGX-1 V100", g, vec![0, 0, 0, 0, 1, 1, 1, 1])
}

/// DGX-1 with Pascal P100 GPUs (Fig. 1b).
///
/// Pascal has four NVLink-v1 bricks per GPU: a full clique inside each quad
/// (three links) plus one link to the sibling GPU of the other quad.
#[must_use]
pub fn dgx1_p100() -> Topology {
    let mut g = Graph::new(8);
    for base in [0, 4] {
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(base + a, base + b, SingleNvLink1).unwrap();
            }
        }
    }
    for i in 0..4 {
        g.add_edge(i, i + 4, SingleNvLink1).unwrap();
    }
    Topology::new("DGX-1 P100", g, vec![0, 0, 0, 0, 1, 1, 1, 1])
}

/// One Summit node (Fig. 1a): 6 V100 GPUs on two POWER9 sockets.
///
/// Each socket hosts three GPUs connected pairwise by double NVLink-v2
/// (each V100 dedicates two of its six bricks to each of its two peers and
/// two to the CPU). Cross-socket GPU traffic crosses the X-bus and is
/// modeled as the PCIe-class fallback.
#[must_use]
pub fn summit() -> Topology {
    let mut g = Graph::new(6);
    for base in [0, 3] {
        g.add_edge(base, base + 1, DoubleNvLink2).unwrap();
        g.add_edge(base, base + 2, DoubleNvLink2).unwrap();
        g.add_edge(base + 1, base + 2, DoubleNvLink2).unwrap();
    }
    Topology::new("Summit", g, vec![0, 0, 0, 1, 1, 1])
}

/// DGX-2: 16 V100 GPUs behind NVSwitch.
///
/// NVSwitch gives every pair full NVLink bandwidth simultaneously; the
/// paper notes even this fabric has NUMA effects but treats it as uniform.
/// Modeled as all-to-all double NVLink-v2 across two 8-GPU baseboards.
#[must_use]
pub fn dgx2() -> Topology {
    let mut g = Graph::new(16);
    for a in 0..16 {
        for b in (a + 1)..16 {
            g.add_edge(a, b, DoubleNvLink2).unwrap();
        }
    }
    let sockets = (0..16).map(|g| g / 8).collect();
    Topology::new("DGX-2", g, sockets)
}

/// The 16-GPU 2-D torus of §5 (Fig. 17a).
///
/// GPUs form a 4×4 grid with wraparound. Row neighbors share double
/// NVLink-v2, column neighbors single NVLink-v2 — the figure's mix of both
/// link classes — and everything else rides PCIe. One CPU socket per row.
#[must_use]
pub fn torus_2d() -> Topology {
    let side = 4;
    let mut g = Graph::new(side * side);
    let id = |r: usize, c: usize| r * side + c;
    for r in 0..side {
        for c in 0..side {
            // Horizontal (row) link with wraparound: double NVLink.
            let right = id(r, (c + 1) % side);
            if !g.has_edge(id(r, c), right) {
                g.add_edge(id(r, c), right, DoubleNvLink2).unwrap();
            }
            // Vertical (column) link with wraparound: single NVLink.
            let down = id((r + 1) % side, c);
            if !g.has_edge(id(r, c), down) {
                g.add_edge(id(r, c), down, SingleNvLink2).unwrap();
            }
        }
    }
    let sockets = (0..side * side).map(|g| g / side).collect();
    Topology::new("Torus-2d", g, sockets)
}

/// The 16-GPU cube-mesh of §5 (Fig. 17b).
///
/// Two DGX-1V-style hybrid cube-mesh boards (GPUs 0–7 and 8–15) joined by
/// four single-NVLink bridges on the first quad of each board. Deliberately
/// irregular — the paper uses it to show that greedy selection struggles as
/// non-uniformity grows.
#[must_use]
pub fn cube_mesh() -> Topology {
    let board = |g: &mut Graph<LinkType>, o: usize| {
        g.add_edge(o, o + 1, SingleNvLink2).unwrap();
        g.add_edge(o, o + 2, SingleNvLink2).unwrap();
        g.add_edge(o, o + 3, DoubleNvLink2).unwrap();
        g.add_edge(o + 1, o + 2, DoubleNvLink2).unwrap();
        g.add_edge(o + 1, o + 3, SingleNvLink2).unwrap();
        g.add_edge(o + 2, o + 3, DoubleNvLink2).unwrap();
        g.add_edge(o + 4, o + 5, SingleNvLink2).unwrap();
        g.add_edge(o + 4, o + 6, SingleNvLink2).unwrap();
        g.add_edge(o + 4, o + 7, DoubleNvLink2).unwrap();
        g.add_edge(o + 5, o + 6, DoubleNvLink2).unwrap();
        g.add_edge(o + 5, o + 7, SingleNvLink2).unwrap();
        g.add_edge(o + 6, o + 7, DoubleNvLink2).unwrap();
        g.add_edge(o, o + 4, DoubleNvLink2).unwrap();
        g.add_edge(o + 1, o + 5, DoubleNvLink2).unwrap();
        g.add_edge(o + 2, o + 6, SingleNvLink2).unwrap();
        g.add_edge(o + 3, o + 7, SingleNvLink2).unwrap();
    };
    let mut g = Graph::new(16);
    board(&mut g, 0);
    board(&mut g, 8);
    for i in 0..4 {
        g.add_edge(i, i + 8, SingleNvLink2).unwrap();
    }
    let sockets = (0..16).map(|g| g / 4).collect();
    Topology::new("CubeMesh-16", g, sockets)
}

/// Amazon P3dn (EC2 p3dn.24xlarge): 8 V100s in the same NVLink hybrid
/// cube-mesh as DGX-1 V100 — the paper lists it among the heterogeneous
/// machines motivating MAPA.
#[must_use]
pub fn p3dn() -> Topology {
    let mut t = dgx1_v100();
    // Same fabric, different label.
    t = Topology::new(
        "P3dn",
        t.link_graph().clone(),
        (0..8).map(|g| g / 4).collect(),
    );
    t
}

/// Facebook Big Basin (refresh): 8 V100s, hybrid cube-mesh like DGX-1V.
#[must_use]
pub fn big_basin() -> Topology {
    Topology::new(
        "Big Basin",
        dgx1_v100().link_graph().clone(),
        (0..8).map(|g| g / 4).collect(),
    )
}

/// A general `rows × cols` 2-D torus with configurable link classes for
/// row and column neighbors. [`torus_2d`] is `torus(4, 4, double, single)`.
///
/// # Panics
/// Panics for degenerate shapes (`rows * cols < 2`, or a dimension of 2
/// where wraparound would duplicate an edge is handled by collapsing it).
#[must_use]
pub fn torus(rows: usize, cols: usize, row_link: LinkType, col_link: LinkType) -> Topology {
    assert!(rows * cols >= 2, "torus needs at least 2 GPUs");
    assert!(row_link != LinkType::Pcie && col_link != LinkType::Pcie);
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 {
                let right = id(r, (c + 1) % cols);
                if !g.has_edge(id(r, c), right) {
                    g.add_edge(id(r, c), right, row_link).unwrap();
                }
            }
            if rows > 1 {
                let down = id((r + 1) % rows, c);
                if !g.has_edge(id(r, c), down) {
                    g.add_edge(id(r, c), down, col_link).unwrap();
                }
            }
        }
    }
    let sockets = (0..rows * cols).map(|v| v / cols.max(1)).collect();
    Topology::new(format!("Torus-{rows}x{cols}"), g, sockets)
}

/// A `d`-dimensional hypercube (2^d GPUs) with a uniform link class —
/// another cost-effective point-to-point design in the spirit of §5.
///
/// # Panics
/// Panics for `d == 0` or `d > 6` (64 GPUs is the library's practical cap).
#[must_use]
pub fn hypercube(d: u32, link: LinkType) -> Topology {
    assert!((1..=6).contains(&d), "hypercube dimension must be 1..=6");
    assert!(link != LinkType::Pcie);
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for u in 0..n {
        for b in 0..d {
            let v = u ^ (1usize << b);
            if u < v {
                g.add_edge(u, v, link).unwrap();
            }
        }
    }
    let sockets = (0..n).map(|v| v / 4).collect();
    Topology::new(format!("Hypercube-{d}"), g, sockets)
}

/// A fully connected `n`-GPU machine with a uniform link type — useful as a
/// best-case baseline and for tests.
#[must_use]
pub fn fully_connected(n: usize, link: LinkType) -> Topology {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b, link).unwrap();
        }
    }
    Topology::new(format!("Uniform-{n}"), g, vec![0; n])
}

/// All paper machines keyed by canonical name, in evaluation order.
#[must_use]
pub fn all_machines() -> Vec<Topology> {
    vec![
        summit(),
        dgx1_p100(),
        dgx1_v100(),
        dgx2(),
        torus_2d(),
        cube_mesh(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkType::Pcie;

    #[test]
    fn dgx1_v100_matches_paper_worked_examples() {
        let t = dgx1_v100();
        // §2.2: allocation {1,2,5} (1-indexed) = {0,1,4}: 87 GB/s.
        let frag: f64 = [(0, 1), (0, 4), (1, 4)]
            .iter()
            .map(|&(a, b)| t.bandwidth(a, b))
            .sum();
        assert_eq!(frag, 87.0);
        // §2.2: ideal {1,3,4} (1-indexed) = {0,2,3}: 125 GB/s.
        let ideal: f64 = [(0, 2), (0, 3), (2, 3)]
            .iter()
            .map(|&(a, b)| t.bandwidth(a, b))
            .sum();
        assert_eq!(ideal, 125.0);
        // Fig. 2b: GPUs (1,5)->double, (1,2)->single, (1,6)->PCIe.
        assert_eq!(t.link_type(0, 4), DoubleNvLink2);
        assert_eq!(t.link_type(0, 1), SingleNvLink2);
        assert_eq!(t.link_type(0, 5), Pcie);
    }

    #[test]
    fn dgx1_v100_uses_six_bricks_per_gpu() {
        let t = dgx1_v100();
        for gpu in 0..8 {
            let bricks: usize = (0..8)
                .filter(|&o| o != gpu)
                .map(|o| match t.link_type(gpu, o) {
                    DoubleNvLink2 => 2,
                    SingleNvLink2 | SingleNvLink1 => 1,
                    Pcie => 0,
                })
                .sum();
            assert_eq!(bricks, 6, "GPU{gpu} must use exactly 6 NVLink-v2 bricks");
        }
    }

    #[test]
    fn dgx1_p100_uses_four_bricks_per_gpu() {
        let t = dgx1_p100();
        for gpu in 0..8 {
            let bricks = (0..8)
                .filter(|&o| o != gpu && t.link_type(gpu, o) == SingleNvLink1)
                .count();
            assert_eq!(bricks, 4, "GPU{gpu} must use exactly 4 NVLink-v1 bricks");
        }
        // All NVLinks are v1.
        assert!(t.link_graph().edges().all(|(_, _, l)| l == SingleNvLink1));
    }

    #[test]
    fn summit_is_two_double_nvlink_triangles() {
        let t = summit();
        assert_eq!(t.gpu_count(), 6);
        assert_eq!(t.link_graph().edge_count(), 6);
        assert_eq!(t.link_type(0, 1), DoubleNvLink2);
        assert_eq!(t.link_type(0, 3), Pcie);
        assert_eq!(t.socket_of(2), 0);
        assert_eq!(t.socket_of(3), 1);
    }

    #[test]
    fn dgx2_uniform_all_to_all() {
        let t = dgx2();
        assert_eq!(t.gpu_count(), 16);
        assert_eq!(t.link_graph().edge_count(), 120);
        assert!((0..16).all(|a| (0..16)
            .filter(|&b| b != a)
            .all(|b| t.link_type(a, b) == DoubleNvLink2)));
    }

    #[test]
    fn torus_2d_structure() {
        let t = torus_2d();
        assert_eq!(t.gpu_count(), 16);
        // 4x4 torus: 32 direct links (16 horizontal + 16 vertical).
        assert_eq!(t.link_graph().edge_count(), 32);
        // Row neighbor (0,1): double; column neighbor (0,4): single;
        // wraparound (0,3) row and (0,12) column exist; diagonal is PCIe.
        assert_eq!(t.link_type(0, 1), DoubleNvLink2);
        assert_eq!(t.link_type(0, 4), SingleNvLink2);
        assert_eq!(t.link_type(0, 3), DoubleNvLink2);
        assert_eq!(t.link_type(0, 12), SingleNvLink2);
        assert_eq!(t.link_type(0, 5), Pcie);
        // Every GPU has degree 4 in the direct-link graph.
        assert!((0..16).all(|v| t.link_graph().degree(v) == 4));
    }

    #[test]
    fn cube_mesh_structure() {
        let t = cube_mesh();
        assert_eq!(t.gpu_count(), 16);
        // Two boards of 16 links + 4 bridges.
        assert_eq!(t.link_graph().edge_count(), 36);
        // Bridge links exist only on the first quad.
        assert_eq!(t.link_type(0, 8), SingleNvLink2);
        assert_eq!(t.link_type(4, 12), Pcie);
        // Board-local structure mirrors DGX-1V.
        assert_eq!(t.link_type(8, 11), DoubleNvLink2);
    }

    #[test]
    fn complete_hardware_graphs_have_all_pairs() {
        for t in all_machines() {
            let n = t.gpu_count();
            let g = t.bandwidth_graph();
            assert_eq!(g.edge_count(), n * (n - 1) / 2, "{}", t.name());
            assert!(g.is_connected());
        }
    }

    #[test]
    fn fully_connected_builder() {
        let t = fully_connected(5, DoubleNvLink2);
        assert_eq!(t.link_graph().edge_count(), 10);
        assert_eq!(t.total_bandwidth(), 10.0 * 50.0);
    }

    #[test]
    fn generic_torus_matches_builtin() {
        let generic = torus(4, 4, DoubleNvLink2, SingleNvLink2);
        let builtin = torus_2d();
        assert_eq!(generic.gpu_count(), builtin.gpu_count());
        for a in 0..16 {
            for b in (a + 1)..16 {
                assert_eq!(
                    generic.link_type(a, b),
                    builtin.link_type(a, b),
                    "({a},{b})"
                );
            }
        }
    }

    #[test]
    fn small_torus_shapes() {
        // 1x2 "torus" is a single link.
        let tiny = torus(1, 2, DoubleNvLink2, SingleNvLink2);
        assert_eq!(tiny.link_graph().edge_count(), 1);
        // 2x2: each dimension collapses the wraparound duplicate.
        let quad = torus(2, 2, DoubleNvLink2, SingleNvLink2);
        assert_eq!(quad.link_graph().edge_count(), 4);
        // 2x3: rows wrap (3 edges per row x 2) + columns collapse (3).
        let t23 = torus(2, 3, DoubleNvLink2, SingleNvLink2);
        assert_eq!(t23.link_graph().edge_count(), 2 * 3 + 3);
    }

    #[test]
    fn hypercube_structure() {
        let q3 = hypercube(3, SingleNvLink2);
        assert_eq!(q3.gpu_count(), 8);
        assert_eq!(q3.link_graph().edge_count(), 12); // d * 2^(d-1)
        assert!((0..8).all(|v| q3.link_graph().degree(v) == 3));
        // Antipodal vertices have no direct link.
        assert_eq!(q3.link_type(0, 7), Pcie);
        let q4 = hypercube(4, DoubleNvLink2);
        assert_eq!(q4.link_graph().edge_count(), 32);
    }

    #[test]
    fn p3dn_and_big_basin_mirror_dgx_fabric() {
        for m in [p3dn(), big_basin()] {
            assert_eq!(m.gpu_count(), 8);
            assert_eq!(m.link_graph().edge_count(), 16);
            assert_eq!(m.link_type(0, 4), DoubleNvLink2, "{}", m.name());
        }
        assert_eq!(p3dn().name(), "P3dn");
    }

    #[test]
    #[should_panic(expected = "dimension must be")]
    fn oversized_hypercube_rejected() {
        let _ = hypercube(7, SingleNvLink2);
    }

    #[test]
    fn sixteen_gpu_graphs_have_120_plus_edges() {
        // §5.4 describes the 16-GPU hardware graphs as "120+ edges" — the
        // complete graph the matcher actually mines.
        for t in [torus_2d(), cube_mesh()] {
            assert!(t.bandwidth_graph().edge_count() >= 120, "{}", t.name());
        }
    }
}
