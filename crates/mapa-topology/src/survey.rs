//! Static Top500 survey data behind the paper's Fig. 3.
//!
//! Fig. 3 motivates the work with two survey trends over 2017–2021: (a) the
//! number of Top500 systems with accelerators, split GPU vs other, and (b)
//! the share of those GPU systems with *heterogeneous* interconnects. The
//! figure is survey data, not something a simulator can regenerate, so the
//! values distilled from the figure are embedded here as a documented
//! dataset (see DESIGN.md, substitution table).

/// One year of the accelerator-adoption survey (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyYear {
    /// Survey year.
    pub year: u32,
    /// Top500 systems with GPU accelerators.
    pub gpu_systems: u32,
    /// Top500 systems with non-GPU accelerators.
    pub other_accelerator_systems: u32,
    /// Percentage of GPU systems with heterogeneous interconnects.
    pub heterogeneous_interconnect_pct: f64,
}

/// The 2017–2021 trend distilled from Fig. 3 of the paper.
///
/// Values are read off the published bar charts (the paper provides no
/// table); they capture the figure's message — accelerator systems grow
/// year over year, GPUs dominate, and heterogeneous interconnects become
/// the majority.
#[must_use]
pub fn top500_trend() -> Vec<SurveyYear> {
    vec![
        SurveyYear {
            year: 2017,
            gpu_systems: 84,
            other_accelerator_systems: 18,
            heterogeneous_interconnect_pct: 25.0,
        },
        SurveyYear {
            year: 2018,
            gpu_systems: 98,
            other_accelerator_systems: 12,
            heterogeneous_interconnect_pct: 40.0,
        },
        SurveyYear {
            year: 2019,
            gpu_systems: 125,
            other_accelerator_systems: 10,
            heterogeneous_interconnect_pct: 55.0,
        },
        SurveyYear {
            year: 2020,
            gpu_systems: 140,
            other_accelerator_systems: 8,
            heterogeneous_interconnect_pct: 70.0,
        },
        SurveyYear {
            year: 2021,
            gpu_systems: 150,
            other_accelerator_systems: 7,
            heterogeneous_interconnect_pct: 80.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_is_monotonic_in_the_figure_sense() {
        let t = top500_trend();
        assert_eq!(t.len(), 5);
        assert_eq!(t.first().unwrap().year, 2017);
        assert_eq!(t.last().unwrap().year, 2021);
        // GPU systems grow; heterogeneous share grows; GPUs dominate others.
        for w in t.windows(2) {
            assert!(w[1].gpu_systems >= w[0].gpu_systems);
            assert!(w[1].heterogeneous_interconnect_pct >= w[0].heterogeneous_interconnect_pct);
        }
        assert!(t
            .iter()
            .all(|y| y.gpu_systems > y.other_accelerator_systems));
        // By the end, heterogeneous interconnects are dominant (>50%).
        assert!(t.last().unwrap().heterogeneous_interconnect_pct > 50.0);
    }
}
