//! Multi-accelerator server topologies for MAPA.
//!
//! This crate is the hardware substrate of the reproduction: it encodes the
//! machines the paper evaluates (Fig. 1: Summit, DGX-1 P100, DGX-1 V100;
//! Fig. 17: Torus-2d and Cube-mesh 16-GPU designs) as weighted graphs, the
//! per-link peak bandwidths of Table 1, PCIe/NUMA socket domains used by the
//! Topo-aware baseline, the `nvidia-smi topo -m` matrix format as the
//! machine-readable entry point, and the mutable allocation state a
//! multi-tenant scheduler operates on.
//!
//! The central invariant, from §3.2 of the paper: *the hardware graph is
//! complete* — every GPU pair is labeled with the highest-bandwidth link
//! available between them, falling back to PCIe (12 GB/s) because a routed
//! path through the host always exists.
//!
//! # Example
//!
//! ```
//! use mapa_topology::{machines, LinkType};
//!
//! let dgx = machines::dgx1_v100();
//! assert_eq!(dgx.gpu_count(), 8);
//! // The paper's §2.2 worked example: allocation {GPU1, GPU2, GPU5}
//! // (1-indexed) spans one single NVLink, one double NVLink and one PCIe
//! // hop for an aggregated bandwidth of 87 GB/s.
//! assert_eq!(dgx.link_type(0, 1), LinkType::SingleNvLink2);
//! assert_eq!(dgx.link_type(0, 4), LinkType::DoubleNvLink2);
//! assert_eq!(dgx.link_type(1, 4), LinkType::Pcie);
//! let bw: f64 = [(0, 1), (0, 4), (1, 4)]
//!     .iter()
//!     .map(|&(a, b)| dgx.bandwidth(a, b))
//!     .sum();
//! assert_eq!(bw, 87.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
pub mod machines;
pub mod parse;
mod state;
pub mod survey;
mod topology;
pub mod virt;

pub use link::{LinkMix, LinkType};
pub use state::{AllocationError, HardwareState, JobId, OccupancySignature};
pub use topology::Topology;
pub use virt::{PartitionPlan, SliceBandwidth, SliceMap, VirtualTopology};
