//! Inter-accelerator link types and their peak bandwidths (paper Table 1).

use std::fmt;

/// The kinds of inter-GPU links found in the paper's machines.
///
/// Peak bandwidths come straight from Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkType {
    /// PCIe Gen3 x16, possibly traversing the CPU/QPI: 12 GB/s.
    ///
    /// This is the universal fallback — any two GPUs can always communicate
    /// through the host.
    Pcie,
    /// One NVLink-v1 brick (Pascal generation): 20 GB/s.
    SingleNvLink1,
    /// One NVLink-v2 brick (Volta generation): 25 GB/s.
    SingleNvLink2,
    /// Two bonded NVLink-v2 bricks: 50 GB/s.
    DoubleNvLink2,
}

impl LinkType {
    /// Peak unidirectional bandwidth in GB/s (Table 1).
    #[must_use]
    pub fn bandwidth_gbps(self) -> f64 {
        match self {
            LinkType::Pcie => 12.0,
            LinkType::SingleNvLink1 => 20.0,
            LinkType::SingleNvLink2 => 25.0,
            LinkType::DoubleNvLink2 => 50.0,
        }
    }

    /// True for any NVLink variant.
    #[must_use]
    pub fn is_nvlink(self) -> bool {
        !matches!(self, LinkType::Pcie)
    }

    /// All link types, slowest first.
    #[must_use]
    pub fn all() -> [LinkType; 4] {
        [
            LinkType::Pcie,
            LinkType::SingleNvLink1,
            LinkType::SingleNvLink2,
            LinkType::DoubleNvLink2,
        ]
    }
}

impl fmt::Display for LinkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkType::Pcie => "PCIe",
            LinkType::SingleNvLink1 => "NVLink-v1",
            LinkType::SingleNvLink2 => "NVLink-v2",
            LinkType::DoubleNvLink2 => "2xNVLink-v2",
        };
        f.write_str(s)
    }
}

/// Counts of link types in an allocation — the `(x, y, z)` triple of the
/// paper's effective-bandwidth regression (Eq. 2): `x` double NVLinks,
/// `y` single NVLinks (either generation), `z` PCIe links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkMix {
    /// Number of double NVLink-v2 links (`x`).
    pub double_nvlink: usize,
    /// Number of single NVLink links, v1 or v2 (`y`).
    pub single_nvlink: usize,
    /// Number of PCIe hops (`z`).
    pub pcie: usize,
}

impl LinkMix {
    /// Accumulates one link into the mix.
    pub fn add(&mut self, link: LinkType) {
        match link {
            LinkType::DoubleNvLink2 => self.double_nvlink += 1,
            LinkType::SingleNvLink1 | LinkType::SingleNvLink2 => self.single_nvlink += 1,
            LinkType::Pcie => self.pcie += 1,
        }
    }

    /// Builds a mix from an iterator of links.
    #[must_use]
    pub fn from_links(links: impl IntoIterator<Item = LinkType>) -> Self {
        let mut mix = Self::default();
        for l in links {
            mix.add(l);
        }
        mix
    }

    /// Total number of links counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.double_nvlink + self.single_nvlink + self.pcie
    }

    /// The `(x, y, z)` triple as floats, for feeding the regression model.
    #[must_use]
    pub fn xyz(&self) -> (f64, f64, f64) {
        (
            self.double_nvlink as f64,
            self.single_nvlink as f64,
            self.pcie as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bandwidths() {
        // Exact values from Table 1 of the paper.
        assert_eq!(LinkType::SingleNvLink1.bandwidth_gbps(), 20.0);
        assert_eq!(LinkType::SingleNvLink2.bandwidth_gbps(), 25.0);
        assert_eq!(LinkType::DoubleNvLink2.bandwidth_gbps(), 50.0);
        assert_eq!(LinkType::Pcie.bandwidth_gbps(), 12.0);
    }

    #[test]
    fn ordering_matches_bandwidth() {
        let mut all = LinkType::all();
        all.sort();
        let bws: Vec<f64> = all.iter().map(|l| l.bandwidth_gbps()).collect();
        assert!(bws.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn nvlink_classification() {
        assert!(!LinkType::Pcie.is_nvlink());
        assert!(LinkType::SingleNvLink1.is_nvlink());
        assert!(LinkType::DoubleNvLink2.is_nvlink());
    }

    #[test]
    fn display_strings() {
        assert_eq!(LinkType::Pcie.to_string(), "PCIe");
        assert_eq!(LinkType::DoubleNvLink2.to_string(), "2xNVLink-v2");
    }

    #[test]
    fn link_mix_accumulates_both_nvlink_generations_as_single() {
        let mix = LinkMix::from_links([
            LinkType::DoubleNvLink2,
            LinkType::SingleNvLink1,
            LinkType::SingleNvLink2,
            LinkType::Pcie,
            LinkType::Pcie,
        ]);
        assert_eq!(mix.double_nvlink, 1);
        assert_eq!(mix.single_nvlink, 2);
        assert_eq!(mix.pcie, 2);
        assert_eq!(mix.total(), 5);
        assert_eq!(mix.xyz(), (1.0, 2.0, 2.0));
    }

    #[test]
    fn empty_mix() {
        let mix = LinkMix::default();
        assert_eq!(mix.total(), 0);
        assert_eq!(mix.xyz(), (0.0, 0.0, 0.0));
    }
}
