//! Mutable allocation state over a hardware topology.
//!
//! §3.6 of the paper: "The hardware graph G is updated whenever there is an
//! allocation (a job is scheduled) and a deallocation (a job is finished)."
//! [`HardwareState`] tracks which GPUs belong to which running job, exposes
//! the frozen-vertex mask the matcher consumes, and computes the remaining
//! (induced) hardware graph used for Preserved Bandwidth.

use crate::Topology;
use mapa_graph::{BitSet, WeightedGraph};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a scheduled job (assigned by the caller).
pub type JobId = u64;

/// Errors from allocation state transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// A requested GPU is already assigned to another job.
    GpuBusy {
        /// The GPU index that was requested twice.
        gpu: usize,
        /// The job currently holding it.
        held_by: JobId,
    },
    /// A requested GPU index exceeds the machine size.
    GpuOutOfRange {
        /// The offending index.
        gpu: usize,
        /// The machine's GPU count.
        count: usize,
    },
    /// The same GPU appears twice in one request.
    DuplicateGpu(usize),
    /// The job id is already active.
    JobExists(JobId),
    /// The job id is not active.
    UnknownJob(JobId),
    /// An empty GPU set was requested.
    EmptyAllocation,
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::GpuBusy { gpu, held_by } => {
                write!(f, "GPU {gpu} is already held by job {held_by}")
            }
            AllocationError::GpuOutOfRange { gpu, count } => {
                write!(f, "GPU {gpu} out of range for {count}-GPU machine")
            }
            AllocationError::DuplicateGpu(g) => write!(f, "GPU {g} requested twice"),
            AllocationError::JobExists(j) => write!(f, "job {j} is already allocated"),
            AllocationError::UnknownJob(j) => write!(f, "job {j} is not allocated"),
            AllocationError::EmptyAllocation => write!(f, "allocation must use at least one GPU"),
        }
    }
}

impl std::error::Error for AllocationError {}

/// A cheap identity key for an occupancy state: the exact busy-set words
/// plus a 64-bit FNV-1a fingerprint over them.
///
/// Two signatures of states over the *same machine* are equal iff the
/// states have identical free/busy GPU sets — the words are exact, so
/// there are no false positives (the fingerprint is a convenience for
/// logging and fast inequality, never the source of truth). The signature
/// is maintained incrementally by [`HardwareState`]: reading it never
/// rescans the owner table, which is what makes allocation-decision
/// caching keyed on it viable on the hot path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OccupancySignature {
    busy_words: Vec<u64>,
    fingerprint: u64,
}

impl OccupancySignature {
    fn from_busy(busy: &BitSet) -> Self {
        let busy_words = busy.as_words().to_vec();
        // FNV-1a over the words; stable across runs (no RandomState).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &busy_words {
            for byte in w.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        Self {
            busy_words,
            fingerprint: h,
        }
    }

    /// The 64-bit fingerprint (display/logging convenience; collisions
    /// possible, unlike signature equality itself).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl fmt::Display for OccupancySignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "occ:{:016x}", self.fingerprint)
    }
}

/// Tracks GPU occupancy for a machine across job allocations/deallocations.
#[derive(Debug, Clone)]
pub struct HardwareState {
    topology: Topology,
    owner: Vec<Option<JobId>>,
    jobs: HashMap<JobId, Vec<usize>>,
    /// Busy-GPU mask, maintained incrementally (never rescanned).
    busy: BitSet,
    /// Bumped on every successful allocate/deallocate; failed transitions
    /// leave it (and the signature) untouched.
    generation: u64,
    /// Signature of `busy`, recomputed only when `busy` changes.
    signature: OccupancySignature,
}

impl HardwareState {
    /// Creates an all-free state over `topology`.
    #[must_use]
    pub fn new(topology: Topology) -> Self {
        let n = topology.gpu_count();
        let busy = BitSet::new(n);
        let signature = OccupancySignature::from_busy(&busy);
        Self {
            topology,
            owner: vec![None; n],
            jobs: HashMap::new(),
            busy,
            generation: 0,
            signature,
        }
    }

    /// The underlying machine.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of currently free GPUs.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.topology.gpu_count() - self.busy.count()
    }

    /// Monotone counter of successful state transitions. Two reads that
    /// observe the same generation observed the same occupancy, so callers
    /// can skip recomputing derived data without comparing signatures.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The incremental identity key of the current free/busy set. O(words)
    /// to clone, never rescans occupancy — see [`OccupancySignature`].
    #[must_use]
    pub fn occupancy_signature(&self) -> OccupancySignature {
        self.signature.clone()
    }

    /// Number of currently busy GPUs.
    #[must_use]
    pub fn busy_count(&self) -> usize {
        self.topology.gpu_count() - self.free_count()
    }

    /// Fraction of the machine's GPUs currently busy, in `[0, 1]` — the
    /// size-normalized load metric cluster server-selection policies
    /// compare across (possibly heterogeneous) machines.
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        self.busy_count() as f64 / self.topology.gpu_count().max(1) as f64
    }

    /// True when no job holds any GPU.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of active jobs.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Whether `gpu` is free.
    ///
    /// # Panics
    /// Panics if `gpu` is out of range.
    #[must_use]
    pub fn is_free(&self, gpu: usize) -> bool {
        self.owner[gpu].is_none()
    }

    /// The job holding `gpu`, if any.
    ///
    /// # Panics
    /// Panics if `gpu` is out of range.
    #[must_use]
    pub fn owner_of(&self, gpu: usize) -> Option<JobId> {
        self.owner[gpu]
    }

    /// The GPUs held by `job`, ascending; `None` if the job is unknown.
    #[must_use]
    pub fn gpus_of(&self, job: JobId) -> Option<&[usize]> {
        self.jobs.get(&job).map(Vec::as_slice)
    }

    /// Free GPU indices, ascending.
    #[must_use]
    pub fn free_gpus(&self) -> Vec<usize> {
        (0..self.owner.len()).filter(|&g| self.is_free(g)).collect()
    }

    /// The busy-GPU mask in matcher "frozen" form.
    #[must_use]
    pub fn frozen_mask(&self) -> BitSet {
        self.busy.clone()
    }

    /// The physical GPU vertex `v` lives on. Identity on unpartitioned
    /// machines; the slice→physical map on machines built by a
    /// [`crate::virt::PartitionPlan`].
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn physical_of(&self, v: usize) -> usize {
        assert!(v < self.topology.gpu_count(), "vertex {v} out of range");
        self.topology.slice_map().map_or(v, |m| m.physical_of(v))
    }

    /// Number of physical GPUs (≤ vertex count on partitioned machines).
    #[must_use]
    pub fn physical_gpu_count(&self) -> usize {
        self.topology
            .slice_map()
            .map_or(self.topology.gpu_count(), |m| m.physical_count())
    }

    /// How many *busy* vertices co-reside with `v` on its physical GPU,
    /// excluding `v` itself. Always 0 on unpartitioned machines — the
    /// allocator's co-residency pressure term reads exactly this.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn co_resident_busy(&self, v: usize) -> usize {
        assert!(v < self.topology.gpu_count(), "vertex {v} out of range");
        match self.topology.slice_map() {
            Some(m) => m
                .vertices_of(m.physical_of(v))
                .filter(|&w| w != v && !self.is_free(w))
                .count(),
            None => 0,
        }
    }

    /// Occupied slices on physical GPU `phys` (0 or 1 on unpartitioned
    /// machines). Never exceeds the GPU's slice count — the conservation
    /// invariant the slice property tests pin.
    ///
    /// # Panics
    /// Panics if `phys` is out of range.
    #[must_use]
    pub fn busy_slices_of_physical(&self, phys: usize) -> usize {
        match self.topology.slice_map() {
            Some(m) => m.vertices_of(phys).filter(|&w| !self.is_free(w)).count(),
            None => usize::from(!self.is_free(phys)),
        }
    }

    /// The remaining hardware graph `G ∖ busy` (complete over free GPUs)
    /// plus the mapping from its vertex ids back to physical GPU ids.
    #[must_use]
    pub fn available_graph(&self) -> (WeightedGraph, Vec<usize>) {
        self.topology
            .bandwidth_graph()
            .without_vertices(&self.frozen_mask())
    }

    /// Sum of link bandwidths among currently-free GPUs — the "preserved
    /// bandwidth" of the machine as a whole (Eq. 3 applied to the current
    /// occupancy).
    #[must_use]
    pub fn free_aggregate_bandwidth(&self) -> f64 {
        self.available_graph().0.total_weight()
    }

    /// Assigns `gpus` to `job`.
    ///
    /// # Errors
    /// Fails (without mutating state) if the job exists, the set is empty,
    /// any GPU is out of range, duplicated, or busy.
    pub fn allocate(&mut self, job: JobId, gpus: &[usize]) -> Result<(), AllocationError> {
        if self.jobs.contains_key(&job) {
            return Err(AllocationError::JobExists(job));
        }
        if gpus.is_empty() {
            return Err(AllocationError::EmptyAllocation);
        }
        let n = self.topology.gpu_count();
        let mut seen = BitSet::new(n);
        for &g in gpus {
            if g >= n {
                return Err(AllocationError::GpuOutOfRange { gpu: g, count: n });
            }
            if !seen.insert(g) {
                return Err(AllocationError::DuplicateGpu(g));
            }
            if let Some(holder) = self.owner[g] {
                return Err(AllocationError::GpuBusy {
                    gpu: g,
                    held_by: holder,
                });
            }
        }
        let mut sorted: Vec<usize> = gpus.to_vec();
        sorted.sort_unstable();
        for &g in &sorted {
            self.owner[g] = Some(job);
            self.busy.insert(g);
        }
        self.jobs.insert(job, sorted);
        self.bump();
        Ok(())
    }

    /// Releases all GPUs held by `job`, returning them.
    ///
    /// # Errors
    /// Fails if the job is not active.
    pub fn deallocate(&mut self, job: JobId) -> Result<Vec<usize>, AllocationError> {
        let gpus = self
            .jobs
            .remove(&job)
            .ok_or(AllocationError::UnknownJob(job))?;
        for &g in &gpus {
            debug_assert_eq!(self.owner[g], Some(job));
            self.owner[g] = None;
            self.busy.remove(g);
        }
        self.bump();
        Ok(gpus)
    }

    /// Advances the generation and refreshes the signature after a
    /// successful mutation of `busy`.
    fn bump(&mut self) {
        self.generation += 1;
        self.signature = OccupancySignature::from_busy(&self.busy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use proptest::prelude::*;

    fn state() -> HardwareState {
        HardwareState::new(machines::dgx1_v100())
    }

    #[test]
    fn busy_fraction_tracks_occupancy() {
        let mut s = state();
        assert_eq!(s.busy_fraction(), 0.0);
        s.allocate(1, &[0, 1, 2, 3]).unwrap();
        assert!((s.busy_fraction() - 0.5).abs() < 1e-12);
        s.deallocate(1).unwrap();
        assert_eq!(s.busy_fraction(), 0.0);
    }

    #[test]
    fn fresh_state_is_idle() {
        let s = state();
        assert!(s.is_idle());
        assert_eq!(s.free_count(), 8);
        assert_eq!(s.busy_count(), 0);
        assert_eq!(s.free_gpus(), (0..8).collect::<Vec<_>>());
        assert!(s.frozen_mask().is_empty());
    }

    #[test]
    fn allocate_and_deallocate_roundtrip() {
        let mut s = state();
        s.allocate(1, &[2, 0, 3]).unwrap();
        assert_eq!(s.gpus_of(1), Some(&[0, 2, 3][..]));
        assert_eq!(s.owner_of(2), Some(1));
        assert!(s.is_free(1));
        assert_eq!(s.free_count(), 5);
        assert_eq!(s.frozen_mask().to_vec(), vec![0, 2, 3]);

        let released = s.deallocate(1).unwrap();
        assert_eq!(released, vec![0, 2, 3]);
        assert!(s.is_idle());
        assert_eq!(s.free_count(), 8);
    }

    #[test]
    fn conflicting_allocation_rejected_atomically() {
        let mut s = state();
        s.allocate(1, &[0, 1]).unwrap();
        // Second job requests a busy GPU — nothing must change.
        let err = s.allocate(2, &[3, 1]).unwrap_err();
        assert_eq!(err, AllocationError::GpuBusy { gpu: 1, held_by: 1 });
        assert!(s.is_free(3), "failed allocation must not hold GPU 3");
        assert_eq!(s.active_jobs(), 1);
    }

    #[test]
    fn error_cases() {
        let mut s = state();
        assert_eq!(s.allocate(1, &[]), Err(AllocationError::EmptyAllocation));
        assert_eq!(
            s.allocate(1, &[9]),
            Err(AllocationError::GpuOutOfRange { gpu: 9, count: 8 })
        );
        assert_eq!(
            s.allocate(1, &[4, 4]),
            Err(AllocationError::DuplicateGpu(4))
        );
        s.allocate(1, &[4]).unwrap();
        assert_eq!(s.allocate(1, &[5]), Err(AllocationError::JobExists(1)));
        assert_eq!(s.deallocate(7), Err(AllocationError::UnknownJob(7)));
    }

    #[test]
    fn available_graph_shrinks_and_recovers() {
        let mut s = state();
        let full_bw = s.free_aggregate_bandwidth();
        s.allocate(1, &[0, 3]).unwrap();
        let (g, map) = s.available_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(map, vec![1, 2, 4, 5, 6, 7]);
        assert!(s.free_aggregate_bandwidth() < full_bw);
        s.deallocate(1).unwrap();
        assert_eq!(s.free_aggregate_bandwidth(), full_bw);
    }

    #[test]
    fn multiple_tenants_coexist() {
        let mut s = state();
        s.allocate(10, &[0, 1]).unwrap();
        s.allocate(11, &[2, 3, 4]).unwrap();
        s.allocate(12, &[7]).unwrap();
        assert_eq!(s.active_jobs(), 3);
        assert_eq!(s.free_gpus(), vec![5, 6]);
        s.deallocate(11).unwrap();
        assert_eq!(s.free_gpus(), vec![2, 3, 4, 5, 6]);
        assert_eq!(s.owner_of(0), Some(10));
    }

    #[test]
    fn generation_bumps_only_on_successful_transitions() {
        let mut s = state();
        assert_eq!(s.generation(), 0);
        s.allocate(1, &[0, 1]).unwrap();
        assert_eq!(s.generation(), 1);
        // Failed transitions leave generation and signature untouched.
        let sig = s.occupancy_signature();
        assert!(s.allocate(2, &[1]).is_err());
        assert!(s.deallocate(9).is_err());
        assert_eq!(s.generation(), 1);
        assert_eq!(s.occupancy_signature(), sig);
        s.deallocate(1).unwrap();
        assert_eq!(s.generation(), 2);
    }

    #[test]
    fn signature_identifies_the_free_set_exactly() {
        let mut a = state();
        let mut b = state();
        let idle = a.occupancy_signature();
        assert_eq!(idle, b.occupancy_signature(), "idle states agree");

        // Same free *count*, different free *sets* → different signatures
        // (exact words, not just a hash — no collisions possible).
        a.allocate(1, &[0, 1]).unwrap();
        b.allocate(1, &[6, 7]).unwrap();
        assert_ne!(a.occupancy_signature(), b.occupancy_signature());
        assert_eq!(a.free_count(), b.free_count());

        // Job identity does not matter, only the occupied set does.
        let mut c = state();
        c.allocate(42, &[1, 0]).unwrap();
        assert_eq!(a.occupancy_signature(), c.occupancy_signature());

        // Releasing returns the state to a previously-seen signature —
        // the recurrence an allocation cache keys on.
        a.deallocate(1).unwrap();
        assert_eq!(a.occupancy_signature(), idle);
        assert!(a.generation() > 0, "generation never rewinds");
    }

    #[test]
    fn signature_display_and_fingerprint() {
        let mut s = state();
        let idle = s.occupancy_signature();
        assert!(format!("{idle}").starts_with("occ:"));
        s.allocate(1, &[3]).unwrap();
        let busy = s.occupancy_signature();
        // Fingerprints of distinct word vectors virtually always differ;
        // for these two specific masks they must (checked here so a silent
        // hashing regression is caught).
        assert_ne!(idle.fingerprint(), busy.fingerprint());
    }

    #[test]
    fn slice_queries_on_unpartitioned_machines_are_identity() {
        let mut s = state();
        s.allocate(1, &[0, 1]).unwrap();
        assert_eq!(s.physical_gpu_count(), 8);
        for v in 0..8 {
            assert_eq!(s.physical_of(v), v);
            assert_eq!(s.co_resident_busy(v), 0);
        }
        assert_eq!(s.busy_slices_of_physical(0), 1);
        assert_eq!(s.busy_slices_of_physical(2), 0);
    }

    #[test]
    fn slice_queries_track_co_residency() {
        use crate::virt::PartitionPlan;
        // GPU 0 → 3 slices (vertices 0,1,2), the rest whole (3..=9).
        let topo = PartitionPlan::new()
            .split(0, 3)
            .apply(&machines::dgx1_v100())
            .into_topology();
        let mut s = HardwareState::new(topo);
        assert_eq!(s.physical_gpu_count(), 8);
        assert_eq!(s.physical_of(2), 0);
        assert_eq!(s.physical_of(3), 1);

        s.allocate(1, &[0]).unwrap();
        s.allocate(2, &[2, 3]).unwrap();
        // Vertex 1 is free but sees two busy co-resident slices.
        assert_eq!(s.co_resident_busy(1), 2);
        assert_eq!(s.co_resident_busy(0), 1, "excludes itself");
        assert_eq!(s.co_resident_busy(3), 0, "whole GPUs have no co-residents");
        assert_eq!(s.busy_slices_of_physical(0), 2);
        assert_eq!(s.busy_slices_of_physical(1), 1);
        assert_eq!(s.busy_slices_of_physical(2), 0);

        s.deallocate(2).unwrap();
        assert_eq!(s.co_resident_busy(1), 1);
        assert_eq!(s.busy_slices_of_physical(0), 1);
    }

    proptest! {
        /// Alternating random allocations and deallocations never corrupt
        /// the owner map: at every step each GPU is held by at most one job
        /// and job records agree with the owner table.
        #[test]
        fn occupancy_invariants_hold(ops in proptest::collection::vec(
            (0u64..6, proptest::collection::vec(0usize..8, 1..4), any::<bool>()), 1..40)
        ) {
            let mut s = state();
            for (job, gpus, dealloc) in ops {
                if dealloc {
                    let _ = s.deallocate(job);
                } else {
                    let _ = s.allocate(job, &gpus);
                }
                // Invariants.
                let mut counted = 0;
                for g in 0..8 {
                    if let Some(j) = s.owner_of(g) {
                        counted += 1;
                        prop_assert!(s.gpus_of(j).unwrap().contains(&g));
                    }
                }
                let job_total: usize = (0..6).filter_map(|j| s.gpus_of(j).map(<[usize]>::len)).sum();
                prop_assert_eq!(counted, job_total);
                prop_assert_eq!(s.free_count() + s.busy_count(), 8);
                // The incrementally-maintained busy mask agrees with the
                // owner table (the rescans it replaced).
                let owner_busy: Vec<usize> =
                    (0..8).filter(|&g| s.owner_of(g).is_some()).collect();
                prop_assert_eq!(s.frozen_mask().to_vec(), owner_busy);
            }
        }
    }
}
