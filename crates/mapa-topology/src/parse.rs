//! `nvidia-smi topo -m`-style matrix parsing and rendering.
//!
//! The paper (§3.2) extracts hardware graphs "from existing tools, such as
//! nvidia-smi". This module accepts the connectivity-matrix format that
//! tool prints, so a user on a real machine can feed MAPA the same way:
//!
//! ```text
//!        GPU0  GPU1  GPU2
//! GPU0    X    NV2   SYS
//! GPU1   NV2    X    NV1
//! GPU2   SYS   NV1    X
//! ```
//!
//! Cell legend (as in nvidia-smi): `X` self, `NV<k>` = k bonded NVLink
//! bricks, and any of `SYS`/`NODE`/`PHB`/`PXB`/`PIX` = a PCIe-class path.
//! `NV1` maps to single NVLink, `NV2`+ to double; the NVLink generation is
//! chosen by [`NvlinkGeneration`].

use crate::{LinkType, Topology};
use mapa_graph::Graph;
use std::fmt;

/// Which NVLink generation `NV<k>` cells denote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NvlinkGeneration {
    /// Pascal-era NVLink-v1 (20 GB/s per brick).
    V1,
    /// Volta-era NVLink-v2 (25 GB/s per brick; default).
    #[default]
    V2,
}

/// Errors from matrix parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input had no data rows.
    Empty,
    /// A row had the wrong number of cells.
    RowLength {
        /// Zero-based row index.
        row: usize,
        /// Cells found.
        found: usize,
        /// Cells expected (GPU count + row label).
        expected: usize,
    },
    /// An unrecognized cell token.
    BadCell {
        /// Zero-based row index.
        row: usize,
        /// Zero-based column index.
        col: usize,
        /// The offending token.
        token: String,
    },
    /// The matrix was not symmetric.
    Asymmetric {
        /// Row of the mismatch.
        row: usize,
        /// Column of the mismatch.
        col: usize,
    },
    /// A diagonal cell was not `X`.
    BadDiagonal(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "no data rows found"),
            ParseError::RowLength {
                row,
                found,
                expected,
            } => {
                write!(f, "row {row}: found {found} cells, expected {expected}")
            }
            ParseError::BadCell { row, col, token } => {
                write!(f, "row {row} col {col}: unrecognized cell '{token}'")
            }
            ParseError::Asymmetric { row, col } => {
                write!(f, "matrix asymmetric at ({row}, {col})")
            }
            ParseError::BadDiagonal(row) => write!(f, "diagonal cell of row {row} must be X"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an `nvidia-smi topo -m`-style matrix into a [`Topology`].
///
/// Rows may carry a leading `GPU<n>` label; a header line of column labels
/// is skipped automatically. Socket domains are inferred: GPUs connected by
/// any NVLink or a non-`SYS` PCIe path share a socket with their lowest
/// such peer; `SYS` implies crossing sockets. (For machines without `SYS`
/// cells everything lands in socket 0.)
///
/// # Errors
/// Returns a [`ParseError`] describing the first problem found.
pub fn parse_topology_matrix(
    input: &str,
    name: &str,
    generation: NvlinkGeneration,
) -> Result<Topology, ParseError> {
    // Collect data rows: lines whose first meaningful token is a GPU label
    // or a cell. Skip the header (a line starting with column labels).
    let mut rows: Vec<Vec<String>> = Vec::new();
    for line in input.lines() {
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        if tokens.is_empty() {
            continue;
        }
        // Header line: starts with a GPU label and contains ONLY labels.
        let all_labels = tokens.iter().all(|t| t.starts_with("GPU"));
        if all_labels {
            continue;
        }
        rows.push(tokens);
    }
    if rows.is_empty() {
        return Err(ParseError::Empty);
    }
    let n = rows.len();

    // Normalise: drop a leading GPU label if present.
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(n);
    for (i, mut row) in rows.into_iter().enumerate() {
        if row.first().is_some_and(|t| t.starts_with("GPU")) {
            row.remove(0);
        }
        if row.len() < n {
            return Err(ParseError::RowLength {
                row: i,
                found: row.len(),
                expected: n,
            });
        }
        row.truncate(n); // ignore trailing columns (CPU affinity etc.)
        cells.push(row);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Cell {
        Diagonal,
        NvLink(u32),
        PciLocal, // PHB / PXB / PIX / NODE: same PCIe root or NUMA node
        PciSys,   // SYS: across sockets
    }

    let classify = |row: usize, col: usize, tok: &str| -> Result<Cell, ParseError> {
        let t = tok.to_ascii_uppercase();
        if t == "X" {
            Ok(Cell::Diagonal)
        } else if let Some(k) = t.strip_prefix("NV") {
            k.parse::<u32>()
                .map(Cell::NvLink)
                .map_err(|_| ParseError::BadCell {
                    row,
                    col,
                    token: tok.to_string(),
                })
        } else if matches!(t.as_str(), "PHB" | "PXB" | "PIX" | "NODE") {
            Ok(Cell::PciLocal)
        } else if t == "SYS" || t == "QPI" {
            Ok(Cell::PciSys)
        } else {
            Err(ParseError::BadCell {
                row,
                col,
                token: tok.to_string(),
            })
        }
    };

    let mut grid = vec![vec![Cell::Diagonal; n]; n];
    for i in 0..n {
        for j in 0..n {
            grid[i][j] = classify(i, j, &cells[i][j])?;
        }
    }

    for (i, row) in grid.iter().enumerate() {
        if row[i] != Cell::Diagonal {
            return Err(ParseError::BadDiagonal(i));
        }
        for (j, &cell) in row.iter().enumerate().skip(i + 1) {
            if cell != grid[j][i] {
                return Err(ParseError::Asymmetric { row: i, col: j });
            }
        }
    }

    let mut links = Graph::new(n);
    for (i, row) in grid.iter().enumerate() {
        for (j, &cell) in row.iter().enumerate().skip(i + 1) {
            if let Cell::NvLink(k) = cell {
                let link = match (k, generation) {
                    (0, _) => continue,
                    (1, NvlinkGeneration::V1) => LinkType::SingleNvLink1,
                    (1, NvlinkGeneration::V2) => LinkType::SingleNvLink2,
                    // Treat >= 2 bricks as the paper's "double" class.
                    (_, _) => LinkType::DoubleNvLink2,
                };
                links.add_edge(i, j, link).expect("matrix edges valid");
            }
        }
    }

    // Socket inference: union GPUs not separated by SYS.
    let mut socket = vec![usize::MAX; n];
    let mut next = 0;
    for i in 0..n {
        if socket[i] != usize::MAX {
            continue;
        }
        socket[i] = next;
        for j in (i + 1)..n {
            if socket[j] == usize::MAX && grid[i][j] != Cell::PciSys {
                socket[j] = next;
            }
        }
        next += 1;
    }

    Ok(Topology::new(name, links, socket))
}

/// Renders a topology back into the matrix format (round-trips with
/// [`parse_topology_matrix`]).
#[must_use]
pub fn to_topology_matrix(topology: &Topology) -> String {
    let n = topology.gpu_count();
    let mut out = String::new();
    out.push_str("     ");
    for j in 0..n {
        out.push_str(&format!("{:>6}", format!("GPU{j}")));
    }
    out.push('\n');
    for i in 0..n {
        out.push_str(&format!("{:<5}", format!("GPU{i}")));
        for j in 0..n {
            let cell = if i == j {
                "X".to_string()
            } else {
                match topology.link_type(i, j) {
                    LinkType::DoubleNvLink2 => "NV2".to_string(),
                    LinkType::SingleNvLink1 | LinkType::SingleNvLink2 => "NV1".to_string(),
                    LinkType::Pcie => {
                        if topology.socket_of(i) == topology.socket_of(j) {
                            "PHB".to_string()
                        } else {
                            "SYS".to_string()
                        }
                    }
                }
            };
            out.push_str(&format!("{cell:>6}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    const SAMPLE: &str = "\
       GPU0  GPU1  GPU2  GPU3
GPU0    X    NV2   NV1   SYS
GPU1   NV2    X    SYS   NV1
GPU2   NV1   SYS    X    NV2
GPU3   SYS   NV1   NV2    X
";

    #[test]
    fn parses_sample_matrix() {
        let t = parse_topology_matrix(SAMPLE, "sample", NvlinkGeneration::V2).unwrap();
        assert_eq!(t.gpu_count(), 4);
        assert_eq!(t.link_type(0, 1), LinkType::DoubleNvLink2);
        assert_eq!(t.link_type(0, 2), LinkType::SingleNvLink2);
        assert_eq!(t.link_type(0, 3), LinkType::Pcie);
        assert_eq!(t.link_type(2, 3), LinkType::DoubleNvLink2);
    }

    #[test]
    fn v1_generation_selects_nvlink_v1() {
        let t = parse_topology_matrix(SAMPLE, "sample", NvlinkGeneration::V1).unwrap();
        assert_eq!(t.link_type(0, 2), LinkType::SingleNvLink1);
        // Multi-brick still maps to the double class.
        assert_eq!(t.link_type(0, 1), LinkType::DoubleNvLink2);
    }

    #[test]
    fn socket_inference_from_sys() {
        let t = parse_topology_matrix(SAMPLE, "sample", NvlinkGeneration::V2).unwrap();
        // 0 and 3 are separated by SYS, 0 and 1/2 are not.
        assert_eq!(t.socket_of(0), t.socket_of(1));
        assert_eq!(t.socket_of(0), t.socket_of(2));
        assert_ne!(t.socket_of(0), t.socket_of(3));
    }

    #[test]
    fn roundtrip_through_matrix_format() {
        for machine in [
            machines::dgx1_v100(),
            machines::summit(),
            machines::torus_2d(),
        ] {
            let rendered = to_topology_matrix(&machine);
            let parsed =
                parse_topology_matrix(&rendered, machine.name(), NvlinkGeneration::V2).unwrap();
            assert_eq!(parsed.gpu_count(), machine.gpu_count());
            for a in 0..machine.gpu_count() {
                for b in 0..machine.gpu_count() {
                    if a == b {
                        continue;
                    }
                    // Bandwidth class must survive the roundtrip (NVLink
                    // generation is normalised to v2 by the renderer).
                    let orig = match machine.link_type(a, b) {
                        LinkType::SingleNvLink1 => LinkType::SingleNvLink2,
                        l => l,
                    };
                    assert_eq!(parsed.link_type(a, b), orig, "{} ({a},{b})", machine.name());
                }
            }
        }
    }

    #[test]
    fn error_reporting() {
        assert_eq!(
            parse_topology_matrix("", "x", NvlinkGeneration::V2),
            Err(ParseError::Empty)
        );
        let bad_cell = "GPU0  X  WAT\nGPU1  WAT  X\n";
        assert!(matches!(
            parse_topology_matrix(bad_cell, "x", NvlinkGeneration::V2),
            Err(ParseError::BadCell { token, .. }) if token == "WAT"
        ));
        let asym = "GPU0  X   NV1\nGPU1  SYS  X\n";
        assert!(matches!(
            parse_topology_matrix(asym, "x", NvlinkGeneration::V2),
            Err(ParseError::Asymmetric { .. })
        ));
        let short = "GPU0  X  NV1\nGPU1  NV1\n";
        assert!(matches!(
            parse_topology_matrix(short, "x", NvlinkGeneration::V2),
            Err(ParseError::RowLength { .. })
        ));
        let diag = "GPU0  NV1  NV1\nGPU1  NV1  X\n";
        assert!(matches!(
            parse_topology_matrix(diag, "x", NvlinkGeneration::V2),
            Err(ParseError::BadDiagonal(0))
        ));
    }

    #[test]
    fn nv0_cells_ignored() {
        let m = "GPU0  X   NV0\nGPU1  NV0  X\n";
        let t = parse_topology_matrix(m, "x", NvlinkGeneration::V2).unwrap();
        assert_eq!(t.link_type(0, 1), LinkType::Pcie);
    }
}
