//! The [`Topology`] type: a named machine with GPUs, direct links, and
//! socket domains.

use crate::virt::SliceMap;
use crate::{LinkMix, LinkType};
use mapa_graph::{dot, Graph, WeightedGraph};

/// A multi-GPU server topology.
///
/// Stores only *direct* (NVLink) links explicitly; every other GPU pair
/// implicitly communicates over PCIe at 12 GB/s, per §3.2 of the paper. The
/// effective hardware graph handed to the matcher is therefore complete —
/// see [`Topology::bandwidth_graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    name: String,
    links: Graph<LinkType>,
    sockets: Vec<usize>,
    /// Present iff this machine came out of a
    /// [`crate::virt::PartitionPlan`]: which physical GPU each vertex
    /// lives on. `None` for ordinary machines.
    slices: Option<SliceMap>,
}

impl Topology {
    /// Creates a topology from a direct-link graph and a per-GPU socket id.
    ///
    /// # Panics
    /// Panics if `sockets.len()` differs from the vertex count, or if any
    /// explicit link is labeled [`LinkType::Pcie`] (PCIe is the implicit
    /// fallback, never an explicit link).
    #[must_use]
    pub fn new(name: impl Into<String>, links: Graph<LinkType>, sockets: Vec<usize>) -> Self {
        assert_eq!(
            sockets.len(),
            links.vertex_count(),
            "one socket id per GPU required"
        );
        assert!(
            links.edges().all(|(_, _, l)| l != LinkType::Pcie),
            "PCIe is the implicit fallback; do not add explicit PCIe links"
        );
        Self {
            name: name.into(),
            links,
            sockets,
            slices: None,
        }
    }

    /// Attaches a slice↔physical map (partition-plan expansion only).
    ///
    /// # Panics
    /// Panics if the map's vertex count disagrees with the topology's.
    pub(crate) fn with_slice_map(mut self, map: SliceMap) -> Self {
        assert_eq!(
            map.vertex_count(),
            self.gpu_count(),
            "slice map must cover every vertex"
        );
        self.slices = Some(map);
        self
    }

    /// The slice↔physical map, when this machine is the expansion of a
    /// [`crate::virt::PartitionPlan`]; `None` for ordinary machines.
    #[must_use]
    pub fn slice_map(&self) -> Option<&SliceMap> {
        self.slices.as_ref()
    }

    /// Whether any physical GPU of this machine is split into slices.
    #[must_use]
    pub fn is_partitioned(&self) -> bool {
        self.slices.as_ref().is_some_and(SliceMap::is_partitioned)
    }

    /// The machine's name (e.g. `"DGX-1 V100"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of GPUs.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.links.vertex_count()
    }

    /// The socket (PCIe root / CPU domain) a GPU belongs to.
    ///
    /// # Panics
    /// Panics if `gpu` is out of range.
    #[must_use]
    pub fn socket_of(&self, gpu: usize) -> usize {
        self.sockets[gpu]
    }

    /// Number of distinct sockets.
    #[must_use]
    pub fn socket_count(&self) -> usize {
        self.sockets.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// GPUs belonging to `socket`, ascending.
    #[must_use]
    pub fn gpus_in_socket(&self, socket: usize) -> Vec<usize> {
        (0..self.gpu_count())
            .filter(|&g| self.sockets[g] == socket)
            .collect()
    }

    /// The best link between two GPUs; PCIe when no direct link exists.
    ///
    /// # Panics
    /// Panics if either index is out of range or `a == b`.
    #[must_use]
    pub fn link_type(&self, a: usize, b: usize) -> LinkType {
        assert!(
            a < self.gpu_count() && b < self.gpu_count(),
            "GPU out of range"
        );
        assert_ne!(a, b, "no self-links");
        self.links.weight(a, b).unwrap_or(LinkType::Pcie)
    }

    /// Peak bandwidth between two GPUs in GB/s.
    ///
    /// # Panics
    /// Panics if either index is out of range or `a == b`.
    #[must_use]
    pub fn bandwidth(&self, a: usize, b: usize) -> f64 {
        self.link_type(a, b).bandwidth_gbps()
    }

    /// The direct-link (NVLink-only) graph.
    #[must_use]
    pub fn link_graph(&self) -> &Graph<LinkType> {
        &self.links
    }

    /// The complete hardware graph the paper's matcher mines: every pair of
    /// GPUs is connected, weighted with the best available bandwidth
    /// (NVLink where present, PCIe 12 GB/s otherwise).
    #[must_use]
    pub fn bandwidth_graph(&self) -> WeightedGraph {
        let n = self.gpu_count();
        let mut g = WeightedGraph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b, self.bandwidth(a, b))
                    .expect("complete graph edges valid");
            }
        }
        g
    }

    /// Like [`Self::bandwidth_graph`] but weighted with [`LinkType`]s.
    #[must_use]
    pub fn complete_link_graph(&self) -> Graph<LinkType> {
        let n = self.gpu_count();
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b, self.link_type(a, b))
                    .expect("complete graph edges valid");
            }
        }
        g
    }

    /// Counts the link-type mix over a set of GPU pairs (the `(x, y, z)` of
    /// the paper's Eq. 2).
    #[must_use]
    pub fn link_mix<'a>(&self, pairs: impl IntoIterator<Item = &'a (usize, usize)>) -> LinkMix {
        LinkMix::from_links(pairs.into_iter().map(|&(a, b)| self.link_type(a, b)))
    }

    /// Sum of peak bandwidths over all *direct* NVLink links plus implicit
    /// PCIe pairs — the total capacity of the complete hardware graph.
    #[must_use]
    pub fn total_bandwidth(&self) -> f64 {
        self.bandwidth_graph().total_weight()
    }

    /// Graphviz DOT rendering of the direct-link topology with bandwidth
    /// labels (PCIe pairs omitted for readability).
    #[must_use]
    pub fn to_dot(&self) -> String {
        let labeled = self.links.map_weights(|_, _, l| l.bandwidth_gbps());
        let opts = dot::DotOptions {
            name: self.name.clone(),
            vertex_labels: (0..self.gpu_count()).map(|g| format!("GPU{g}")).collect(),
            show_weights: true,
        };
        dot::to_dot(&labeled, &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        let mut links = Graph::new(4);
        links.add_edge(0, 1, LinkType::DoubleNvLink2).unwrap();
        links.add_edge(2, 3, LinkType::SingleNvLink2).unwrap();
        Topology::new("tiny", links, vec![0, 0, 1, 1])
    }

    #[test]
    fn pcie_fallback_for_unlinked_pairs() {
        let t = tiny();
        assert_eq!(t.link_type(0, 1), LinkType::DoubleNvLink2);
        assert_eq!(t.link_type(0, 2), LinkType::Pcie);
        assert_eq!(t.bandwidth(1, 3), 12.0);
        assert_eq!(t.bandwidth(0, 1), 50.0);
    }

    #[test]
    fn bandwidth_graph_is_complete() {
        let t = tiny();
        let g = t.bandwidth_graph();
        assert_eq!(g.edge_count(), 6); // C(4,2)
        assert_eq!(g.weight(0, 1), Some(50.0));
        assert_eq!(g.weight(0, 3), Some(12.0));
        // total: 50 + 25 + 4 * 12
        assert_eq!(t.total_bandwidth(), 50.0 + 25.0 + 4.0 * 12.0);
    }

    #[test]
    fn socket_queries() {
        let t = tiny();
        assert_eq!(t.socket_count(), 2);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.gpus_in_socket(1), vec![2, 3]);
    }

    #[test]
    fn link_mix_over_pairs() {
        let t = tiny();
        let mix = t.link_mix(&[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(mix.double_nvlink, 1);
        assert_eq!(mix.single_nvlink, 1);
        assert_eq!(mix.pcie, 1);
    }

    #[test]
    #[should_panic(expected = "implicit fallback")]
    fn explicit_pcie_link_rejected() {
        let mut links = Graph::new(2);
        links.add_edge(0, 1, LinkType::Pcie).unwrap();
        let _ = Topology::new("bad", links, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "no self-links")]
    fn self_link_query_panics() {
        let _ = tiny().link_type(1, 1);
    }

    #[test]
    fn dot_output_mentions_gpus() {
        let dotsrc = tiny().to_dot();
        assert!(dotsrc.contains("GPU0"));
        assert!(dotsrc.contains("50"));
        // PCIe pairs are not rendered.
        assert!(!dotsrc.contains("12"));
    }
}
