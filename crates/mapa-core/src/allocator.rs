//! The MAPA allocator engine: matching + scoring + policy + state (§3.6).

use crate::cache::{AllocationCache, CacheStats, DEFAULT_CACHE_CAPACITY};
use crate::policy::{AllocationPolicy, PolicyContext};
use crate::scoring::{self, MatchScore};
use mapa_graph::PatternGraph;
use mapa_graph::WeightedGraph;
use mapa_isomorph::{MatchOptions, Matcher};
use mapa_model::{corpus, paper_coefficients, EffBwModel};
use mapa_topology::{AllocationError, HardwareState, Topology};
use mapa_workloads::JobSpec;
use std::fmt;
use std::time::{Duration, Instant};

/// A successful allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationOutcome {
    /// The job that was placed.
    pub job_id: u64,
    /// Physical GPUs assigned, ascending.
    pub gpus: Vec<usize>,
    /// Scores of the selected match (Eq. 1–3 + link mix).
    pub score: MatchScore,
    /// Wall-clock time the decision took — the §5.4 scheduling overhead.
    pub scheduling_overhead: Duration,
}

/// Allocator errors (distinct from "no capacity right now", which is a
/// normal `Ok(None)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocatorError {
    /// The job requests zero GPUs or more than the machine has.
    InvalidRequest {
        /// GPUs requested.
        requested: usize,
        /// GPUs in the machine.
        machine: usize,
    },
    /// State-transition failure (duplicate job id, etc.).
    State(AllocationError),
}

impl fmt::Display for AllocatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocatorError::InvalidRequest { requested, machine } => {
                write!(
                    f,
                    "job requests {requested} GPUs on a {machine}-GPU machine"
                )
            }
            AllocatorError::State(e) => write!(f, "state error: {e}"),
        }
    }
}

impl std::error::Error for AllocatorError {}

impl From<AllocationError> for AllocatorError {
    fn from(e: AllocationError) -> Self {
        AllocatorError::State(e)
    }
}

/// Tunables of the allocation fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocatorConfig {
    /// Memoize selections in an [`AllocationCache`]. Off by default so the
    /// uncached path stays the reference; the simulator turns it on (the
    /// property tests prove the two paths produce identical placements).
    pub cached: bool,
    /// Entry bound of the cache when `cached` is set.
    pub cache_capacity: usize,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self {
            cached: false,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl AllocatorConfig {
    /// Config with the allocation cache enabled at the default capacity.
    #[must_use]
    pub fn cached() -> Self {
        Self {
            cached: true,
            ..Self::default()
        }
    }
}

/// The full MAPA stack for one machine: pattern matcher, Predicted-EffBW
/// model (fitted on this machine's own microbenchmark corpus, falling back
/// to the paper's Table 2 coefficients when the machine is too uniform to
/// produce enough unique link mixes), the selection policy, the
/// allocation state, and (optionally) the allocation-decision cache.
pub struct MapaAllocator {
    topology: Topology,
    state: HardwareState,
    matcher: Matcher,
    model: EffBwModel,
    policy: Box<dyn AllocationPolicy>,
    data_graph: PatternGraph,
    bandwidth_graph: WeightedGraph,
    cache: Option<AllocationCache>,
}

impl MapaAllocator {
    /// Builds an allocator, fitting the EffBW model on the machine's own
    /// 2–5-GPU allocation corpus (§3.4.3 protocol).
    #[must_use]
    pub fn new(topology: Topology, policy: Box<dyn AllocationPolicy>) -> Self {
        let max_fit = topology.gpu_count().min(5);
        let model = EffBwModel::fit(&corpus::build_corpus(&topology, 2..=max_fit))
            .unwrap_or_else(|_| EffBwModel::from_coefficients(paper_coefficients()));
        Self::with_model(topology, policy, model)
    }

    /// Builds an allocator with an explicit model (e.g. the paper's
    /// Table 2 coefficients, or a model fitted on another machine).
    #[must_use]
    pub fn with_model(
        topology: Topology,
        policy: Box<dyn AllocationPolicy>,
        model: EffBwModel,
    ) -> Self {
        Self {
            state: HardwareState::new(topology.clone()),
            matcher: Matcher::new(MatchOptions::default()),
            data_graph: scoring::matcher_data_graph(&topology),
            bandwidth_graph: topology.bandwidth_graph(),
            model,
            policy,
            topology,
            cache: None,
        }
    }

    /// Applies an [`AllocatorConfig`] (builder style).
    #[must_use]
    pub fn with_config(mut self, config: AllocatorConfig) -> Self {
        self.apply_config(&config);
        self
    }

    /// Applies an [`AllocatorConfig`] in place. Disabling the cache drops
    /// it (and its counters); enabling it when one is already active keeps
    /// the existing entries and counters but re-bounds the capacity,
    /// evicting oldest-first if the cache now holds too many.
    pub fn apply_config(&mut self, config: &AllocatorConfig) {
        if config.cached {
            match self.cache.as_mut() {
                Some(cache) => cache.set_capacity(config.cache_capacity),
                None => self.cache = Some(AllocationCache::new(config.cache_capacity)),
            }
        } else {
            self.cache = None;
        }
    }

    /// Replaces the matcher configuration (e.g. to enable parallel
    /// enumeration on a shared worker pool, or switch backends). Clears
    /// the allocation cache if one is active: cached decisions may depend
    /// on the matcher configuration (backend, dedup mode, match caps) for
    /// matcher-driven policies, so a swap invalidates them wholesale.
    pub fn set_matcher(&mut self, matcher: Matcher) {
        self.matcher = matcher;
        if let Some(cache) = self.cache.as_mut() {
            cache.clear();
        }
    }

    /// Counters of the allocation cache, if enabled.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(AllocationCache::stats)
    }

    /// The machine this allocator manages.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current occupancy.
    #[must_use]
    pub fn state(&self) -> &HardwareState {
        &self.state
    }

    /// The Predicted-EffBW model in use.
    #[must_use]
    pub fn model(&self) -> &EffBwModel {
        &self.model
    }

    /// The subgraph matcher in use (see [`MapaAllocator::set_matcher`]).
    #[must_use]
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }

    /// The active policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Runs the policy's selection for `job` against the current occupancy
    /// (through the allocation cache when enabled) without touching state.
    fn select_for(&mut self, job: &JobSpec) -> Result<Option<Vec<usize>>, AllocatorError> {
        if job.num_gpus == 0 || job.num_gpus > self.topology.gpu_count() {
            return Err(AllocatorError::InvalidRequest {
                requested: job.num_gpus,
                machine: self.topology.gpu_count(),
            });
        }
        let ctx = PolicyContext {
            topology: &self.topology,
            state: &self.state,
            model: &self.model,
            matcher: &self.matcher,
            data_graph: &self.data_graph,
            bandwidth_graph: &self.bandwidth_graph,
        };
        // Fast path: answer from the allocation cache when the exact
        // (pattern, sensitivity, machine, occupancy) decision was already
        // made. Oversized patterns yield no key and bypass the cache.
        Ok(match self.cache.as_mut() {
            Some(cache) => {
                match cache.key_for(job, self.topology.name(), self.state.occupancy_signature()) {
                    Some(key) => match cache.get(&key) {
                        Some(hit) => hit.clone(),
                        None => {
                            let selected = self.policy.select(job, &ctx);
                            cache.insert(key, selected.clone());
                            selected
                        }
                    },
                    None => self.policy.select(job, &ctx),
                }
            }
            None => self.policy.select(job, &ctx),
        })
    }

    /// Previews the placement `try_allocate` would make for `job` right
    /// now — the selected GPU set and its scores — without transitioning
    /// state. The preview goes through the allocation cache exactly like
    /// a real allocation, so a cluster-level server-selection stage can
    /// score every shard's would-be placement cheaply and the winning
    /// shard's subsequent `try_allocate` is a guaranteed cache hit.
    ///
    /// Returns `Ok(None)` when the policy cannot place the job right now.
    ///
    /// # Errors
    /// [`AllocatorError::InvalidRequest`] for impossible requests.
    pub fn peek(
        &mut self,
        job: &JobSpec,
    ) -> Result<Option<(Vec<usize>, MatchScore)>, AllocatorError> {
        let Some(gpus) = self.select_for(job)? else {
            return Ok(None);
        };
        let score = self.score_allocation(job, &gpus);
        Ok(Some((gpus, score)))
    }

    /// Attempts to place `job`. Returns `Ok(None)` when the machine lacks
    /// free GPUs for it right now (the caller should retry after a
    /// deallocation, as the FIFO queue of Fig. 14 does).
    ///
    /// # Errors
    /// [`AllocatorError::InvalidRequest`] for impossible requests;
    /// [`AllocatorError::State`] if the job id is already active.
    pub fn try_allocate(
        &mut self,
        job: &JobSpec,
    ) -> Result<Option<AllocationOutcome>, AllocatorError> {
        let started = Instant::now();
        let Some(gpus) = self.select_for(job)? else {
            return Ok(None);
        };
        // Score the chosen allocation before mutating state (preserved BW
        // is defined against the pre-allocation free graph).
        let score = self.score_allocation(job, &gpus);
        let scheduling_overhead = started.elapsed();
        self.state.allocate(job.id, &gpus)?;
        Ok(Some(AllocationOutcome {
            job_id: job.id,
            gpus,
            score,
            scheduling_overhead,
        }))
    }

    /// Scores a hypothetical allocation of `gpus` to `job` against the
    /// current state, without allocating.
    #[must_use]
    pub fn score_allocation(&self, job: &JobSpec, gpus: &[usize]) -> MatchScore {
        let pattern = crate::appgraph::job_pattern(job);
        // Aggregated bandwidth uses the identity embedding of the pattern
        // onto the ascending GPU list (the embedding chosen by a policy is
        // already canonicalised to its sorted vertex set).
        let embedding = mapa_isomorph::Embedding::new(gpus.to_vec());
        let (free_graph, free_map) = self.state.available_graph();
        MatchScore {
            aggregated_bw: scoring::aggregated_bandwidth(
                &pattern,
                &self.bandwidth_graph,
                &embedding,
            ),
            predicted_eff_bw: scoring::predicted_effective_bandwidth(
                &self.model,
                &self.topology,
                gpus,
            ),
            preserved_bw: scoring::preserved_bandwidth(&free_graph, &free_map, gpus),
            link_mix: scoring::allocation_link_mix(&self.topology, gpus),
        }
    }

    /// Releases a finished job's GPUs (§3.6 deallocation).
    ///
    /// # Errors
    /// Fails when the job is not active.
    pub fn release(&mut self, job_id: u64) -> Result<Vec<usize>, AllocatorError> {
        Ok(self.state.deallocate(job_id)?)
    }
}

impl fmt::Debug for MapaAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapaAllocator")
            .field("topology", &self.topology.name())
            .field("policy", &self.policy.name())
            .field("free", &self.state.free_count())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BaselinePolicy, GreedyPolicy, PreservePolicy};
    use mapa_topology::machines;
    use mapa_workloads::{AppTopology, Workload};

    fn job(id: u64, n: usize, sensitive: bool) -> JobSpec {
        JobSpec {
            id,
            num_gpus: n,
            topology: AppTopology::Ring,
            bandwidth_sensitive: sensitive,
            workload: Workload::Vgg16,
            iterations: 100,
        }
    }

    #[test]
    fn allocate_release_cycle() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        let out = a.try_allocate(&job(1, 3, true)).unwrap().unwrap();
        assert_eq!(out.gpus.len(), 3);
        assert_eq!(a.state().free_count(), 5);
        assert!(out.score.predicted_eff_bw > 0.0);
        let released = a.release(1).unwrap();
        assert_eq!(released, out.gpus);
        assert_eq!(a.state().free_count(), 8);
    }

    #[test]
    fn exhaustion_returns_none_not_error() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        a.try_allocate(&job(1, 5, true)).unwrap().unwrap();
        a.try_allocate(&job(2, 3, true)).unwrap().unwrap();
        assert_eq!(a.try_allocate(&job(3, 1, true)).unwrap(), None);
        a.release(2).unwrap();
        assert!(a.try_allocate(&job(3, 1, true)).unwrap().is_some());
    }

    #[test]
    fn invalid_requests_are_errors() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        assert!(matches!(
            a.try_allocate(&job(1, 0, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
        assert!(matches!(
            a.try_allocate(&job(1, 9, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
        a.try_allocate(&job(7, 2, true)).unwrap().unwrap();
        assert!(matches!(
            a.try_allocate(&job(7, 2, true)),
            Err(AllocatorError::State(AllocationError::JobExists(7)))
        ));
    }

    #[test]
    fn outcome_scores_are_consistent() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(GreedyPolicy));
        let out = a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        // Greedy 2-GPU ring lands on a double NVLink: AggBW 50.
        assert_eq!(out.score.aggregated_bw, 50.0);
        assert_eq!(out.score.link_mix.double_nvlink, 1);
        assert!(out.score.preserved_bw > 0.0);
        assert!(out.scheduling_overhead < Duration::from_secs(1));
    }

    #[test]
    fn uniform_machine_falls_back_to_paper_model() {
        // DGX-2 has one unique link mix per job size — too few samples to
        // fit; construction must still succeed via Table 2 fallback.
        let a = MapaAllocator::new(machines::dgx2(), Box::new(PreservePolicy));
        let mix = mapa_topology::LinkMix {
            double_nvlink: 1,
            single_nvlink: 0,
            pcie: 0,
        };
        assert!(a.model().predict(&mix) > 0.0);
    }

    #[test]
    fn release_unknown_job_fails() {
        let mut a = MapaAllocator::new(machines::summit(), Box::new(BaselinePolicy));
        assert!(a.release(42).is_err());
    }

    #[test]
    fn cached_allocator_hits_on_recurring_states() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        // Same job shape against the idle machine, released in between:
        // the occupancy signature recurs, so reps 2.. are cache hits.
        let mut placements = Vec::new();
        for rep in 0..4u64 {
            let out = a.try_allocate(&job(rep + 1, 3, true)).unwrap().unwrap();
            placements.push(out.gpus.clone());
            a.release(rep + 1).unwrap();
        }
        assert!(placements.windows(2).all(|w| w[0] == w[1]));
        let stats = a.cache_stats().expect("cache enabled");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert!(stats.hit_rate() > 0.74);
    }

    #[test]
    fn release_rotates_cache_key_so_stale_hits_are_impossible() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        // Occupy GPUs so the state differs from idle, then place a job.
        let first = a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        let second = a.try_allocate(&job(2, 2, true)).unwrap().unwrap();
        assert_ne!(first.gpus, second.gpus, "states differ → keys differ");
        // After releasing job 1 the occupancy is new (job 2 still holds
        // its GPUs): the next identical request must be a miss, not a
        // stale idle-state hit that would hand out busy GPUs.
        a.release(1).unwrap();
        let third = a.try_allocate(&job(3, 2, true)).unwrap().unwrap();
        assert!(third.gpus.iter().all(|&g| !second.gpus.contains(&g)));
        let stats = a.cache_stats().unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn cached_and_uncached_paths_agree_with_interleaved_releases() {
        let mut cached = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        let mut plain = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        let stream = [
            (1u64, 2usize, true),
            (2, 3, false),
            (3, 2, true), // same shape as job 1, different occupancy
            (4, 1, false),
        ];
        let mut held = Vec::new();
        for &(id, n, sensitive) in &stream {
            let a = cached.try_allocate(&job(id, n, sensitive)).unwrap();
            let b = plain.try_allocate(&job(id, n, sensitive)).unwrap();
            assert_eq!(
                a.as_ref().map(|o| &o.gpus),
                b.as_ref().map(|o| &o.gpus),
                "cached and uncached disagree on job {id}"
            );
            if a.is_some() {
                held.push(id);
            }
            if id == 2 {
                cached.release(1).unwrap();
                plain.release(1).unwrap();
                held.retain(|&j| j != 1);
            }
        }
        for id in held {
            assert_eq!(cached.release(id).unwrap(), plain.release(id).unwrap());
        }
    }

    #[test]
    fn set_matcher_invalidates_cached_decisions() {
        use mapa_isomorph::{MatchOptions, Matcher};
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        a.release(1).unwrap();
        // The idle-state decision is cached; swapping the matcher must
        // drop it (a different backend/cap could select differently), so
        // the repeat is a fresh miss, not a stale hit.
        a.set_matcher(Matcher::new(MatchOptions::parallel()));
        a.try_allocate(&job(2, 2, true)).unwrap().unwrap();
        let stats = a.cache_stats().unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn peek_previews_without_state_transition() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        let j = job(1, 3, true);
        let (gpus, score) = a.peek(&j).unwrap().expect("idle machine places");
        assert_eq!(a.state().free_count(), 8, "peek must not allocate");
        assert!(score.predicted_eff_bw > 0.0);
        // The real allocation answers from the cache and picks the same
        // GPUs the preview promised.
        let out = a.try_allocate(&j).unwrap().unwrap();
        assert_eq!(out.gpus, gpus);
        assert_eq!(out.score, score);
        let stats = a.cache_stats().unwrap();
        assert_eq!(stats.hits, 1, "peek primed the cache for the allocation");
        // Once the machine is full for this size, peek reports None.
        a.try_allocate(&job(2, 5, true)).unwrap().unwrap();
        assert_eq!(a.peek(&job(3, 2, true)).unwrap(), None);
        assert!(matches!(
            a.peek(&job(4, 9, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn config_toggling_drops_and_recreates_cache() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        assert!(a.cache_stats().is_none());
        a.apply_config(&AllocatorConfig {
            cached: true,
            cache_capacity: 8,
        });
        a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        assert_eq!(a.cache_stats().unwrap().misses, 1);
        // Re-applying the cached config keeps counters and entries.
        a.apply_config(&AllocatorConfig::cached());
        assert_eq!(a.cache_stats().unwrap().misses, 1);
        a.apply_config(&AllocatorConfig::default());
        assert!(a.cache_stats().is_none());
    }
}
