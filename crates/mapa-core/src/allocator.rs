//! The MAPA allocator engine: matching + scoring + policy + state (§3.6).

use crate::policy::{AllocationPolicy, PolicyContext};
use crate::scoring::{self, MatchScore};
use mapa_graph::PatternGraph;
use mapa_graph::WeightedGraph;
use mapa_isomorph::{MatchOptions, Matcher};
use mapa_model::{corpus, paper_coefficients, EffBwModel};
use mapa_topology::{AllocationError, HardwareState, Topology};
use mapa_workloads::JobSpec;
use std::fmt;
use std::time::{Duration, Instant};

/// A successful allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationOutcome {
    /// The job that was placed.
    pub job_id: u64,
    /// Physical GPUs assigned, ascending.
    pub gpus: Vec<usize>,
    /// Scores of the selected match (Eq. 1–3 + link mix).
    pub score: MatchScore,
    /// Wall-clock time the decision took — the §5.4 scheduling overhead.
    pub scheduling_overhead: Duration,
}

/// Allocator errors (distinct from "no capacity right now", which is a
/// normal `Ok(None)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocatorError {
    /// The job requests zero GPUs or more than the machine has.
    InvalidRequest {
        /// GPUs requested.
        requested: usize,
        /// GPUs in the machine.
        machine: usize,
    },
    /// State-transition failure (duplicate job id, etc.).
    State(AllocationError),
}

impl fmt::Display for AllocatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocatorError::InvalidRequest { requested, machine } => {
                write!(
                    f,
                    "job requests {requested} GPUs on a {machine}-GPU machine"
                )
            }
            AllocatorError::State(e) => write!(f, "state error: {e}"),
        }
    }
}

impl std::error::Error for AllocatorError {}

impl From<AllocationError> for AllocatorError {
    fn from(e: AllocationError) -> Self {
        AllocatorError::State(e)
    }
}

/// The full MAPA stack for one machine: pattern matcher, Predicted-EffBW
/// model (fitted on this machine's own microbenchmark corpus, falling back
/// to the paper's Table 2 coefficients when the machine is too uniform to
/// produce enough unique link mixes), the selection policy, and the
/// allocation state.
pub struct MapaAllocator {
    topology: Topology,
    state: HardwareState,
    matcher: Matcher,
    model: EffBwModel,
    policy: Box<dyn AllocationPolicy>,
    data_graph: PatternGraph,
    bandwidth_graph: WeightedGraph,
}

impl MapaAllocator {
    /// Builds an allocator, fitting the EffBW model on the machine's own
    /// 2–5-GPU allocation corpus (§3.4.3 protocol).
    #[must_use]
    pub fn new(topology: Topology, policy: Box<dyn AllocationPolicy>) -> Self {
        let max_fit = topology.gpu_count().min(5);
        let model = EffBwModel::fit(&corpus::build_corpus(&topology, 2..=max_fit))
            .unwrap_or_else(|_| EffBwModel::from_coefficients(paper_coefficients()));
        Self::with_model(topology, policy, model)
    }

    /// Builds an allocator with an explicit model (e.g. the paper's
    /// Table 2 coefficients, or a model fitted on another machine).
    #[must_use]
    pub fn with_model(
        topology: Topology,
        policy: Box<dyn AllocationPolicy>,
        model: EffBwModel,
    ) -> Self {
        Self {
            state: HardwareState::new(topology.clone()),
            matcher: Matcher::new(MatchOptions::default()),
            data_graph: scoring::matcher_data_graph(&topology),
            bandwidth_graph: topology.bandwidth_graph(),
            model,
            policy,
            topology,
        }
    }

    /// Replaces the matcher configuration (e.g. to enable parallel
    /// enumeration or switch backends).
    pub fn set_matcher(&mut self, matcher: Matcher) {
        self.matcher = matcher;
    }

    /// The machine this allocator manages.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current occupancy.
    #[must_use]
    pub fn state(&self) -> &HardwareState {
        &self.state
    }

    /// The Predicted-EffBW model in use.
    #[must_use]
    pub fn model(&self) -> &EffBwModel {
        &self.model
    }

    /// The active policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Attempts to place `job`. Returns `Ok(None)` when the machine lacks
    /// free GPUs for it right now (the caller should retry after a
    /// deallocation, as the FIFO queue of Fig. 14 does).
    ///
    /// # Errors
    /// [`AllocatorError::InvalidRequest`] for impossible requests;
    /// [`AllocatorError::State`] if the job id is already active.
    pub fn try_allocate(
        &mut self,
        job: &JobSpec,
    ) -> Result<Option<AllocationOutcome>, AllocatorError> {
        if job.num_gpus == 0 || job.num_gpus > self.topology.gpu_count() {
            return Err(AllocatorError::InvalidRequest {
                requested: job.num_gpus,
                machine: self.topology.gpu_count(),
            });
        }
        let started = Instant::now();
        let ctx = PolicyContext {
            topology: &self.topology,
            state: &self.state,
            model: &self.model,
            matcher: &self.matcher,
            data_graph: &self.data_graph,
            bandwidth_graph: &self.bandwidth_graph,
        };
        let Some(gpus) = self.policy.select(job, &ctx) else {
            return Ok(None);
        };
        // Score the chosen allocation before mutating state (preserved BW
        // is defined against the pre-allocation free graph).
        let score = self.score_allocation(job, &gpus);
        let scheduling_overhead = started.elapsed();
        self.state.allocate(job.id, &gpus)?;
        Ok(Some(AllocationOutcome {
            job_id: job.id,
            gpus,
            score,
            scheduling_overhead,
        }))
    }

    /// Scores a hypothetical allocation of `gpus` to `job` against the
    /// current state, without allocating.
    #[must_use]
    pub fn score_allocation(&self, job: &JobSpec, gpus: &[usize]) -> MatchScore {
        let pattern = crate::appgraph::job_pattern(job);
        // Aggregated bandwidth uses the identity embedding of the pattern
        // onto the ascending GPU list (the embedding chosen by a policy is
        // already canonicalised to its sorted vertex set).
        let embedding = mapa_isomorph::Embedding::new(gpus.to_vec());
        let (free_graph, free_map) = self.state.available_graph();
        MatchScore {
            aggregated_bw: scoring::aggregated_bandwidth(
                &pattern,
                &self.bandwidth_graph,
                &embedding,
            ),
            predicted_eff_bw: scoring::predicted_effective_bandwidth(
                &self.model,
                &self.topology,
                gpus,
            ),
            preserved_bw: scoring::preserved_bandwidth(&free_graph, &free_map, gpus),
            link_mix: scoring::allocation_link_mix(&self.topology, gpus),
        }
    }

    /// Releases a finished job's GPUs (§3.6 deallocation).
    ///
    /// # Errors
    /// Fails when the job is not active.
    pub fn release(&mut self, job_id: u64) -> Result<Vec<usize>, AllocatorError> {
        Ok(self.state.deallocate(job_id)?)
    }
}

impl fmt::Debug for MapaAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapaAllocator")
            .field("topology", &self.topology.name())
            .field("policy", &self.policy.name())
            .field("free", &self.state.free_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BaselinePolicy, GreedyPolicy, PreservePolicy};
    use mapa_topology::machines;
    use mapa_workloads::{AppTopology, Workload};

    fn job(id: u64, n: usize, sensitive: bool) -> JobSpec {
        JobSpec {
            id,
            num_gpus: n,
            topology: AppTopology::Ring,
            bandwidth_sensitive: sensitive,
            workload: Workload::Vgg16,
            iterations: 100,
        }
    }

    #[test]
    fn allocate_release_cycle() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        let out = a.try_allocate(&job(1, 3, true)).unwrap().unwrap();
        assert_eq!(out.gpus.len(), 3);
        assert_eq!(a.state().free_count(), 5);
        assert!(out.score.predicted_eff_bw > 0.0);
        let released = a.release(1).unwrap();
        assert_eq!(released, out.gpus);
        assert_eq!(a.state().free_count(), 8);
    }

    #[test]
    fn exhaustion_returns_none_not_error() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        a.try_allocate(&job(1, 5, true)).unwrap().unwrap();
        a.try_allocate(&job(2, 3, true)).unwrap().unwrap();
        assert_eq!(a.try_allocate(&job(3, 1, true)).unwrap(), None);
        a.release(2).unwrap();
        assert!(a.try_allocate(&job(3, 1, true)).unwrap().is_some());
    }

    #[test]
    fn invalid_requests_are_errors() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        assert!(matches!(
            a.try_allocate(&job(1, 0, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
        assert!(matches!(
            a.try_allocate(&job(1, 9, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
        a.try_allocate(&job(7, 2, true)).unwrap().unwrap();
        assert!(matches!(
            a.try_allocate(&job(7, 2, true)),
            Err(AllocatorError::State(AllocationError::JobExists(7)))
        ));
    }

    #[test]
    fn outcome_scores_are_consistent() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(GreedyPolicy));
        let out = a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        // Greedy 2-GPU ring lands on a double NVLink: AggBW 50.
        assert_eq!(out.score.aggregated_bw, 50.0);
        assert_eq!(out.score.link_mix.double_nvlink, 1);
        assert!(out.score.preserved_bw > 0.0);
        assert!(out.scheduling_overhead < Duration::from_secs(1));
    }

    #[test]
    fn uniform_machine_falls_back_to_paper_model() {
        // DGX-2 has one unique link mix per job size — too few samples to
        // fit; construction must still succeed via Table 2 fallback.
        let a = MapaAllocator::new(machines::dgx2(), Box::new(PreservePolicy));
        let mix = mapa_topology::LinkMix {
            double_nvlink: 1,
            single_nvlink: 0,
            pcie: 0,
        };
        assert!(a.model().predict(&mix) > 0.0);
    }

    #[test]
    fn release_unknown_job_fails() {
        let mut a = MapaAllocator::new(machines::summit(), Box::new(BaselinePolicy));
        assert!(a.release(42).is_err());
    }
}
