//! The MAPA allocator engine: matching + scoring + policy + state (§3.6).

use crate::cache::{AllocationCache, CacheStats, DEFAULT_CACHE_CAPACITY};
use crate::policy::{AllocationPolicy, PolicyContext};
use crate::preempt::PreemptionPolicy;
use crate::scoring::{self, MatchScore};
use mapa_graph::PatternGraph;
use mapa_graph::WeightedGraph;
use mapa_isomorph::{MatchOptions, Matcher};
use mapa_model::{corpus, paper_coefficients, EffBwModel};
use mapa_topology::{AllocationError, HardwareState, Topology};
use mapa_workloads::JobSpec;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// A successful allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationOutcome {
    /// The job that was placed.
    pub job_id: u64,
    /// Physical GPUs assigned, ascending.
    pub gpus: Vec<usize>,
    /// Scores of the selected match (Eq. 1–3 + link mix).
    pub score: MatchScore,
    /// Wall-clock time the decision took — the §5.4 scheduling overhead.
    pub scheduling_overhead: Duration,
}

/// Allocator errors (distinct from "no capacity right now", which is a
/// normal `Ok(None)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocatorError {
    /// The job requests zero GPUs or more than the machine has.
    InvalidRequest {
        /// GPUs requested.
        requested: usize,
        /// GPUs in the machine.
        machine: usize,
    },
    /// State-transition failure (duplicate job id, etc.).
    State(AllocationError),
}

impl fmt::Display for AllocatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocatorError::InvalidRequest { requested, machine } => {
                write!(
                    f,
                    "job requests {requested} GPUs on a {machine}-GPU machine"
                )
            }
            AllocatorError::State(e) => write!(f, "state error: {e}"),
        }
    }
}

impl std::error::Error for AllocatorError {}

impl From<AllocationError> for AllocatorError {
    fn from(e: AllocationError) -> Self {
        AllocatorError::State(e)
    }
}

/// Tunables of the allocation fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocatorConfig {
    /// Memoize selections in an [`AllocationCache`]. Off by default so the
    /// uncached path stays the reference; the simulator turns it on (the
    /// property tests prove the two paths produce identical placements).
    pub cached: bool,
    /// Entry bound of the cache when `cached` is set.
    pub cache_capacity: usize,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self {
            cached: false,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl AllocatorConfig {
    /// Config with the allocation cache enabled at the default capacity.
    #[must_use]
    pub fn cached() -> Self {
        Self {
            cached: true,
            ..Self::default()
        }
    }
}

/// The full MAPA stack for one machine: pattern matcher, Predicted-EffBW
/// model (fitted on this machine's own microbenchmark corpus, falling back
/// to the paper's Table 2 coefficients when the machine is too uniform to
/// produce enough unique link mixes), the selection policy, the
/// allocation state, and (optionally) the allocation-decision cache.
pub struct MapaAllocator {
    topology: Topology,
    state: HardwareState,
    matcher: Matcher,
    model: EffBwModel,
    policy: Box<dyn AllocationPolicy>,
    data_graph: PatternGraph,
    bandwidth_graph: WeightedGraph,
    cache: Option<AllocationCache>,
    /// Scheduling metadata of every active job — what preemption victim
    /// selection ranks on. Keyed by job id; maintained by
    /// `try_allocate`/`release`.
    active: HashMap<u64, ActiveJob>,
    /// Monotonic allocation counter; `ActiveJob::seq` snapshots it so
    /// victim ordering can prefer the youngest allocation.
    alloc_seq: u64,
}

/// Metadata of one running job, recorded at allocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ActiveJob {
    priority: u8,
    bandwidth_sensitive: bool,
    /// Allocation order (younger = larger).
    seq: u64,
}

impl MapaAllocator {
    /// Builds an allocator, fitting the EffBW model on the machine's own
    /// 2–5-GPU allocation corpus (§3.4.3 protocol).
    #[must_use]
    pub fn new(topology: Topology, policy: Box<dyn AllocationPolicy>) -> Self {
        let max_fit = topology.gpu_count().min(5);
        let model = EffBwModel::fit(&corpus::build_corpus(&topology, 2..=max_fit))
            .unwrap_or_else(|_| EffBwModel::from_coefficients(paper_coefficients()));
        Self::with_model(topology, policy, model)
    }

    /// Builds an allocator with an explicit model (e.g. the paper's
    /// Table 2 coefficients, or a model fitted on another machine).
    #[must_use]
    pub fn with_model(
        topology: Topology,
        policy: Box<dyn AllocationPolicy>,
        model: EffBwModel,
    ) -> Self {
        Self {
            state: HardwareState::new(topology.clone()),
            matcher: Matcher::new(MatchOptions::default()),
            data_graph: scoring::matcher_data_graph(&topology),
            bandwidth_graph: topology.bandwidth_graph(),
            model,
            policy,
            topology,
            cache: None,
            active: HashMap::new(),
            alloc_seq: 0,
        }
    }

    /// Applies an [`AllocatorConfig`] (builder style).
    #[must_use]
    pub fn with_config(mut self, config: AllocatorConfig) -> Self {
        self.apply_config(&config);
        self
    }

    /// Applies an [`AllocatorConfig`] in place. Disabling the cache drops
    /// it (and its counters); enabling it when one is already active keeps
    /// the existing entries and counters but re-bounds the capacity,
    /// evicting oldest-first if the cache now holds too many.
    pub fn apply_config(&mut self, config: &AllocatorConfig) {
        if config.cached {
            match self.cache.as_mut() {
                Some(cache) => cache.set_capacity(config.cache_capacity),
                None => self.cache = Some(AllocationCache::new(config.cache_capacity)),
            }
        } else {
            self.cache = None;
        }
    }

    /// Replaces the matcher configuration (e.g. to enable parallel
    /// enumeration on a shared worker pool, or switch backends). Clears
    /// the allocation cache if one is active: cached decisions may depend
    /// on the matcher configuration (backend, dedup mode, match caps) for
    /// matcher-driven policies, so a swap invalidates them wholesale.
    pub fn set_matcher(&mut self, matcher: Matcher) {
        self.matcher = matcher;
        if let Some(cache) = self.cache.as_mut() {
            cache.clear();
        }
    }

    /// Counters of the allocation cache, if enabled.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(AllocationCache::stats)
    }

    /// The machine this allocator manages.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current occupancy.
    #[must_use]
    pub fn state(&self) -> &HardwareState {
        &self.state
    }

    /// The Predicted-EffBW model in use.
    #[must_use]
    pub fn model(&self) -> &EffBwModel {
        &self.model
    }

    /// The subgraph matcher in use (see [`MapaAllocator::set_matcher`]).
    #[must_use]
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }

    /// The active policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Runs the policy's selection for `job` against the current occupancy
    /// (through the allocation cache when enabled) without touching state.
    fn select_for(&mut self, job: &JobSpec) -> Result<Option<Vec<usize>>, AllocatorError> {
        if job.num_gpus() == 0 || job.num_gpus() > self.topology.gpu_count() {
            return Err(AllocatorError::InvalidRequest {
                requested: job.num_gpus(),
                machine: self.topology.gpu_count(),
            });
        }
        let ctx = PolicyContext {
            topology: &self.topology,
            state: &self.state,
            model: &self.model,
            matcher: &self.matcher,
            data_graph: &self.data_graph,
            bandwidth_graph: &self.bandwidth_graph,
        };
        // Fast path: answer from the allocation cache when the exact
        // (pattern, sensitivity, demand kind, SLO tag, machine, occupancy)
        // decision was already made. Oversized patterns yield no key and
        // bypass the cache.
        Ok(match self.cache.as_mut() {
            Some(cache) => {
                match cache.key_for(job, self.topology.name(), self.state.occupancy_signature()) {
                    Some(key) => match cache.get(&key) {
                        Some(hit) => hit.clone(),
                        None => {
                            let selected = self.policy.select(job, &ctx);
                            cache.insert(key, selected.clone());
                            selected
                        }
                    },
                    None => self.policy.select(job, &ctx),
                }
            }
            None => self.policy.select(job, &ctx),
        })
    }

    /// Previews the placement `try_allocate` would make for `job` right
    /// now — the selected GPU set and its scores — without transitioning
    /// state. The preview goes through the allocation cache exactly like
    /// a real allocation, so a cluster-level server-selection stage can
    /// score every shard's would-be placement cheaply and the winning
    /// shard's subsequent `try_allocate` is a guaranteed cache hit.
    ///
    /// Returns `Ok(None)` when the policy cannot place the job right now.
    ///
    /// # Errors
    /// [`AllocatorError::InvalidRequest`] for impossible requests.
    pub fn peek(
        &mut self,
        job: &JobSpec,
    ) -> Result<Option<(Vec<usize>, MatchScore)>, AllocatorError> {
        let Some(gpus) = self.select_for(job)? else {
            return Ok(None);
        };
        let score = self.score_allocation(job, &gpus);
        Ok(Some((gpus, score)))
    }

    /// Attempts to place `job`. Returns `Ok(None)` when the machine lacks
    /// free GPUs for it right now (the caller should retry after a
    /// deallocation, as the FIFO queue of Fig. 14 does).
    ///
    /// # Errors
    /// [`AllocatorError::InvalidRequest`] for impossible requests;
    /// [`AllocatorError::State`] if the job id is already active.
    pub fn try_allocate(
        &mut self,
        job: &JobSpec,
    ) -> Result<Option<AllocationOutcome>, AllocatorError> {
        let started = Instant::now();
        let Some(gpus) = self.select_for(job)? else {
            return Ok(None);
        };
        // Score the chosen allocation before mutating state (preserved BW
        // is defined against the pre-allocation free graph).
        let score = self.score_allocation(job, &gpus);
        let scheduling_overhead = started.elapsed();
        self.state.allocate(job.id, &gpus)?;
        self.alloc_seq += 1;
        self.active.insert(
            job.id,
            ActiveJob {
                priority: job.priority,
                bandwidth_sensitive: job.bandwidth_sensitive,
                seq: self.alloc_seq,
            },
        );
        Ok(Some(AllocationOutcome {
            job_id: job.id,
            gpus,
            score,
            scheduling_overhead,
        }))
    }

    /// Adopts an allocation decided elsewhere: marks `gpus` as held by
    /// `job_id` without running policy selection. This is how an agent
    /// replays externally-known occupancy — on-disk leases, or GPUs a
    /// hardware probe observed busy under workloads the ledger does not
    /// know about — so that subsequent [`MapaAllocator::try_allocate`]
    /// calls decide against the machine's true state. Adopted jobs are
    /// ordinary active jobs afterwards (releasable, evictable) with
    /// priority 0 and no bandwidth-sensitivity annotation.
    ///
    /// # Errors
    /// [`AllocatorError::State`] if the id is already active or any GPU
    /// is out of range, duplicated, or busy. State is unchanged on error.
    pub fn adopt(&mut self, job_id: u64, gpus: &[usize]) -> Result<(), AllocatorError> {
        self.state.allocate(job_id, gpus)?;
        self.alloc_seq += 1;
        self.active.insert(
            job_id,
            ActiveJob {
                priority: 0,
                bandwidth_sensitive: false,
                seq: self.alloc_seq,
            },
        );
        Ok(())
    }

    /// Scores a hypothetical allocation of `gpus` to `job` against the
    /// current state, without allocating.
    #[must_use]
    pub fn score_allocation(&self, job: &JobSpec, gpus: &[usize]) -> MatchScore {
        let pattern = crate::appgraph::job_pattern(job);
        // Aggregated bandwidth uses the identity embedding of the pattern
        // onto the ascending GPU list (the embedding chosen by a policy is
        // already canonicalised to its sorted vertex set).
        let embedding = mapa_isomorph::Embedding::new(gpus.to_vec());
        let (free_graph, free_map) = self.state.available_graph();
        MatchScore {
            aggregated_bw: scoring::aggregated_bandwidth(
                &pattern,
                &self.bandwidth_graph,
                &embedding,
            ),
            predicted_eff_bw: scoring::predicted_effective_bandwidth(
                &self.model,
                &self.topology,
                gpus,
            ),
            preserved_bw: scoring::preserved_bandwidth(&free_graph, &free_map, gpus),
            link_mix: scoring::allocation_link_mix(&self.topology, gpus),
        }
    }

    /// Releases a finished job's GPUs (§3.6 deallocation).
    ///
    /// # Errors
    /// Fails when the job is not active.
    pub fn release(&mut self, job_id: u64) -> Result<Vec<usize>, AllocatorError> {
        let gpus = self.state.deallocate(job_id)?;
        self.active.remove(&job_id);
        Ok(gpus)
    }

    /// Plans a preemption that would make `job` placeable: the victim ids
    /// to evict, in eviction order, chosen per `policy` among active jobs
    /// with **strictly lower priority** than `job` and not in `shielded`
    /// (the caller's do-not-evict set: previously-preempted jobs, gang
    /// members). The plan is verified — victims are trially deallocated
    /// and the policy's [`MapaAllocator::peek`] re-run after each — and
    /// then **fully rolled back**: this method never changes occupancy.
    /// Commit a returned plan with [`MapaAllocator::evict`].
    ///
    /// Returns `None` when `policy` is [`PreemptionPolicy::None`], the
    /// request is impossible for this machine, or no eligible victim set
    /// unblocks the job. Returns `Some(vec![])` when the job is placeable
    /// without evictions (nothing to do).
    pub fn preemption_plan(
        &mut self,
        job: &JobSpec,
        policy: PreemptionPolicy,
        shielded: &HashSet<u64>,
    ) -> Option<Vec<u64>> {
        if !policy.enabled() || job.num_gpus() == 0 || job.num_gpus() > self.topology.gpu_count() {
            return None;
        }
        // Victim preference order: lowest priority first, then the
        // youngest allocation (least progress lost), then highest id.
        let mut candidates: Vec<(u64, ActiveJob)> = self
            .active
            .iter()
            .filter(|(id, meta)| {
                meta.priority < job.priority
                    && !shielded.contains(id)
                    && (policy != PreemptionPolicy::SensitivityAwareEvict
                        || !meta.bandwidth_sensitive)
            })
            .map(|(&id, &meta)| (id, meta))
            .collect();
        candidates.sort_by_key(|&(id, meta)| {
            (
                meta.priority,
                std::cmp::Reverse(meta.seq),
                std::cmp::Reverse(id),
            )
        });
        // Trial evictions with full rollback: deallocate victims one at a
        // time until the policy can place the job, remembering each
        // victim's GPUs so occupancy can be restored exactly.
        let placeable = |a: &mut Self| {
            a.state.free_count() >= job.num_gpus() && matches!(a.peek(job), Ok(Some(_)))
        };
        let mut evicted: Vec<(u64, Vec<usize>, ActiveJob)> = Vec::new();
        let mut plan = None;
        if placeable(self) {
            plan = Some(Vec::new());
        } else {
            for (id, meta) in candidates {
                let gpus = self.state.deallocate(id).expect("active job is allocated");
                self.active.remove(&id);
                evicted.push((id, gpus, meta));
                if placeable(self) {
                    plan = Some(evicted.iter().map(|(id, _, _)| *id).collect());
                    break;
                }
            }
        }
        // Roll back: re-allocate every trial victim on its exact GPUs and
        // restore its metadata (original allocation order included).
        for (id, gpus, meta) in evicted.into_iter().rev() {
            self.state
                .allocate(id, &gpus)
                .expect("rollback re-allocates freed GPUs");
            self.active.insert(id, meta);
        }
        plan
    }

    /// Commits a preemption plan: releases every victim's GPUs. The
    /// caller (the simulation engine) owns the rest of the contract —
    /// requeueing the victims, charging the checkpoint/restore penalty,
    /// and never evicting the same job twice.
    ///
    /// # Panics
    /// Panics if any victim is not an active job — plans must be applied
    /// to the state they were computed against.
    pub fn evict(&mut self, victims: &[u64]) {
        for &id in victims {
            self.release(id)
                .expect("preemption victim is an active job");
        }
    }

    /// Priority recorded for an active job, if it is running here.
    #[must_use]
    pub fn active_priority(&self, job_id: u64) -> Option<u8> {
        self.active.get(&job_id).map(|meta| meta.priority)
    }
}

impl fmt::Debug for MapaAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapaAllocator")
            .field("topology", &self.topology.name())
            .field("policy", &self.policy.name())
            .field("free", &self.state.free_count())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BaselinePolicy, GreedyPolicy, PreservePolicy};
    use mapa_topology::machines;
    use mapa_workloads::Workload;

    fn job(id: u64, n: usize, sensitive: bool) -> JobSpec {
        JobSpec::new(id, mapa_workloads::GpuDemand::Whole(n), Workload::Vgg16)
            .with_bandwidth_sensitive(sensitive)
            .with_iterations(100)
    }

    #[test]
    fn allocate_release_cycle() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        let out = a.try_allocate(&job(1, 3, true)).unwrap().unwrap();
        assert_eq!(out.gpus.len(), 3);
        assert_eq!(a.state().free_count(), 5);
        assert!(out.score.predicted_eff_bw > 0.0);
        let released = a.release(1).unwrap();
        assert_eq!(released, out.gpus);
        assert_eq!(a.state().free_count(), 8);
    }

    #[test]
    fn exhaustion_returns_none_not_error() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        a.try_allocate(&job(1, 5, true)).unwrap().unwrap();
        a.try_allocate(&job(2, 3, true)).unwrap().unwrap();
        assert_eq!(a.try_allocate(&job(3, 1, true)).unwrap(), None);
        a.release(2).unwrap();
        assert!(a.try_allocate(&job(3, 1, true)).unwrap().is_some());
    }

    #[test]
    fn invalid_requests_are_errors() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        assert!(matches!(
            a.try_allocate(&job(1, 0, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
        assert!(matches!(
            a.try_allocate(&job(1, 9, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
        a.try_allocate(&job(7, 2, true)).unwrap().unwrap();
        assert!(matches!(
            a.try_allocate(&job(7, 2, true)),
            Err(AllocatorError::State(AllocationError::JobExists(7)))
        ));
    }

    #[test]
    fn outcome_scores_are_consistent() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(GreedyPolicy));
        let out = a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        // Greedy 2-GPU ring lands on a double NVLink: AggBW 50.
        assert_eq!(out.score.aggregated_bw, 50.0);
        assert_eq!(out.score.link_mix.double_nvlink, 1);
        assert!(out.score.preserved_bw > 0.0);
        assert!(out.scheduling_overhead < Duration::from_secs(1));
    }

    #[test]
    fn uniform_machine_falls_back_to_paper_model() {
        // DGX-2 has one unique link mix per job size — too few samples to
        // fit; construction must still succeed via Table 2 fallback.
        let a = MapaAllocator::new(machines::dgx2(), Box::new(PreservePolicy));
        let mix = mapa_topology::LinkMix {
            double_nvlink: 1,
            single_nvlink: 0,
            pcie: 0,
        };
        assert!(a.model().predict(&mix) > 0.0);
    }

    #[test]
    fn release_unknown_job_fails() {
        let mut a = MapaAllocator::new(machines::summit(), Box::new(BaselinePolicy));
        assert!(a.release(42).is_err());
    }

    #[test]
    fn cached_allocator_hits_on_recurring_states() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        // Same job shape against the idle machine, released in between:
        // the occupancy signature recurs, so reps 2.. are cache hits.
        let mut placements = Vec::new();
        for rep in 0..4u64 {
            let out = a.try_allocate(&job(rep + 1, 3, true)).unwrap().unwrap();
            placements.push(out.gpus.clone());
            a.release(rep + 1).unwrap();
        }
        assert!(placements.windows(2).all(|w| w[0] == w[1]));
        let stats = a.cache_stats().expect("cache enabled");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert!(stats.hit_rate() > 0.74);
    }

    #[test]
    fn release_rotates_cache_key_so_stale_hits_are_impossible() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        // Occupy GPUs so the state differs from idle, then place a job.
        let first = a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        let second = a.try_allocate(&job(2, 2, true)).unwrap().unwrap();
        assert_ne!(first.gpus, second.gpus, "states differ → keys differ");
        // After releasing job 1 the occupancy is new (job 2 still holds
        // its GPUs): the next identical request must be a miss, not a
        // stale idle-state hit that would hand out busy GPUs.
        a.release(1).unwrap();
        let third = a.try_allocate(&job(3, 2, true)).unwrap().unwrap();
        assert!(third.gpus.iter().all(|&g| !second.gpus.contains(&g)));
        let stats = a.cache_stats().unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn cached_and_uncached_paths_agree_with_interleaved_releases() {
        let mut cached = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        let mut plain = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        let stream = [
            (1u64, 2usize, true),
            (2, 3, false),
            (3, 2, true), // same shape as job 1, different occupancy
            (4, 1, false),
        ];
        let mut held = Vec::new();
        for &(id, n, sensitive) in &stream {
            let a = cached.try_allocate(&job(id, n, sensitive)).unwrap();
            let b = plain.try_allocate(&job(id, n, sensitive)).unwrap();
            assert_eq!(
                a.as_ref().map(|o| &o.gpus),
                b.as_ref().map(|o| &o.gpus),
                "cached and uncached disagree on job {id}"
            );
            if a.is_some() {
                held.push(id);
            }
            if id == 2 {
                cached.release(1).unwrap();
                plain.release(1).unwrap();
                held.retain(|&j| j != 1);
            }
        }
        for id in held {
            assert_eq!(cached.release(id).unwrap(), plain.release(id).unwrap());
        }
    }

    #[test]
    fn set_matcher_invalidates_cached_decisions() {
        use mapa_isomorph::{MatchOptions, Matcher};
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        a.release(1).unwrap();
        // The idle-state decision is cached; swapping the matcher must
        // drop it (a different backend/cap could select differently), so
        // the repeat is a fresh miss, not a stale hit.
        a.set_matcher(Matcher::new(MatchOptions::parallel()));
        a.try_allocate(&job(2, 2, true)).unwrap().unwrap();
        let stats = a.cache_stats().unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn peek_previews_without_state_transition() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .with_config(AllocatorConfig::cached());
        let j = job(1, 3, true);
        let (gpus, score) = a.peek(&j).unwrap().expect("idle machine places");
        assert_eq!(a.state().free_count(), 8, "peek must not allocate");
        assert!(score.predicted_eff_bw > 0.0);
        // The real allocation answers from the cache and picks the same
        // GPUs the preview promised.
        let out = a.try_allocate(&j).unwrap().unwrap();
        assert_eq!(out.gpus, gpus);
        assert_eq!(out.score, score);
        let stats = a.cache_stats().unwrap();
        assert_eq!(stats.hits, 1, "peek primed the cache for the allocation");
        // Once the machine is full for this size, peek reports None.
        a.try_allocate(&job(2, 5, true)).unwrap().unwrap();
        assert_eq!(a.peek(&job(3, 2, true)).unwrap(), None);
        assert!(matches!(
            a.peek(&job(4, 9, true)),
            Err(AllocatorError::InvalidRequest { .. })
        ));
    }

    fn pri_job(id: u64, n: usize, sensitive: bool, priority: u8) -> JobSpec {
        job(id, n, sensitive).with_priority(priority)
    }

    #[test]
    fn preemption_plan_picks_lowest_priority_youngest_victims() {
        use crate::preempt::PreemptionPolicy;
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        a.try_allocate(&pri_job(1, 3, false, 0)).unwrap().unwrap();
        a.try_allocate(&pri_job(2, 3, false, 1)).unwrap().unwrap();
        a.try_allocate(&pri_job(3, 2, false, 0)).unwrap().unwrap();
        // A priority-2 job needing 4 GPUs: jobs 1 and 3 are priority-0
        // candidates; job 3 is younger, so it goes first, but alone frees
        // only 2 GPUs — job 1 follows.
        let plan = a
            .preemption_plan(
                &pri_job(9, 4, true, 2),
                PreemptionPolicy::PriorityEvict,
                &HashSet::new(),
            )
            .expect("two priority-0 victims suffice");
        assert_eq!(plan, vec![3, 1]);
        // Planning never changes occupancy.
        assert_eq!(a.state().free_count(), 0);
        assert!(a.active_priority(1).is_some());
        // Committing does.
        a.evict(&plan);
        assert_eq!(a.state().free_count(), 5);
        assert!(a.active_priority(1).is_none());
        assert!(a.try_allocate(&pri_job(9, 4, true, 2)).unwrap().is_some());
    }

    #[test]
    fn preemption_respects_priority_shield_and_policy_off() {
        use crate::preempt::PreemptionPolicy;
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        a.try_allocate(&pri_job(1, 5, false, 1)).unwrap().unwrap();
        a.try_allocate(&pri_job(2, 3, false, 0)).unwrap().unwrap();
        let urgent = pri_job(9, 6, true, 2);
        // Policy off → no plan, ever.
        assert_eq!(
            a.preemption_plan(&urgent, PreemptionPolicy::None, &HashSet::new()),
            None
        );
        // Evicting job 2 (3 GPUs) is not enough for 6 GPUs, and job 1
        // (priority 1 < 2) plus job 2 would be — but shield job 1 and the
        // plan must fail rather than evict a protected job.
        let shielded: HashSet<u64> = [1].into_iter().collect();
        assert_eq!(
            a.preemption_plan(&urgent, PreemptionPolicy::PriorityEvict, &shielded),
            None
        );
        assert_eq!(a.state().free_count(), 0, "failed plans roll back too");
        // Unshielded, both fall: lowest priority first.
        let plan = a
            .preemption_plan(&urgent, PreemptionPolicy::PriorityEvict, &HashSet::new())
            .unwrap();
        assert_eq!(plan, vec![2, 1]);
        // Equal priority is never preempted: a priority-1 arrival has
        // only job 2 (priority 0) as a candidate, which is not enough.
        assert!(a
            .preemption_plan(
                &pri_job(9, 6, true, 1),
                PreemptionPolicy::PriorityEvict,
                &HashSet::new()
            )
            .is_none());
    }

    #[test]
    fn sensitivity_aware_eviction_shields_sensitive_jobs() {
        use crate::preempt::PreemptionPolicy;
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        a.try_allocate(&pri_job(1, 4, true, 0)).unwrap().unwrap();
        a.try_allocate(&pri_job(2, 4, false, 0)).unwrap().unwrap();
        let urgent = pri_job(9, 4, true, 1);
        // Sensitivity-aware: only the insensitive job 2 is a candidate.
        let plan = a
            .preemption_plan(
                &urgent,
                PreemptionPolicy::SensitivityAwareEvict,
                &HashSet::new(),
            )
            .unwrap();
        assert_eq!(plan, vec![2]);
        // An 8-GPU urgent job would need both; sensitivity-aware refuses.
        assert_eq!(
            a.preemption_plan(
                &pri_job(9, 8, true, 1),
                PreemptionPolicy::SensitivityAwareEvict,
                &HashSet::new()
            ),
            None
        );
        // Plain priority eviction would take both (job 2 younger, first).
        let both = a
            .preemption_plan(
                &pri_job(9, 8, true, 1),
                PreemptionPolicy::PriorityEvict,
                &HashSet::new(),
            )
            .unwrap();
        assert_eq!(both, vec![2, 1]);
    }

    #[test]
    fn placeable_job_needs_no_evictions() {
        use crate::preempt::PreemptionPolicy;
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
        a.try_allocate(&pri_job(1, 2, false, 0)).unwrap().unwrap();
        let plan = a
            .preemption_plan(
                &pri_job(9, 3, true, 1),
                PreemptionPolicy::PriorityEvict,
                &HashSet::new(),
            )
            .unwrap();
        assert!(plan.is_empty(), "room exists; nothing to evict");
    }

    #[test]
    fn config_toggling_drops_and_recreates_cache() {
        let mut a = MapaAllocator::new(machines::dgx1_v100(), Box::new(BaselinePolicy));
        assert!(a.cache_stats().is_none());
        a.apply_config(&AllocatorConfig {
            cached: true,
            cache_capacity: 8,
        });
        a.try_allocate(&job(1, 2, true)).unwrap().unwrap();
        assert_eq!(a.cache_stats().unwrap().misses, 1);
        // Re-applying the cached config keeps counters and entries.
        a.apply_config(&AllocatorConfig::cached());
        assert_eq!(a.cache_stats().unwrap().misses, 1);
        a.apply_config(&AllocatorConfig::default());
        assert!(a.cache_stats().is_none());
    }
}
