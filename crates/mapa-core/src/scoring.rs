//! Pattern scoring (paper §3.4–§3.5).
//!
//! Three scores rank a candidate match `M` of application pattern `P`:
//!
//! * **Aggregated Bandwidth** (Eq. 1): `Σ w(e)` over the hardware links the
//!   *application actually uses* — the images of `P`'s edges.
//! * **Predicted Effective Bandwidth** (Eq. 2): the regression model over
//!   the match's link mix `(x, y, z)`.
//! * **Preserved Bandwidth** (Eq. 3): `Σ w(e)` over the hardware graph that
//!   *remains* after deleting the matched vertices — what future jobs can
//!   still get.
//!
//! On MIG-partitioned machines a fourth term joins the ranking:
//! **co-residency pressure** ([`co_residency_pressure`]) — how many busy
//! slices already share the candidate vertices' physical GPUs. Slices on
//! one die contend for the same external links and memory bandwidth
//! (MoCA's framing), so policies subtract a pressure penalty from their
//! primary score, weighted heavier for SLO-tagged tenants
//! ([`pressure_penalty`]). On unpartitioned machines both terms are
//! exactly zero, leaving the paper's rankings bit-identical.

use mapa_graph::{BitSet, Graph, PatternGraph, WeightedGraph};
use mapa_isomorph::Embedding;
use mapa_model::EffBwModel;
use mapa_topology::{HardwareState, LinkMix, Topology};
use mapa_workloads::JobSpec;

/// All scores for one candidate match, as used by the policies and logged
/// by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchScore {
    /// Eq. 1: aggregated bandwidth over used links (GB/s).
    pub aggregated_bw: f64,
    /// Eq. 2: predicted effective bandwidth from the link mix (GB/s).
    pub predicted_eff_bw: f64,
    /// Eq. 3: bandwidth remaining for future jobs after this allocation
    /// (GB/s), over the currently-free portion of the machine.
    pub preserved_bw: f64,
    /// The `(x, y, z)` link mix of the allocation (all pairs inside it).
    pub link_mix: LinkMix,
}

/// Eq. 1 — Aggregated Bandwidth: sum of hardware bandwidths over the
/// pattern's edges under `embedding` (pattern vertex `p` placed on
/// hardware vertex `embedding.image(p)`).
#[must_use]
pub fn aggregated_bandwidth(
    pattern: &PatternGraph,
    hardware: &WeightedGraph,
    embedding: &Embedding,
) -> f64 {
    embedding.mapped_edge_weight(pattern, hardware)
}

/// The `(x, y, z)` link mix of an allocation — every GPU pair inside the
/// matched vertex set, mirroring the corpus protocol of §3.4.3.
#[must_use]
pub fn allocation_link_mix(topology: &Topology, gpus: &[usize]) -> LinkMix {
    let mut pairs = Vec::new();
    for i in 0..gpus.len() {
        for j in (i + 1)..gpus.len() {
            pairs.push((gpus[i], gpus[j]));
        }
    }
    topology.link_mix(&pairs)
}

/// Eq. 2 — Predicted Effective Bandwidth of allocating `gpus`.
///
/// 1-GPU allocations have no inter-GPU traffic: scored 0.
#[must_use]
pub fn predicted_effective_bandwidth(
    model: &EffBwModel,
    topology: &Topology,
    gpus: &[usize],
) -> f64 {
    if gpus.len() < 2 {
        return 0.0;
    }
    model.predict(&allocation_link_mix(topology, gpus))
}

/// Eq. 3 — Preserved Bandwidth: total link bandwidth of the hardware graph
/// induced by the *free* vertices that remain if `gpus` are allocated.
///
/// `free_graph` is the currently-available hardware graph (complete over
/// free GPUs) and `free_map` maps its vertex ids to physical GPU ids —
/// both as produced by `HardwareState::available_graph`.
///
/// # Panics
/// Panics if some `gpus` entry is not in `free_map` (allocating a busy
/// GPU is a state error upstream).
#[must_use]
pub fn preserved_bandwidth(free_graph: &WeightedGraph, free_map: &[usize], gpus: &[usize]) -> f64 {
    let mut removed = BitSet::new(free_graph.vertex_count());
    for &g in gpus {
        let local = free_map
            .iter()
            .position(|&phys| phys == g)
            .expect("allocated GPU must be free");
        removed.insert(local);
    }
    let (remaining, _) = free_graph.without_vertices(&removed);
    remaining.total_weight()
}

/// Computes all three scores for a candidate embedding.
///
/// `pattern` is the application graph; `embedding` maps it into
/// `free_graph` (local vertex ids); `free_map` translates local ids to
/// physical GPUs.
#[must_use]
pub fn score_match(
    topology: &Topology,
    model: &EffBwModel,
    pattern: &PatternGraph,
    free_graph: &WeightedGraph,
    free_map: &[usize],
    embedding: &Embedding,
) -> MatchScore {
    let physical: Vec<usize> = embedding.as_slice().iter().map(|&l| free_map[l]).collect();
    MatchScore {
        aggregated_bw: aggregated_bandwidth(pattern, free_graph, embedding),
        predicted_eff_bw: predicted_effective_bandwidth(model, topology, &physical),
        preserved_bw: preserved_bandwidth(free_graph, free_map, &physical),
        link_mix: allocation_link_mix(topology, &physical),
    }
}

/// The complete graph over all GPUs as an unweighted pattern — the data
/// graph handed to the matcher (§3.2: hardware graphs are complete).
#[must_use]
pub fn matcher_data_graph(topology: &Topology) -> PatternGraph {
    Graph::complete(topology.gpu_count(), ())
}

/// Penalty in GB/s per busy co-resident slice for untagged jobs.
pub const PRESSURE_WEIGHT: f64 = 2.0;

/// Penalty in GB/s per busy co-resident slice for SLO-tagged jobs —
/// heavier, so placement spreads latency-critical tenants away from
/// saturated physical GPUs first.
pub const SLO_PRESSURE_WEIGHT: f64 = 6.0;

/// Co-residency / interference pressure of placing on `gpus`: the total
/// number of *busy* slices sharing a physical GPU with any candidate
/// vertex. Exactly `0.0` on unpartitioned machines, so the paper's
/// rankings are untouched there.
#[must_use]
pub fn co_residency_pressure(state: &HardwareState, gpus: &[usize]) -> f64 {
    gpus.iter().map(|&v| state.co_resident_busy(v) as f64).sum()
}

/// The pressure penalty a policy subtracts from its primary score:
/// [`co_residency_pressure`] weighted by [`SLO_PRESSURE_WEIGHT`] for
/// SLO-tagged jobs and [`PRESSURE_WEIGHT`] otherwise.
#[must_use]
pub fn pressure_penalty(job: &JobSpec, state: &HardwareState, gpus: &[usize]) -> f64 {
    let weight = if job.has_slo() {
        SLO_PRESSURE_WEIGHT
    } else {
        PRESSURE_WEIGHT
    };
    weight * co_residency_pressure(state, gpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_graph::PatternGraph;
    use mapa_model::{corpus, EffBwModel};
    use mapa_topology::machines;

    fn dgx_model() -> EffBwModel {
        let dgx = machines::dgx1_v100();
        EffBwModel::fit(&corpus::build_corpus(&dgx, 2..=5)).unwrap()
    }

    #[test]
    fn fig10_aggregated_bandwidth_example() {
        // Fig. 10 / §2.2: a 3-GPU triangle on {GPU0, GPU1, GPU4}
        // aggregates 25 + 50 + 12 = 87 GB/s.
        let dgx = machines::dgx1_v100();
        let hw = dgx.bandwidth_graph();
        let pattern = PatternGraph::all_to_all(3);
        let e = Embedding::new(vec![0, 1, 4]);
        assert_eq!(aggregated_bandwidth(&pattern, &hw, &e), 87.0);
        // Ideal {0,2,3} = 125 GB/s.
        let ideal = Embedding::new(vec![0, 2, 3]);
        assert_eq!(aggregated_bandwidth(&pattern, &hw, &ideal), 125.0);
    }

    #[test]
    fn aggregated_bandwidth_depends_on_embedding_not_just_set() {
        // A chain 0-1-2 placed on {0,1,4}: orientation decides which two of
        // the three links are used.
        let dgx = machines::dgx1_v100();
        let hw = dgx.bandwidth_graph();
        let chain = PatternGraph::chain(3);
        // 0-1 (25) + 1-4 (12) = 37.
        let a = aggregated_bandwidth(&chain, &hw, &Embedding::new(vec![0, 1, 4]));
        // 1-0 (25) + 0-4 (50) = 75.
        let b = aggregated_bandwidth(&chain, &hw, &Embedding::new(vec![1, 0, 4]));
        assert_eq!(a, 37.0);
        assert_eq!(b, 75.0);
    }

    #[test]
    fn preserved_bandwidth_on_idle_machine() {
        // Fig. 10 (right): allocating {0,1,3} on DGX-1V leaves
        // {2,4,5,6,7}; preserved BW is that induced subgraph's weight.
        let dgx = machines::dgx1_v100();
        let free = dgx.bandwidth_graph();
        let map: Vec<usize> = (0..8).collect();
        let preserved = preserved_bandwidth(&free, &map, &[0, 1, 3]);
        // Induced {2,4,5,6,7}: NVLinks 2-6(25), 4-5(25), 4-6(25), 4-7(50),
        // 5-6(50), 5-7(25), 6-7(50) = 250; PCIe pairs: C(5,2)=10 pairs,
        // 3 PCIe (2-4, 2-5, 2-7) = 36. Total 286.
        assert_eq!(preserved, 286.0);
        // Allocating everything preserves nothing.
        assert_eq!(preserved_bandwidth(&free, &map, &map), 0.0);
        // Allocating nothing preserves the full graph.
        assert_eq!(preserved_bandwidth(&free, &map, &[]), free.total_weight());
    }

    #[test]
    fn preserved_bandwidth_respects_partial_occupancy() {
        // With GPUs 6,7 already busy, the free graph has 6 vertices;
        // allocating {0,1} preserves the induced {2,3,4,5} subgraph.
        let dgx = machines::dgx1_v100();
        let mut state = mapa_topology::HardwareState::new(dgx);
        state.allocate(99, &[6, 7]).unwrap();
        let (free, map) = state.available_graph();
        assert_eq!(map, vec![0, 1, 2, 3, 4, 5]);
        let p = preserved_bandwidth(&free, &map, &[0, 1]);
        // Induced {2,3,4,5}: NVLink 2-3 (50), 4-5 (25); PCIe ×4 = 48.
        assert_eq!(p, 123.0);
    }

    #[test]
    fn predicted_effbw_single_gpu_is_zero() {
        let dgx = machines::dgx1_v100();
        let model = dgx_model();
        assert_eq!(predicted_effective_bandwidth(&model, &dgx, &[3]), 0.0);
        assert!(predicted_effective_bandwidth(&model, &dgx, &[0, 3]) > 30.0);
    }

    #[test]
    fn score_match_translates_local_ids() {
        let dgx = machines::dgx1_v100();
        let model = dgx_model();
        let mut state = mapa_topology::HardwareState::new(dgx.clone());
        state.allocate(1, &[0, 2]).unwrap();
        let (free, map) = state.available_graph();
        // Pattern: 2-GPU ring on local vertices (1, 3) = physical (3, 5).
        let pattern = PatternGraph::ring(2);
        let e = Embedding::new(vec![1, 3]);
        let score = score_match(&dgx, &model, &pattern, &free, &map, &e);
        assert_eq!(score.aggregated_bw, dgx.bandwidth(3, 5));
        assert_eq!(score.link_mix.total(), 1);
        assert!(score.preserved_bw > 0.0);
    }

    #[test]
    #[should_panic(expected = "must be free")]
    fn preserved_bandwidth_rejects_busy_gpu() {
        let dgx = machines::dgx1_v100();
        let mut state = mapa_topology::HardwareState::new(dgx);
        state.allocate(1, &[0]).unwrap();
        let (free, map) = state.available_graph();
        let _ = preserved_bandwidth(&free, &map, &[0]);
    }

    #[test]
    fn matcher_data_graph_is_complete() {
        let dgx = machines::dgx1_v100();
        let g = matcher_data_graph(&dgx);
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 28);
    }

    #[test]
    fn pressure_is_zero_on_unpartitioned_machines() {
        let dgx = machines::dgx1_v100();
        let mut state = mapa_topology::HardwareState::new(dgx);
        state.allocate(1, &[0, 1, 2]).unwrap();
        assert_eq!(co_residency_pressure(&state, &[3, 4]), 0.0);
        let job = mapa_workloads::JobSpec::new(
            1,
            mapa_workloads::GpuDemand::Slices(2),
            mapa_workloads::Workload::BertServing,
        )
        .with_slo(50.0);
        assert_eq!(pressure_penalty(&job, &state, &[3, 4]), 0.0);
    }

    #[test]
    fn pressure_counts_busy_co_residents_and_weights_slo() {
        use mapa_topology::PartitionPlan;
        use mapa_workloads::{GpuDemand, Workload};
        // GPU 0 → 4 slices (vertices 0..4), rest whole (4..=10).
        let topo = PartitionPlan::new()
            .split(0, 4)
            .apply(&machines::dgx1_v100())
            .into_topology();
        let mut state = mapa_topology::HardwareState::new(topo);
        state.allocate(1, &[0, 1]).unwrap();
        // Placing on free slices 2 and 3: each sees 2 busy co-residents.
        assert_eq!(co_residency_pressure(&state, &[2, 3]), 4.0);
        // A whole vertex sees none.
        assert_eq!(co_residency_pressure(&state, &[5]), 0.0);
        let plain = JobSpec::new(9, GpuDemand::Slices(2), Workload::ResNetServing);
        let tagged = plain.clone().with_slo(25.0);
        assert_eq!(pressure_penalty(&plain, &state, &[2, 3]), 8.0);
        assert_eq!(pressure_penalty(&tagged, &state, &[2, 3]), 24.0);
    }
}
