//! MAPA — Multi-Accelerator Pattern Allocation (the paper's §3).
//!
//! The framework pipeline of the paper's Fig. 7, end to end:
//!
//! 1. **Application topology** ([`appgraph`]): a job's communication
//!    pattern becomes a small pattern graph (ring/tree/… of Fig. 8).
//! 2. **Hardware topology** (`mapa-topology`): the server is a complete
//!    weighted graph (PCIe fallback everywhere).
//! 3. **Pattern matching** (`mapa-isomorph`): mine the free portion of the
//!    hardware graph for embeddings of the application pattern.
//! 4. **Pattern scoring** ([`scoring`]): Aggregated Bandwidth (Eq. 1),
//!    Predicted Effective Bandwidth (Eq. 2), Preserved Bandwidth (Eq. 3).
//! 5. **Pattern selection** ([`policy`]): Baseline, Topo-aware, Greedy, and
//!    the paper's Preserve policy (Algorithm 1).
//! 6. **State management** ([`MapaAllocator`]): allocate on job start, restore
//!    on job finish (§3.6), with an optional canonical-state decision
//!    cache ([`cache`]) memoizing selections across identical job shapes
//!    and recurring occupancy states.
//! 7. **Preemption** ([`preempt`]): when a high-priority arrival finds no
//!    feasible pattern, a [`PreemptionPolicy`] plans which running
//!    low-priority jobs to vacate ([`MapaAllocator::preemption_plan`] —
//!    verified by trial eviction, then rolled back) and
//!    [`MapaAllocator::evict`] commits; the simulation layer requeues the
//!    victims and charges the checkpoint/restore penalty
//!    (see `docs/SCHEDULING.md`).
//!
//! # Example
//!
//! ```
//! use mapa_core::{MapaAllocator, PreemptionPolicy, policy::PreservePolicy};
//! use mapa_topology::machines;
//! use mapa_workloads::generator;
//! use std::collections::HashSet;
//!
//! let mut alloc = MapaAllocator::new(machines::dgx1_v100(), Box::new(PreservePolicy));
//! let jobs = generator::paper_job_mix(42);
//! let result = alloc.try_allocate(&jobs[0]).unwrap().expect("idle machine fits job");
//! assert_eq!(result.gpus.len(), jobs[0].num_gpus());
//!
//! // A full machine + a priority-1 arrival: plan who would be evicted.
//! let urgent = jobs[1]
//!     .clone()
//!     .with_priority(1)
//!     .with_demand(mapa_workloads::GpuDemand::Whole(8)); // needs the whole server
//! let plan = alloc
//!     .preemption_plan(&urgent, PreemptionPolicy::PriorityEvict, &HashSet::new())
//!     .expect("a lower-priority victim exists");
//! assert_eq!(plan, vec![jobs[0].id]);
//! alloc.release(jobs[0].id).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
pub mod appgraph;
pub mod cache;
pub mod fragmentation;
pub mod policy;
pub mod preempt;
pub mod scoring;

pub use allocator::{AllocationOutcome, AllocatorConfig, AllocatorError, MapaAllocator};
pub use cache::{AllocationCache, CacheStats};
pub use policy::{
    allocation_policy_by_name, AllocationPolicy, PolicyContext, ALLOCATION_POLICY_NAMES,
};
pub use preempt::{preemption_policy_by_name, PreemptionPolicy, PREEMPTION_POLICY_NAMES};
