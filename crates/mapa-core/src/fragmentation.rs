//! Fragmentation analysis (paper §2.2, Fig. 4).
//!
//! The paper quantifies allocation quality as
//! `BW_Allocated / BW_IdealAllocation`: the aggregate bandwidth of what a
//! job received versus the best possible same-size allocation on an idle
//! machine (the §2.2 example: {GPU0, GPU1, GPU4} aggregates 87 GB/s versus
//! the ideal 125 GB/s for 3 GPUs on DGX-1V).

use mapa_model::corpus::combinations;
use mapa_topology::Topology;

/// Aggregate bandwidth of an allocation: the sum over all GPU pairs inside
/// it (the complete matching pattern, as in the §2.2 worked example).
#[must_use]
pub fn aggregate_bandwidth(topology: &Topology, gpus: &[usize]) -> f64 {
    let mut total = 0.0;
    for i in 0..gpus.len() {
        for j in (i + 1)..gpus.len() {
            total += topology.bandwidth(gpus[i], gpus[j]);
        }
    }
    total
}

/// The best aggregate bandwidth achievable by any `k`-GPU allocation on an
/// idle machine — the denominator of the Fig. 4 quality ratio.
///
/// Returns 0 for `k < 2` (no links to aggregate).
#[must_use]
pub fn ideal_aggregate_bandwidth(topology: &Topology, k: usize) -> f64 {
    if k < 2 {
        return 0.0;
    }
    combinations(topology.gpu_count(), k)
        .into_iter()
        .map(|combo| aggregate_bandwidth(topology, &combo))
        .fold(0.0, f64::max)
}

/// The Fig. 4 quality metric `BW_Allocated / BW_IdealAllocation`.
///
/// Defined as 1.0 for 1-GPU allocations (no bandwidth at stake).
#[must_use]
pub fn allocation_quality(topology: &Topology, gpus: &[usize]) -> f64 {
    if gpus.len() < 2 {
        return 1.0;
    }
    aggregate_bandwidth(topology, gpus) / ideal_aggregate_bandwidth(topology, gpus.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_topology::machines;

    #[test]
    fn paper_worked_example() {
        let dgx = machines::dgx1_v100();
        assert_eq!(aggregate_bandwidth(&dgx, &[0, 1, 4]), 87.0);
        assert_eq!(ideal_aggregate_bandwidth(&dgx, 3), 125.0);
        assert!((allocation_quality(&dgx, &[0, 1, 4]) - 87.0 / 125.0).abs() < 1e-12);
        // The ideal allocation itself scores 1.0.
        assert!((allocation_quality(&dgx, &[0, 2, 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quality_is_bounded() {
        let dgx = machines::dgx1_v100();
        for k in 2..=5 {
            for combo in mapa_model::corpus::combinations(8, k) {
                let q = allocation_quality(&dgx, &combo);
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&q),
                    "quality {q} out of range for {combo:?}"
                );
            }
        }
    }

    #[test]
    fn single_gpu_quality_is_one() {
        let dgx = machines::dgx1_v100();
        assert_eq!(allocation_quality(&dgx, &[5]), 1.0);
        assert_eq!(ideal_aggregate_bandwidth(&dgx, 1), 0.0);
        assert_eq!(ideal_aggregate_bandwidth(&dgx, 0), 0.0);
    }

    #[test]
    fn uniform_machine_has_no_fragmentation() {
        let dgx2 = machines::dgx2();
        for k in 2..=5 {
            // Every allocation on an NVSwitch machine is ideal.
            let q = allocation_quality(&dgx2, &(0..k).collect::<Vec<_>>());
            assert!((q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ideal_grows_with_job_size() {
        let dgx = machines::dgx1_v100();
        let mut prev = 0.0;
        for k in 2..=6 {
            let ideal = ideal_aggregate_bandwidth(&dgx, k);
            assert!(ideal > prev);
            prev = ideal;
        }
    }
}
