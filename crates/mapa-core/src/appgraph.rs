//! Application pattern graphs (paper §3.1, Fig. 8).
//!
//! A job's inter-GPU communication pattern becomes an unweighted pattern
//! graph: NCCL collectives produce rings or trees (or their union when the
//! transfer-size mix uses both); unknown/implicit communication falls back
//! to all-to-all, the conservative choice §3.1 mentions for Unified-Memory
//! style workloads.

use mapa_graph::PatternGraph;
use mapa_workloads::{AppTopology, JobSpec};

/// Builds the application pattern graph for `n_gpus` communicating with
/// `topology` semantics.
#[must_use]
pub fn build_pattern(topology: AppTopology, n_gpus: usize) -> PatternGraph {
    match topology {
        AppTopology::Ring => PatternGraph::ring(n_gpus),
        AppTopology::Tree => PatternGraph::binary_tree(n_gpus),
        AppTopology::RingTree => PatternGraph::ring_tree(n_gpus),
        AppTopology::AllToAll => PatternGraph::all_to_all(n_gpus),
    }
}

/// The pattern graph for a job spec.
#[must_use]
pub fn job_pattern(job: &JobSpec) -> PatternGraph {
    build_pattern(job.topology, job.num_gpus())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_workloads::network::Workload;

    #[test]
    fn pattern_shapes() {
        assert_eq!(build_pattern(AppTopology::Ring, 5).edge_count(), 5);
        assert_eq!(build_pattern(AppTopology::Tree, 5).edge_count(), 4);
        assert_eq!(build_pattern(AppTopology::AllToAll, 5).edge_count(), 10);
        let rt = build_pattern(AppTopology::RingTree, 5);
        assert!(rt.edge_count() >= 5);
    }

    #[test]
    fn degenerate_sizes() {
        for t in [
            AppTopology::Ring,
            AppTopology::Tree,
            AppTopology::RingTree,
            AppTopology::AllToAll,
        ] {
            assert_eq!(build_pattern(t, 1).vertex_count(), 1);
            assert_eq!(build_pattern(t, 1).edge_count(), 0);
            assert_eq!(build_pattern(t, 0).vertex_count(), 0);
            // 2-GPU jobs always communicate over one edge.
            assert_eq!(build_pattern(t, 2).edge_count(), 1);
        }
    }

    #[test]
    fn job_pattern_uses_spec_fields() {
        let job = JobSpec::new(1, mapa_workloads::GpuDemand::Whole(4), Workload::Vgg16)
            .with_topology(AppTopology::AllToAll)
            .with_iterations(10);
        let p = job_pattern(&job);
        assert_eq!(p.vertex_count(), 4);
        assert_eq!(p.edge_count(), 6);
    }

    #[test]
    fn patterns_are_connected_for_multi_gpu() {
        for t in [
            AppTopology::Ring,
            AppTopology::Tree,
            AppTopology::RingTree,
            AppTopology::AllToAll,
        ] {
            for n in 2..=6 {
                assert!(build_pattern(t, n).is_connected(), "{t} n={n}");
            }
        }
    }
}
