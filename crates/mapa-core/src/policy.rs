//! Allocation policies (paper §3.5 and the §4 baselines).
//!
//! * [`BaselinePolicy`] — lowest free GPU ids, "how current GPU allocation
//!   \[is\] done in existing frameworks such as Nvidia Docker".
//! * [`TopoAwarePolicy`] — Amaral et al.'s recursive bi-partitioning:
//!   prefer allocations packed under one CPU socket / PCIe root.
//! * [`GreedyPolicy`] — MAPA matching + scoring, selecting the match with
//!   the highest *Aggregated* Bandwidth.
//! * [`PreservePolicy`] — the paper's Algorithm 1: bandwidth-sensitive jobs
//!   get the highest *Predicted Effective* Bandwidth match; insensitive
//!   jobs get the match that *preserves* the most bandwidth for the future.
//! * [`EffBwGreedyPolicy`] — ablation: highest Predicted EffBW for every
//!   job regardless of sensitivity.
//!
//! All policies are deterministic: score ties break toward the
//! lexicographically smallest embedding.

use crate::appgraph;
use crate::scoring;
use mapa_graph::{BitSet, PatternGraph, WeightedGraph};
use mapa_isomorph::{Embedding, Matcher};
use mapa_model::EffBwModel;
use mapa_topology::{HardwareState, Topology};
use mapa_workloads::JobSpec;

/// Everything a policy may consult when placing a job.
pub struct PolicyContext<'a> {
    /// The machine.
    pub topology: &'a Topology,
    /// Current occupancy.
    pub state: &'a HardwareState,
    /// The Predicted-EffBW regression model.
    pub model: &'a EffBwModel,
    /// The configured subgraph matcher.
    pub matcher: &'a Matcher,
    /// Complete unweighted hardware graph (matcher data graph).
    pub data_graph: &'a PatternGraph,
    /// Complete weighted hardware graph (for Eq. 1 scoring).
    pub bandwidth_graph: &'a WeightedGraph,
}

impl PolicyContext<'_> {
    /// Whether vertex `v` may host the job's demand: fractional
    /// ([`mapa_workloads::GpuDemand::Slices`]) demands may land on any
    /// vertex; whole-GPU demands never land on MIG slices. Identity on
    /// unpartitioned machines.
    #[must_use]
    pub fn demand_eligible(&self, job: &JobSpec, v: usize) -> bool {
        job.is_fractional() || self.topology.slice_map().is_none_or(|m| !m.is_slice(v))
    }

    /// Free vertices eligible for the job's demand, ascending. Equal to
    /// `state.free_gpus()` on unpartitioned machines.
    #[must_use]
    pub fn eligible_free(&self, job: &JobSpec) -> Vec<usize> {
        let free = self.state.free_gpus();
        if job.is_fractional() || !self.topology.is_partitioned() {
            return free;
        }
        free.into_iter()
            .filter(|&v| self.demand_eligible(job, v))
            .collect()
    }

    /// The matcher frozen mask for the job's demand: busy vertices, plus
    /// slice vertices when the job wants whole GPUs. Equal to
    /// `state.frozen_mask()` on unpartitioned machines.
    #[must_use]
    pub fn eligible_frozen(&self, job: &JobSpec) -> BitSet {
        let mut frozen = self.state.frozen_mask();
        if !job.is_fractional() {
            if let Some(m) = self.topology.slice_map() {
                for v in 0..m.vertex_count() {
                    if m.is_slice(v) {
                        frozen.insert(v);
                    }
                }
            }
        }
        frozen
    }
}

/// A GPU-selection policy.
///
/// # Purity contract (allocation caching)
///
/// The canonical-state allocation cache ([`crate::cache`]) memoizes
/// selections keyed by *(pattern isomorphism class, `bandwidth_sensitive`,
/// demand kind, SLO-tagged, machine, free-GPU set)*. For cached and
/// uncached paths to be equivalent, `select` must be a deterministic
/// function of exactly those inputs — it must not consult other
/// [`JobSpec`] fields (`id`, `workload`, `iterations`, the SLO *value*),
/// wall-clock time, or external state, and its
/// tie-breaking must not depend on the pattern's vertex labeling (break
/// score ties toward the lexicographically smallest GPU set, as every
/// built-in policy does). A policy that needs more inputs is still valid —
/// run it with the cache disabled (`AllocatorConfig::default()`, or
/// `SimConfig { cached: false, .. }` in the simulator, which otherwise
/// caches by default).
pub trait AllocationPolicy: Send + Sync {
    /// Short name used in result tables ("baseline", "Preserve", …).
    fn name(&self) -> &'static str;

    /// Chooses physical GPUs for `job`, or `None` when the job cannot be
    /// placed right now. Implementations must only return free GPUs, and
    /// should honor the purity contract above (see trait docs) so the
    /// allocation cache stays sound.
    fn select(&self, job: &JobSpec, ctx: &PolicyContext<'_>) -> Option<Vec<usize>>;
}

/// Enumerate all candidate embeddings of the job's pattern into the free
/// portion of the hardware graph, as physical-GPU assignments.
#[must_use]
pub fn candidate_matches(job: &JobSpec, ctx: &PolicyContext<'_>) -> Vec<Embedding> {
    if job.num_gpus() == 0 || job.num_gpus() > ctx.state.free_count() {
        return vec![];
    }
    let pattern = appgraph::job_pattern(job);
    let frozen = ctx.eligible_frozen(job);
    ctx.matcher
        .find_with_frozen(&pattern, ctx.data_graph, Some(&frozen))
        .expect("matcher options are valid")
}

/// Streams every candidate *vertex set* (ascending GPU lists) that can
/// host the job's pattern, without materialising embeddings.
///
/// Scores that depend only on the matched vertex set — Predicted EffBW and
/// Preserved BW — do not distinguish embeddings of the same set, so
/// set-based policies use this instead of [`candidate_matches`]. On a
/// complete data graph (the paper's setting: PCIe connects everything)
/// every k-subset of free GPUs hosts every k-vertex pattern, so the stream
/// is a plain combination walk: `C(free, k)` visits instead of up to
/// `C(free, k) · k!` embeddings. On sparse data graphs it falls back to
/// the matcher and deduplicates vertex sets.
pub fn for_each_candidate_set(
    job: &JobSpec,
    ctx: &PolicyContext<'_>,
    mut visit: impl FnMut(&[usize]),
) {
    let k = job.num_gpus();
    let free = ctx.eligible_free(job);
    if k == 0 || k > free.len() {
        return;
    }
    let n = ctx.data_graph.vertex_count();
    let complete = ctx.data_graph.edge_count() == n * (n - 1) / 2;
    if complete {
        // Lexicographic combination walk over the free list.
        let mut idx: Vec<usize> = (0..k).collect();
        let mut current: Vec<usize> = idx.iter().map(|&i| free[i]).collect();
        loop {
            visit(&current);
            // Advance to the next combination.
            let mut i = k;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if idx[i] != i + free.len() - k {
                    break;
                }
            }
            idx[i] += 1;
            for j in (i + 1)..k {
                idx[j] = idx[j - 1] + 1;
            }
            for (slot, &i) in current.iter_mut().zip(&idx) {
                *slot = free[i];
            }
        }
    } else {
        let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
        for e in candidate_matches(job, ctx) {
            let set = e.vertex_set();
            if seen.insert(set.clone()) {
                visit(&set);
            }
        }
    }
}

/// The ascending GPU set of an embedding's assignment slice.
fn sorted_set(m: &[usize]) -> Vec<usize> {
    let mut set = m.to_vec();
    set.sort_unstable();
    set
}

/// Pick the vertex set maximizing a two-level score over the candidate-set
/// stream, ties toward the lexicographically smallest set.
fn argmax_set_by_score2(
    job: &JobSpec,
    ctx: &PolicyContext<'_>,
    mut score: impl FnMut(&[usize]) -> (f64, f64),
) -> Option<Vec<usize>> {
    let mut best: Option<((f64, f64), Vec<usize>)> = None;
    for_each_candidate_set(job, ctx, |set| {
        let s = score(set);
        let better = match &best {
            None => true,
            Some((bs, _)) => s.0 > bs.0 || (s.0 == bs.0 && s.1 > bs.1),
        };
        if better {
            best = Some((s, set.to_vec()));
        }
    });
    best.map(|(_, set)| set)
}

/// Pick the embedding maximizing `score`, breaking ties toward the first
/// (lexicographically smallest) candidate. Returns its physical GPU set.
///
/// A building block for custom policies working on materialised matches
/// (see the `custom_policy` example); the built-in policies stream instead.
pub fn argmax_by_score(
    candidates: &[Embedding],
    mut score: impl FnMut(&Embedding) -> f64,
) -> Option<Vec<usize>> {
    argmax_by_score2(candidates, |e| (score(e), 0.0))
}

/// Like [`argmax_by_score`] with a two-level score: the second component
/// breaks ties in the first (Algorithm 1 does not specify tie handling;
/// we resolve primary-score ties by the score most aligned with the
/// policy's intent, then lexicographically).
pub fn argmax_by_score2(
    candidates: &[Embedding],
    mut score: impl FnMut(&Embedding) -> (f64, f64),
) -> Option<Vec<usize>> {
    let mut best: Option<((f64, f64), &Embedding)> = None;
    for e in candidates {
        let s = score(e);
        let better = match &best {
            None => true,
            Some((bs, _)) => s.0 > bs.0 || (s.0 == bs.0 && s.1 > bs.1),
        };
        if better {
            best = Some((s, e));
        }
    }
    best.map(|(_, e)| e.vertex_set())
}

/// The Nvidia-Docker-style baseline: the lowest-indexed free GPUs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselinePolicy;

impl AllocationPolicy for BaselinePolicy {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn select(&self, job: &JobSpec, ctx: &PolicyContext<'_>) -> Option<Vec<usize>> {
        let need = job.num_gpus();
        if need == 0 {
            return None;
        }
        let free = ctx.eligible_free(job);
        (free.len() >= need).then(|| free[..need].to_vec())
    }
}

/// Topology-aware recursive bi-partitioning (Amaral et al.): place the job
/// in the best-fitting socket (smallest free pool that still fits); when no
/// socket fits, span as few sockets as possible, fullest-socket first.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoAwarePolicy;

impl AllocationPolicy for TopoAwarePolicy {
    fn name(&self) -> &'static str {
        "Topo-aware"
    }

    fn select(&self, job: &JobSpec, ctx: &PolicyContext<'_>) -> Option<Vec<usize>> {
        let need = job.num_gpus();
        if need == 0 || ctx.eligible_free(job).len() < need {
            return None;
        }
        let topo = ctx.topology;
        let mut per_socket: Vec<(usize, Vec<usize>)> = (0..topo.socket_count())
            .map(|s| {
                let free: Vec<usize> = topo
                    .gpus_in_socket(s)
                    .into_iter()
                    .filter(|&g| ctx.state.is_free(g) && ctx.demand_eligible(job, g))
                    .collect();
                (s, free)
            })
            .collect();

        // Best fit: the socket with the fewest free GPUs that still fits.
        if let Some((_, gpus)) = per_socket
            .iter()
            .filter(|(_, free)| free.len() >= need)
            .min_by_key(|(s, free)| (free.len(), *s))
        {
            return Some(gpus[..need].to_vec());
        }

        // Otherwise span sockets, taking from the fullest first to keep
        // the job on as few PCIe domains as possible.
        per_socket.sort_by(|(sa, fa), (sb, fb)| fb.len().cmp(&fa.len()).then(sa.cmp(sb)));
        let mut chosen = Vec::with_capacity(need);
        for (_, free) in &per_socket {
            for &g in free {
                if chosen.len() == need {
                    break;
                }
                chosen.push(g);
            }
        }
        (chosen.len() == need).then(|| {
            chosen.sort_unstable();
            chosen
        })
    }
}

/// MAPA with greedy Aggregated-Bandwidth selection (§4's "Greedy").
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPolicy;

impl AllocationPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn select(&self, job: &JobSpec, ctx: &PolicyContext<'_>) -> Option<Vec<usize>> {
        if job.num_gpus() == 0 || job.num_gpus() > ctx.state.free_count() {
            return None;
        }
        let pattern = appgraph::job_pattern(job);
        let frozen = ctx.eligible_frozen(job);
        // Aggregated bandwidth depends on the *embedding* (which hardware
        // links the pattern's edges land on), so Greedy streams embeddings
        // rather than vertex sets — without materialising them. Score
        // ties break toward the lexicographically smallest GPU set, which
        // makes the selection a function of the pattern's isomorphism
        // class (not its labeling) — required for canonical-code keyed
        // allocation caching. On partitioned machines the co-residency
        // pressure penalty (zero elsewhere) is subtracted from AggBW.
        let mut best: Option<(f64, Vec<usize>)> = None;
        ctx.matcher
            .for_each_with_frozen(&pattern, ctx.data_graph, Some(&frozen), &mut |m| {
                let mut agg = 0.0;
                for (u, v, ()) in pattern.edges() {
                    agg += ctx.bandwidth_graph.weight(m[u], m[v]).unwrap_or(0.0);
                }
                let set = sorted_set(m);
                let score = agg - scoring::pressure_penalty(job, ctx.state, &set);
                let better = match &best {
                    None => true,
                    Some((b, bset)) => score > *b || (score == *b && set < *bset),
                };
                if better {
                    best = Some((score, set));
                }
                true
            })
            .expect("matcher options are valid");
        best.map(|(_, set)| set)
    }
}

/// The paper's Preserve policy (Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct PreservePolicy;

impl AllocationPolicy for PreservePolicy {
    fn name(&self) -> &'static str {
        "Preserve"
    }

    fn select(&self, job: &JobSpec, ctx: &PolicyContext<'_>) -> Option<Vec<usize>> {
        let (free_graph, free_map) = ctx.state.available_graph();
        if job.bandwidth_sensitive {
            // Primary: Predicted EffBW (Algorithm 1), less the co-residency
            // pressure penalty (zero on unpartitioned machines). Ties —
            // frequent, since many placements share a link mix — break
            // toward the one preserving the most bandwidth for later jobs.
            argmax_set_by_score2(job, ctx, |gpus| {
                (
                    scoring::predicted_effective_bandwidth(ctx.model, ctx.topology, gpus)
                        - scoring::pressure_penalty(job, ctx.state, gpus),
                    scoring::preserved_bandwidth(&free_graph, &free_map, gpus),
                )
            })
        } else {
            // Primary: Preserved BW (Algorithm 1), less the pressure
            // penalty. Ties break toward the placement consuming the least
            // effective bandwidth itself.
            argmax_set_by_score2(job, ctx, |gpus| {
                (
                    scoring::preserved_bandwidth(&free_graph, &free_map, gpus)
                        - scoring::pressure_penalty(job, ctx.state, gpus),
                    -scoring::predicted_effective_bandwidth(ctx.model, ctx.topology, gpus),
                )
            })
        }
    }
}

/// Ablation policy: Predicted-EffBW-greedy for *every* job (ignores the
/// sensitivity annotation). Isolates the contribution of bandwidth
/// preservation from the contribution of EffBW-based scoring.
#[derive(Debug, Clone, Copy, Default)]
pub struct EffBwGreedyPolicy;

impl AllocationPolicy for EffBwGreedyPolicy {
    fn name(&self) -> &'static str {
        "EffBW-greedy"
    }

    fn select(&self, job: &JobSpec, ctx: &PolicyContext<'_>) -> Option<Vec<usize>> {
        argmax_set_by_score2(job, ctx, |gpus| {
            (
                scoring::predicted_effective_bandwidth(ctx.model, ctx.topology, gpus)
                    - scoring::pressure_penalty(job, ctx.state, gpus),
                0.0,
            )
        })
    }
}

/// The four policies evaluated in the paper's §4, in presentation order.
#[must_use]
pub fn paper_policies() -> Vec<Box<dyn AllocationPolicy>> {
    vec![
        Box::new(BaselinePolicy),
        Box::new(TopoAwarePolicy),
        Box::new(GreedyPolicy),
        Box::new(PreservePolicy),
    ]
}

/// Names accepted by [`allocation_policy_by_name`], in documentation
/// order (canonical spellings; the lookup also accepts the common
/// unhyphenated variants).
pub const ALLOCATION_POLICY_NAMES: [&str; 5] = [
    "baseline",
    "topo-aware",
    "greedy",
    "preserve",
    "effbw-greedy",
];

/// Resolves an allocation policy from its CLI spelling (what
/// `mapa-sched --policy`, campaign grids, and the agent accept).
/// Case-insensitive; returns `None` for unknown names.
#[must_use]
pub fn allocation_policy_by_name(name: &str) -> Option<Box<dyn AllocationPolicy>> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Some(Box::new(BaselinePolicy)),
        "topo-aware" | "topoaware" => Some(Box::new(TopoAwarePolicy)),
        "greedy" => Some(Box::new(GreedyPolicy)),
        "preserve" | "preservation" => Some(Box::new(PreservePolicy)),
        "effbw-greedy" | "effbwgreedy" => Some(Box::new(EffBwGreedyPolicy)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_isomorph::MatchOptions;
    use mapa_model::{corpus, paper_coefficients};
    use mapa_topology::{machines, PartitionPlan};
    use mapa_workloads::{GpuDemand, Workload};

    struct Fixture {
        topology: Topology,
        state: HardwareState,
        model: EffBwModel,
        matcher: Matcher,
        data_graph: PatternGraph,
        bandwidth_graph: WeightedGraph,
    }

    impl Fixture {
        fn dgx() -> Self {
            Self::of(machines::dgx1_v100())
        }

        fn of(topology: Topology) -> Self {
            let model = EffBwModel::fit(&corpus::build_corpus(&topology, 2..=5))
                .unwrap_or_else(|_| EffBwModel::from_coefficients(paper_coefficients()));
            Self {
                state: HardwareState::new(topology.clone()),
                data_graph: scoring::matcher_data_graph(&topology),
                bandwidth_graph: topology.bandwidth_graph(),
                matcher: Matcher::new(MatchOptions::default()),
                model,
                topology,
            }
        }

        fn ctx(&self) -> PolicyContext<'_> {
            PolicyContext {
                topology: &self.topology,
                state: &self.state,
                model: &self.model,
                matcher: &self.matcher,
                data_graph: &self.data_graph,
                bandwidth_graph: &self.bandwidth_graph,
            }
        }
    }

    fn job(n: usize, sensitive: bool) -> JobSpec {
        let workload = if sensitive {
            Workload::Vgg16
        } else {
            Workload::GoogleNet
        };
        JobSpec::new(1, GpuDemand::Whole(n), workload)
            .with_bandwidth_sensitive(sensitive)
            .with_iterations(100)
    }

    #[test]
    fn baseline_takes_lowest_ids() {
        let mut f = Fixture::dgx();
        let got = BaselinePolicy.select(&job(3, true), &f.ctx()).unwrap();
        assert_eq!(got, vec![0, 1, 2]);
        f.state.allocate(9, &[0, 2]).unwrap();
        let got = BaselinePolicy.select(&job(3, true), &f.ctx()).unwrap();
        assert_eq!(got, vec![1, 3, 4]);
    }

    #[test]
    fn baseline_rejects_oversized() {
        let f = Fixture::dgx();
        assert!(BaselinePolicy.select(&job(9, true), &f.ctx()).is_none());
        assert!(BaselinePolicy.select(&job(0, true), &f.ctx()).is_none());
    }

    #[test]
    fn topo_aware_prefers_single_socket() {
        let mut f = Fixture::dgx();
        // Occupy 2 GPUs of socket 0; a 4-GPU job must go to socket 1.
        f.state.allocate(9, &[0, 1]).unwrap();
        let got = TopoAwarePolicy.select(&job(4, true), &f.ctx()).unwrap();
        assert_eq!(got, vec![4, 5, 6, 7]);
        // A 2-GPU job best-fits in socket 0's remaining pair.
        let got2 = TopoAwarePolicy.select(&job(2, true), &f.ctx()).unwrap();
        assert_eq!(got2, vec![2, 3]);
    }

    #[test]
    fn topo_aware_spans_sockets_when_needed() {
        let mut f = Fixture::dgx();
        f.state.allocate(9, &[0, 1, 4, 5]).unwrap();
        // 3 free in no single socket... each socket has 2 free; a 3-GPU
        // job must span.
        let got = TopoAwarePolicy.select(&job(3, true), &f.ctx()).unwrap();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&g| f.state.is_free(g)));
    }

    #[test]
    fn greedy_picks_max_aggregated_bandwidth() {
        let f = Fixture::dgx();
        // 2-GPU ring: the best pair by AggBW is any double-NVLink pair
        // (50); (0,3) is the lexicographically-first such pair.
        let got = GreedyPolicy.select(&job(2, true), &f.ctx()).unwrap();
        let bw = f.topology.bandwidth(got[0], got[1]);
        assert_eq!(bw, 50.0, "greedy must land on a double link, got {got:?}");
    }

    #[test]
    fn preserve_sensitive_maximizes_predicted_effbw() {
        let f = Fixture::dgx();
        let got = PreservePolicy.select(&job(2, true), &f.ctx()).unwrap();
        // Best predicted EffBW pair is a double-NVLink pair.
        assert_eq!(f.topology.bandwidth(got[0], got[1]), 50.0);
    }

    #[test]
    fn preserve_insensitive_maximizes_remaining_bandwidth() {
        // Eq. 3 semantics, checked against brute force: removing a pair
        // destroys all links incident to both GPUs minus their shared
        // link counted once — so the policy prefers pairs whose *mutual*
        // link is strong (it would be stranded anyway) and whose outward
        // links are weak.
        let f = Fixture::dgx();
        let got = PreservePolicy.select(&job(2, false), &f.ctx()).unwrap();
        let (free_graph, free_map) = f.state.available_graph();
        let chosen = scoring::preserved_bandwidth(&free_graph, &free_map, &got);
        let mut best = f64::NEG_INFINITY;
        for a in 0..8 {
            for b in (a + 1)..8 {
                best = best.max(scoring::preserved_bandwidth(
                    &free_graph,
                    &free_map,
                    &[a, b],
                ));
            }
        }
        assert_eq!(
            chosen, best,
            "policy choice {got:?} must attain the optimum"
        );
        // On DGX-1V the optimum is a double-NVLink pair: the 50 GB/s
        // mutual link is consumed "for free".
        assert_eq!(f.topology.bandwidth(got[0], got[1]), 50.0);
    }

    #[test]
    fn preserve_beats_greedy_for_followup_sensitive_job() {
        // The paper's core scenario: an insensitive job arrives first;
        // Preserve parks it on slow links so a later sensitive job still
        // finds fast ones. Greedy burns the fast links immediately.
        let jobs = [job(2, false), job(2, true)];

        let mut greedy_world = Fixture::dgx();
        let g1 = GreedyPolicy.select(&jobs[0], &greedy_world.ctx()).unwrap();
        greedy_world.state.allocate(1, &g1).unwrap();
        let g2 = GreedyPolicy.select(&jobs[1], &greedy_world.ctx()).unwrap();

        let mut preserve_world = Fixture::dgx();
        let p1 = PreservePolicy
            .select(&jobs[0], &preserve_world.ctx())
            .unwrap();
        preserve_world.state.allocate(1, &p1).unwrap();
        let p2 = PreservePolicy
            .select(&jobs[1], &preserve_world.ctx())
            .unwrap();

        let greedy_bw = greedy_world.topology.bandwidth(g2[0], g2[1]);
        let preserve_bw = preserve_world.topology.bandwidth(p2[0], p2[1]);
        assert!(
            preserve_bw >= greedy_bw,
            "preserve {preserve_bw} must not be worse than greedy {greedy_bw}"
        );
    }

    #[test]
    fn policies_only_return_free_gpus() {
        let mut f = Fixture::dgx();
        f.state.allocate(9, &[1, 3, 5]).unwrap();
        let policies: Vec<Box<dyn AllocationPolicy>> = vec![
            Box::new(BaselinePolicy),
            Box::new(TopoAwarePolicy),
            Box::new(GreedyPolicy),
            Box::new(PreservePolicy),
            Box::new(EffBwGreedyPolicy),
        ];
        for p in &policies {
            for n in 1..=5 {
                if let Some(gpus) = p.select(&job(n, true), &f.ctx()) {
                    assert_eq!(gpus.len(), n, "{}", p.name());
                    assert!(
                        gpus.iter().all(|&g| f.state.is_free(g)),
                        "{} returned busy GPU: {gpus:?}",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn single_gpu_jobs_always_placeable_until_full() {
        let mut f = Fixture::dgx();
        for i in 0..8 {
            let gpus = PreservePolicy.select(&job(1, false), &f.ctx()).unwrap();
            f.state.allocate(i, &gpus).unwrap();
        }
        assert!(PreservePolicy.select(&job(1, false), &f.ctx()).is_none());
    }

    #[test]
    fn paper_policies_roster() {
        let names: Vec<&str> = paper_policies().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["baseline", "Topo-aware", "Greedy", "Preserve"]);
    }

    #[test]
    fn candidate_set_stream_matches_matcher_dedup() {
        // On a complete data graph, the combination fast path must visit
        // exactly the vertex sets the matcher would find.
        let f = Fixture::dgx();
        let mut state = f.state.clone();
        state.allocate(9, &[2, 6]).unwrap();
        let fixture = Fixture { state, ..f };
        let ctx = fixture.ctx();
        let spec = job(3, true);
        let mut streamed: Vec<Vec<usize>> = vec![];
        for_each_candidate_set(&spec, &ctx, |set| streamed.push(set.to_vec()));
        let mut via_matcher: Vec<Vec<usize>> = candidate_matches(&spec, &ctx)
            .into_iter()
            .map(|e| e.vertex_set())
            .collect();
        via_matcher.sort();
        via_matcher.dedup();
        let mut streamed_sorted = streamed.clone();
        streamed_sorted.sort();
        assert_eq!(streamed_sorted, via_matcher);
        // C(6,3) = 20 candidate sets with 2 GPUs busy.
        assert_eq!(streamed.len(), 20);
    }

    /// DGX-1V with GPU 0 split into 4 MIG slices: vertices 0..4 are the
    /// slices, 4..11 the remaining whole GPUs.
    fn partitioned() -> Fixture {
        let plan = PartitionPlan::new().split(0, 4);
        Fixture::of(plan.apply(&machines::dgx1_v100()).into_topology())
    }

    #[test]
    fn whole_jobs_never_land_on_slices() {
        let f = partitioned();
        let map = f.topology.slice_map().unwrap().clone();
        let policies: Vec<Box<dyn AllocationPolicy>> = vec![
            Box::new(BaselinePolicy),
            Box::new(TopoAwarePolicy),
            Box::new(GreedyPolicy),
            Box::new(PreservePolicy),
            Box::new(EffBwGreedyPolicy),
        ];
        for p in &policies {
            for n in 1..=4 {
                let gpus = p
                    .select(&job(n, true), &f.ctx())
                    .unwrap_or_else(|| panic!("{} refused a {n}-GPU whole job", p.name()));
                assert!(
                    gpus.iter().all(|&v| !map.is_slice(v)),
                    "{} put a whole-GPU job on a slice: {gpus:?}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn fractional_jobs_may_use_slices() {
        let mut f = partitioned();
        // Occupy every whole GPU; only the four slices of phys 0 are free.
        f.state.allocate(9, &[4, 5, 6, 7, 8, 9, 10]).unwrap();
        let spec = JobSpec::new(1, GpuDemand::Slices(2), Workload::ResNet50);
        assert!(
            PreservePolicy.select(&job(2, true), &f.ctx()).is_none(),
            "whole jobs must not fall back to slices"
        );
        for p in [
            Box::new(GreedyPolicy) as Box<dyn AllocationPolicy>,
            Box::new(PreservePolicy),
        ] {
            let gpus = p.select(&spec, &f.ctx()).unwrap();
            assert_eq!(gpus.len(), 2, "{}", p.name());
            assert!(gpus.iter().all(|&v| v < 4), "{}: {gpus:?}", p.name());
        }
    }

    #[test]
    fn fractional_jobs_place_on_unpartitioned_machines() {
        let f = Fixture::dgx();
        let spec = JobSpec::new(1, GpuDemand::Slices(2), Workload::ResNet50);
        let gpus = PreservePolicy.select(&spec, &f.ctx()).unwrap();
        assert_eq!(gpus.len(), 2);
    }

    #[test]
    fn slo_pressure_spreads_tenants_across_physical_gpus() {
        // Two split GPUs: vertices 0,1 = phys 0; 2,3 = phys 1. A busy slice
        // on phys 0 makes its sibling slice pay the co-residency penalty,
        // so an SLO-tagged single-slice tenant lands on phys 1 instead.
        let plan = PartitionPlan::new().split(0, 2).split(1, 2);
        let mut f = Fixture::of(plan.apply(&machines::dgx1_v100()).into_topology());
        f.state.allocate(9, &[0]).unwrap();
        let spec = JobSpec::new(1, GpuDemand::Slices(1), Workload::BertServing).with_slo(25.0);
        let got = GreedyPolicy.select(&spec, &f.ctx()).unwrap();
        assert_eq!(got, vec![2], "expected the quiet physical GPU, got {got:?}");
        assert_eq!(f.state.co_resident_busy(got[0]), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Under arbitrary occupancy every policy returns only free GPUs of
        /// the right count, or None — never a corrupt allocation.
        #[test]
        fn policies_sound_under_random_occupancy(
            busy in proptest::collection::vec(0usize..8, 0..6),
            n in 1usize..5,
            sensitive in proptest::prelude::any::<bool>(),
        ) {
            let mut f = Fixture::dgx();
            for (i, g) in busy.iter().enumerate() {
                let _ = f.state.allocate(100 + i as u64, &[*g]);
            }
            let spec = job(n, sensitive);
            let free = f.state.free_count();
            let policies: Vec<Box<dyn AllocationPolicy>> = vec![
                Box::new(BaselinePolicy),
                Box::new(TopoAwarePolicy),
                Box::new(GreedyPolicy),
                Box::new(PreservePolicy),
                Box::new(EffBwGreedyPolicy),
            ];
            for p in &policies {
                match p.select(&spec, &f.ctx()) {
                    Some(gpus) => {
                        proptest::prop_assert_eq!(gpus.len(), n, "{}", p.name());
                        proptest::prop_assert!(
                            gpus.iter().all(|&g| f.state.is_free(g)),
                            "{} returned busy GPU {:?}", p.name(), gpus
                        );
                        let mut sorted = gpus.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        proptest::prop_assert_eq!(sorted.len(), n, "{} duplicated", p.name());
                    }
                    None => proptest::prop_assert!(
                        free < n,
                        "{} refused although {} GPUs free for a {}-GPU job",
                        p.name(), free, n
                    ),
                }
            }
        }

        /// Preserve's sensitive branch attains the true maximum predicted
        /// EffBW over all free k-subsets (checked by brute force).
        #[test]
        fn preserve_sensitive_is_optimal(
            busy in proptest::collection::vec(0usize..8, 0..4),
            n in 2usize..4,
        ) {
            let mut f = Fixture::dgx();
            for (i, g) in busy.iter().enumerate() {
                let _ = f.state.allocate(100 + i as u64, &[*g]);
            }
            let spec = job(n, true);
            if f.state.free_count() < n {
                return Ok(());
            }
            let chosen = PreservePolicy.select(&spec, &f.ctx()).unwrap();
            let chosen_score =
                scoring::predicted_effective_bandwidth(&f.model, &f.topology, &chosen);
            // Brute force over free subsets.
            let free = f.state.free_gpus();
            let mut best = f64::NEG_INFINITY;
            let m = free.len();
            for mask in 0u32..(1 << m) {
                if mask.count_ones() as usize != n {
                    continue;
                }
                let subset: Vec<usize> = (0..m)
                    .filter(|&i| mask >> i & 1 == 1)
                    .map(|i| free[i])
                    .collect();
                best = best.max(scoring::predicted_effective_bandwidth(
                    &f.model, &f.topology, &subset,
                ));
            }
            proptest::prop_assert!(
                (chosen_score - best).abs() < 1e-9,
                "chosen {} < optimal {}",
                chosen_score,
                best
            );
        }
    }
}
