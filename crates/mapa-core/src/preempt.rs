//! Preemption policies: when a high-priority arrival may vacate running
//! low-priority jobs.
//!
//! MAPA's pattern policies decide *where* a job runs; under multi-tenant
//! pressure the scheduler must also decide *whether a running job keeps
//! its GPUs* when a more important tenant arrives and no feasible pattern
//! exists — MoCA (arXiv:2305.05843) shows adaptive preemption is what
//! keeps co-located tenants meeting SLAs. A [`PreemptionPolicy`] names
//! the victim-selection rule; the mechanism lives on
//! [`MapaAllocator::preemption_plan`](crate::MapaAllocator::preemption_plan)
//! (choose victims, verify feasibility, roll back) and
//! [`MapaAllocator::evict`](crate::MapaAllocator::evict) (commit). The
//! simulation engine charges every evicted job a configurable
//! checkpoint/restore penalty when it restarts — preemption is never
//! free, and the scheduling semantics in `docs/SCHEDULING.md` spells out
//! the full lifecycle.

/// When (and from whom) a scheduler may take GPUs back.
///
/// Victim *eligibility*: only running jobs with **strictly lower
/// priority** than the arrival are ever considered, a job is preempted
/// **at most once** per run (the engine shields previously-evicted jobs),
/// and gang members are never victims (evicting one member would break
/// the gang's co-scheduling contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionPolicy {
    /// Never evict: a blocked arrival waits for a natural release. The
    /// default — schedules are bit-identical to the preemption-free
    /// engine.
    #[default]
    None,
    /// Evict lowest-priority victims first; among equals, the youngest
    /// allocation (least work lost), then the highest job id.
    PriorityEvict,
    /// Like [`PreemptionPolicy::PriorityEvict`], but bandwidth-sensitive
    /// jobs are *never* victims: evictions are restricted to insensitive
    /// jobs, whose placement (and mid-flight progress) is cheapest to
    /// redo — the MoCA-style rule that shields SLA-bound tenants.
    SensitivityAwareEvict,
}

impl PreemptionPolicy {
    /// Short name used in reports and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PreemptionPolicy::None => "none",
            PreemptionPolicy::PriorityEvict => "priority-evict",
            PreemptionPolicy::SensitivityAwareEvict => "sensitivity-aware-evict",
        }
    }

    /// Whether this policy can ever evict anything.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != PreemptionPolicy::None
    }
}

/// Names accepted by [`preemption_policy_by_name`], in documentation
/// order.
pub const PREEMPTION_POLICY_NAMES: [&str; 3] =
    ["none", "priority-evict", "sensitivity-aware-evict"];

/// Resolves a preemption policy from its CLI name (case-insensitive;
/// "priority" and "sensitivity" are accepted shorthands).
#[must_use]
pub fn preemption_policy_by_name(name: &str) -> Option<PreemptionPolicy> {
    match name.to_ascii_lowercase().as_str() {
        "none" => Some(PreemptionPolicy::None),
        "priority" | "priority-evict" | "priorityevict" => Some(PreemptionPolicy::PriorityEvict),
        "sensitivity"
        | "sensitivity-aware"
        | "sensitivity-aware-evict"
        | "sensitivityawareevict" => Some(PreemptionPolicy::SensitivityAwareEvict),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_every_documented_policy() {
        for name in PREEMPTION_POLICY_NAMES {
            let p = preemption_policy_by_name(name).expect(name);
            assert_eq!(p.name(), name);
        }
        assert_eq!(
            preemption_policy_by_name("priority"),
            Some(PreemptionPolicy::PriorityEvict)
        );
        assert_eq!(
            preemption_policy_by_name("SENSITIVITY"),
            Some(PreemptionPolicy::SensitivityAwareEvict)
        );
        assert!(preemption_policy_by_name("ruthless").is_none());
    }

    #[test]
    fn default_is_none_and_enabled_tracks_it() {
        assert_eq!(PreemptionPolicy::default(), PreemptionPolicy::None);
        assert!(!PreemptionPolicy::None.enabled());
        assert!(PreemptionPolicy::PriorityEvict.enabled());
        assert!(PreemptionPolicy::SensitivityAwareEvict.enabled());
    }
}
