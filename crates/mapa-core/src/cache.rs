//! Memoization of allocation decisions — the canonical-state cache.
//!
//! A policy's selection is a pure function of six inputs: the job's
//! pattern (up to isomorphism), its bandwidth-sensitivity flag, its demand
//! kind (whole GPUs vs MIG slices — they see different eligible vertices
//! on partitioned machines), whether it carries an SLO tag (the pressure
//! penalty weighs tagged jobs harder), the machine, and the current
//! free-GPU set. Multi-tenant traffic repeats those inputs constantly —
//! the paper's job mix draws from four pattern shapes and eight sizes, and
//! a machine that empties returns to a previously-seen occupancy — so
//! [`AllocationCache`] memoizes the selected placement under the key
//! `(pattern canonical code, sensitivity, fractional, SLO-tagged,
//! machine id, occupancy signature)`.
//!
//! **Soundness.** The occupancy signature is the *exact* busy set (see
//! [`OccupancySignature`]), the canonical code identifies the pattern's
//! isomorphism class, and every built-in policy breaks score ties toward
//! the lexicographically smallest GPU set — so equal keys imply identical
//! selections and entries never go stale: "invalidation" is the signature
//! changing under allocate/release, which simply rotates the key. A
//! previously-seen state recurring is exactly when a hit is both safe and
//! valuable. Negative results (`None`, "cannot place right now") are
//! cached on the same grounds.
//!
//! Canonical codes are brute-force over vertex permutations, so they are
//! computed once per `(AppTopology, size)` shape and memoized internally;
//! patterns above [`MAX_CANONICAL_VERTICES`] report no key and bypass the
//! cache entirely.

use mapa_graph::canonical::{canonical_code, CanonicalCode, MAX_CANONICAL_VERTICES};
use mapa_topology::OccupancySignature;
use mapa_workloads::{AppTopology, JobSpec};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default maximum number of cached decisions (FIFO eviction beyond it).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// The full identity of one allocation decision. The pattern code and
/// machine id are `Arc`-shared with the cache's internal memo tables, so
/// building a key on the hot path allocates only the (tiny) occupancy
/// signature it is handed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pattern: Arc<CanonicalCode>,
    bandwidth_sensitive: bool,
    fractional: bool,
    slo_tagged: bool,
    machine: Arc<str>,
    signature: OccupancySignature,
}

/// Hit/miss/eviction counters of an [`AllocationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the policy.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache; 0 when none happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A bounded memo table from [`CacheKey`] to the selected placement
/// (`None` = the policy declined; also memoized).
#[derive(Debug, Clone)]
pub struct AllocationCache {
    entries: HashMap<CacheKey, Option<Vec<usize>>>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    stats: CacheStats,
    /// Canonical codes memoized per pattern shape: `build_pattern` is
    /// deterministic in `(AppTopology, size)`, so the brute-force
    /// canonicalisation runs once per shape, not once per job.
    pattern_codes: HashMap<(AppTopology, usize), Arc<CanonicalCode>>,
    /// Interned machine names, so keys share one allocation per machine.
    machine_ids: HashMap<String, Arc<str>>,
}

impl AllocationCache {
    /// Creates a cache bounded to `capacity` entries (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
            pattern_codes: HashMap::new(),
            machine_ids: HashMap::new(),
        }
    }

    /// Rebounds the cache to `capacity` entries (clamped to ≥ 1),
    /// evicting oldest-first immediately if it now holds too many.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.entries.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Builds the cache key for placing `job` on `machine` in the state
    /// identified by `signature`. Returns `None` when the job's pattern is
    /// too large to canonicalise — such jobs bypass the cache (and are
    /// counted in neither hits nor misses).
    #[must_use]
    pub fn key_for(
        &mut self,
        job: &JobSpec,
        machine: &str,
        signature: OccupancySignature,
    ) -> Option<CacheKey> {
        if job.num_gpus() > MAX_CANONICAL_VERTICES {
            return None;
        }
        let pattern = Arc::clone(
            self.pattern_codes
                .entry((job.topology, job.num_gpus()))
                .or_insert_with(|| {
                    Arc::new(canonical_code(&crate::appgraph::build_pattern(
                        job.topology,
                        job.num_gpus(),
                    )))
                }),
        );
        let machine = match self.machine_ids.get(machine) {
            Some(id) => Arc::clone(id),
            None => {
                let id: Arc<str> = Arc::from(machine);
                self.machine_ids
                    .insert(machine.to_string(), Arc::clone(&id));
                id
            }
        };
        Some(CacheKey {
            pattern,
            bandwidth_sensitive: job.bandwidth_sensitive,
            fractional: job.is_fractional(),
            slo_tagged: job.has_slo(),
            machine,
            signature,
        })
    }

    /// Looks up a decision, counting a hit or miss.
    #[must_use]
    pub fn get(&mut self, key: &CacheKey) -> Option<&Option<Vec<usize>>> {
        match self.entries.get(key) {
            Some(hit) => {
                self.stats.hits += 1;
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a decision, evicting the oldest entry beyond capacity.
    pub fn insert(&mut self, key: CacheKey, placement: Option<Vec<usize>>) {
        if self.entries.insert(key.clone(), placement).is_none() {
            self.order.push_back(key);
            self.stats.insertions += 1;
            while self.entries.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                    self.stats.evictions += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no decision is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

impl Default for AllocationCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_topology::machines;
    use mapa_topology::HardwareState;
    use mapa_workloads::Workload;

    fn job(n: usize, topology: AppTopology, sensitive: bool) -> JobSpec {
        JobSpec::new(1, mapa_workloads::GpuDemand::Whole(n), Workload::Vgg16)
            .with_topology(topology)
            .with_bandwidth_sensitive(sensitive)
            .with_iterations(1)
    }

    #[test]
    fn hit_after_insert_and_signature_recurrence() {
        let mut cache = AllocationCache::default();
        let mut state = HardwareState::new(machines::dgx1_v100());
        let spec = job(3, AppTopology::Ring, true);

        let k1 = cache
            .key_for(&spec, "dgx", state.occupancy_signature())
            .unwrap();
        assert!(cache.get(&k1).is_none());
        cache.insert(k1.clone(), Some(vec![0, 1, 2]));

        // The same machine state recurs after an allocate/release cycle.
        state.allocate(9, &[4, 5]).unwrap();
        state.deallocate(9).unwrap();
        let k2 = cache
            .key_for(&spec, "dgx", state.occupancy_signature())
            .unwrap();
        assert_eq!(k1, k2, "recurring state rebuilds the same key");
        assert_eq!(cache.get(&k2), Some(&Some(vec![0, 1, 2])));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn mutation_rotates_the_key() {
        let mut cache = AllocationCache::default();
        let mut state = HardwareState::new(machines::dgx1_v100());
        let spec = job(2, AppTopology::Ring, true);
        let idle = cache
            .key_for(&spec, "dgx", state.occupancy_signature())
            .unwrap();
        cache.insert(idle.clone(), Some(vec![0, 3]));
        state.allocate(1, &[0, 3]).unwrap();
        let busy = cache
            .key_for(&spec, "dgx", state.occupancy_signature())
            .unwrap();
        assert_ne!(idle, busy, "allocation must invalidate (rotate) the key");
        assert!(cache.get(&busy).is_none());
    }

    #[test]
    fn key_distinguishes_sensitivity_machine_and_shape() {
        let mut cache = AllocationCache::default();
        let state = HardwareState::new(machines::dgx1_v100());
        let sig = state.occupancy_signature();
        let base = cache
            .key_for(&job(3, AppTopology::Ring, true), "dgx", sig.clone())
            .unwrap();
        let insensitive = cache
            .key_for(&job(3, AppTopology::Ring, false), "dgx", sig.clone())
            .unwrap();
        let other_machine = cache
            .key_for(&job(3, AppTopology::Ring, true), "summit", sig.clone())
            .unwrap();
        let other_shape = cache
            .key_for(&job(4, AppTopology::Ring, true), "dgx", sig.clone())
            .unwrap();
        assert_ne!(base, insensitive);
        assert_ne!(base, other_machine);
        assert_ne!(base, other_shape);
        // Isomorphic shapes share a key: ring(3) ≡ all_to_all(3).
        let triangle = cache
            .key_for(&job(3, AppTopology::AllToAll, true), "dgx", sig)
            .unwrap();
        assert_eq!(base, triangle);
    }

    #[test]
    fn key_distinguishes_demand_kind_and_slo_tag() {
        let mut cache = AllocationCache::default();
        let state = HardwareState::new(machines::dgx1_v100());
        let sig = state.occupancy_signature();
        let whole = cache
            .key_for(&job(3, AppTopology::Ring, true), "dgx", sig.clone())
            .unwrap();
        let mut slices = job(3, AppTopology::Ring, true);
        slices.demand = mapa_workloads::GpuDemand::Slices(3);
        let fractional = cache.key_for(&slices, "dgx", sig.clone()).unwrap();
        assert_ne!(
            whole, fractional,
            "whole and slice demands see different eligible vertices"
        );
        let tagged = cache
            .key_for(
                &job(3, AppTopology::Ring, true).with_slo(25.0),
                "dgx",
                sig.clone(),
            )
            .unwrap();
        assert_ne!(whole, tagged, "SLO tag changes the pressure weight");
        // The SLO *value* is not part of the key — selection ignores it.
        let tagged_other = cache
            .key_for(&job(3, AppTopology::Ring, true).with_slo(90.0), "dgx", sig)
            .unwrap();
        assert_eq!(tagged, tagged_other);
    }

    #[test]
    fn oversized_patterns_bypass() {
        let mut cache = AllocationCache::default();
        let state = HardwareState::new(machines::torus_2d());
        let spec = job(MAX_CANONICAL_VERTICES + 1, AppTopology::Ring, true);
        assert!(cache
            .key_for(&spec, "torus", state.occupancy_signature())
            .is_none());
        assert_eq!(cache.stats().lookups(), 0);
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let mut cache = AllocationCache::new(2);
        let mut state = HardwareState::new(machines::dgx1_v100());
        let spec = job(1, AppTopology::Ring, true);
        let mut keys = Vec::new();
        for g in 0..3usize {
            state.allocate(100 + g as u64, &[g]).unwrap();
            let k = cache
                .key_for(&spec, "dgx", state.occupancy_signature())
                .unwrap();
            cache.insert(k.clone(), Some(vec![g + 1]));
            keys.push(k);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&keys[0]).is_none(), "oldest entry evicted");
        assert!(cache.get(&keys[2]).is_some());
    }

    #[test]
    fn set_capacity_rebounds_and_trims() {
        let mut cache = AllocationCache::new(8);
        let mut state = HardwareState::new(machines::dgx1_v100());
        let spec = job(1, AppTopology::Ring, true);
        for g in 0..4usize {
            state.allocate(100 + g as u64, &[g]).unwrap();
            let k = cache
                .key_for(&spec, "dgx", state.occupancy_signature())
                .unwrap();
            cache.insert(k, Some(vec![g + 4]));
        }
        assert_eq!(cache.len(), 4);
        cache.set_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.len(), 2, "oldest entries trimmed immediately");
        assert_eq!(cache.stats().evictions, 2);
        cache.set_capacity(0);
        assert_eq!(cache.capacity(), 1, "capacity clamps to at least 1");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn negative_results_are_cached() {
        let mut cache = AllocationCache::default();
        let state = HardwareState::new(machines::summit());
        let spec = job(4, AppTopology::Ring, true);
        let k = cache
            .key_for(&spec, "summit", state.occupancy_signature())
            .unwrap();
        cache.insert(k.clone(), None);
        assert_eq!(cache.get(&k), Some(&None));
    }

    #[test]
    fn stats_hit_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
        };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
