//! Canonical forms for small graphs.
//!
//! A *canonical code* is a representation of a graph that is identical for
//! isomorphic graphs and different for non-isomorphic ones. For the tiny
//! pattern graphs MAPA handles (≤ ~10 vertices) we compute it by brute-force
//! minimisation over vertex permutations with degree-sequence pruning —
//! exact, dependency-free, and fast at this scale.
//!
//! Uses:
//! * deduplicating application pattern shapes in the workload generator;
//! * asserting "these two graphs are isomorphic" in tests without fixing a
//!   vertex order;
//! * computing automorphism counts for the matcher's symmetry-breaking
//!   validation.

use crate::Graph;

/// Upper bound on vertices for exact canonicalisation (12! ≈ 4.8e8 is too
/// slow; degree pruning keeps ≤ 10 practical, and MAPA patterns are ≤ 9).
pub const MAX_CANONICAL_VERTICES: usize = 10;

/// A canonical, hashable code for an unlabeled graph: vertex count plus the
/// lexicographically-smallest upper-triangle adjacency bit rows over all
/// vertex permutations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalCode {
    n: usize,
    rows: Vec<u64>,
}

impl CanonicalCode {
    /// Number of vertices of the encoded graph.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }
}

/// Computes the canonical code of `g`'s structure (weights ignored).
///
/// # Panics
/// Panics if `g` has more than [`MAX_CANONICAL_VERTICES`] vertices.
#[must_use]
pub fn canonical_code<W: Copy>(g: &Graph<W>) -> CanonicalCode {
    let n = g.vertex_count();
    assert!(
        n <= MAX_CANONICAL_VERTICES,
        "canonical_code supports at most {MAX_CANONICAL_VERTICES} vertices, got {n}"
    );
    if n == 0 {
        return CanonicalCode { n, rows: vec![] };
    }

    // Group vertices by degree: permutations must map degree classes onto
    // themselves, which prunes the search massively for regular-ish graphs.
    let mut best: Option<Vec<u64>> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute_minimize(g, &mut perm, 0, &mut best);
    CanonicalCode {
        n,
        rows: best.expect("at least one permutation evaluated"),
    }
}

/// Returns `true` when the two graphs are isomorphic as unlabeled graphs.
///
/// # Panics
/// Panics if either graph exceeds [`MAX_CANONICAL_VERTICES`] vertices.
#[must_use]
pub fn are_isomorphic<A: Copy, B: Copy>(a: &Graph<A>, b: &Graph<B>) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    let mut da: Vec<usize> = (0..a.vertex_count()).map(|v| a.degree(v)).collect();
    let mut db: Vec<usize> = (0..b.vertex_count()).map(|v| b.degree(v)).collect();
    da.sort_unstable();
    db.sort_unstable();
    if da != db {
        return false;
    }
    canonical_code(a) == canonical_code(b)
}

/// Counts the automorphisms of `g` (permutations mapping the graph onto
/// itself). The identity counts, so the result is ≥ 1.
///
/// # Panics
/// Panics if `g` exceeds [`MAX_CANONICAL_VERTICES`] vertices.
#[must_use]
pub fn automorphism_count<W: Copy>(g: &Graph<W>) -> usize {
    let n = g.vertex_count();
    assert!(n <= MAX_CANONICAL_VERTICES);
    if n == 0 {
        return 1;
    }
    let mut count = 0usize;
    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];
    automorphism_rec(g, &mut perm, &mut used, 0, &mut count);
    count
}

fn automorphism_rec<W: Copy>(
    g: &Graph<W>,
    perm: &mut [usize],
    used: &mut [bool],
    depth: usize,
    count: &mut usize,
) {
    let n = g.vertex_count();
    if depth == n {
        *count += 1;
        return;
    }
    for candidate in 0..n {
        if used[candidate] || g.degree(candidate) != g.degree(depth) {
            continue;
        }
        // Check consistency with already-assigned vertices.
        let consistent =
            (0..depth).all(|prev| g.has_edge(depth, prev) == g.has_edge(candidate, perm[prev]));
        if consistent {
            perm[depth] = candidate;
            used[candidate] = true;
            automorphism_rec(g, perm, used, depth + 1, count);
            used[candidate] = false;
            perm[depth] = usize::MAX;
        }
    }
}

/// Encodes the adjacency of `g` under permutation `perm` as packed
/// upper-triangle rows: `rows[i]` holds bits for edges (i, j), j > i.
fn encode<W: Copy>(g: &Graph<W>, perm: &[usize]) -> Vec<u64> {
    let n = g.vertex_count();
    let mut rows = vec![0u64; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if g.has_edge(perm[i], perm[j]) {
                rows[i] |= 1 << j;
            }
        }
    }
    rows
}

fn permute_minimize<W: Copy>(
    g: &Graph<W>,
    perm: &mut Vec<usize>,
    depth: usize,
    best: &mut Option<Vec<u64>>,
) {
    let n = g.vertex_count();
    if depth == n {
        let code = encode(g, perm);
        if best.as_ref().is_none_or(|b| code < *b) {
            *best = Some(code);
        }
        return;
    }
    for i in depth..n {
        perm.swap(depth, i);
        permute_minimize(g, perm, depth + 1, best);
        perm.swap(depth, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternGraph;

    #[test]
    fn isomorphic_rings_detected_under_relabeling() {
        let a = PatternGraph::ring(5);
        // Same ring with scrambled labels: 0-2-4-1-3-0
        let b = PatternGraph::from_edges(
            5,
            &[(0, 2, ()), (2, 4, ()), (4, 1, ()), (1, 3, ()), (3, 0, ())],
        )
        .unwrap();
        assert!(are_isomorphic(&a, &b));
        assert_eq!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn non_isomorphic_same_degree_sequence() {
        // C6 vs two triangles: both 2-regular on 6 vertices with 6 edges.
        let c6 = PatternGraph::ring(6);
        let two_triangles = PatternGraph::from_edges(
            6,
            &[
                (0, 1, ()),
                (1, 2, ()),
                (0, 2, ()),
                (3, 4, ()),
                (4, 5, ()),
                (3, 5, ()),
            ],
        )
        .unwrap();
        assert!(!are_isomorphic(&c6, &two_triangles));
    }

    #[test]
    fn chain_vs_star_differ() {
        let chain = PatternGraph::chain(4);
        let star = PatternGraph::star(4);
        assert_eq!(chain.edge_count(), star.edge_count());
        assert!(!are_isomorphic(&chain, &star));
    }

    #[test]
    fn automorphism_counts_of_known_graphs() {
        // Cycle C_n has 2n automorphisms (dihedral group).
        assert_eq!(automorphism_count(&PatternGraph::ring(3)), 6);
        assert_eq!(automorphism_count(&PatternGraph::ring(4)), 8);
        assert_eq!(automorphism_count(&PatternGraph::ring(5)), 10);
        // Path P_n has 2 automorphisms for n >= 2.
        assert_eq!(automorphism_count(&PatternGraph::chain(4)), 2);
        // Star K_{1,n-1} has (n-1)! automorphisms.
        assert_eq!(automorphism_count(&PatternGraph::star(4)), 6);
        // Complete graph K_n has n!.
        assert_eq!(automorphism_count(&PatternGraph::all_to_all(4)), 24);
        // Edgeless graph on n vertices: n!.
        assert_eq!(automorphism_count(&PatternGraph::new(3)), 6);
        // Empty graph: exactly the identity.
        assert_eq!(automorphism_count(&PatternGraph::new(0)), 1);
    }

    #[test]
    fn vertex_count_mismatch_is_not_isomorphic() {
        assert!(!are_isomorphic(
            &PatternGraph::ring(4),
            &PatternGraph::ring(5)
        ));
    }

    #[test]
    fn weights_are_ignored() {
        let mut a: Graph<f64> = Graph::new(3);
        a.add_edge(0, 1, 1.0).unwrap();
        let mut b: Graph<f64> = Graph::new(3);
        b.add_edge(1, 2, 99.0).unwrap();
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_large_graph_panics() {
        let g = PatternGraph::ring(11);
        let _ = canonical_code(&g);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// The canonical code is invariant under arbitrary relabeling, and
        /// automorphism counts match between a graph and its relabeling.
        #[test]
        fn canonical_code_invariant_under_permutation(
            n in 1usize..7,
            edges in proptest::collection::vec((0usize..7, 0usize..7), 0..12),
            perm_seed in proptest::prelude::any::<u64>(),
        ) {
            let mut g = PatternGraph::new(n);
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v { let _ = g.set_edge(u, v, ()); }
            }
            // Deterministic permutation from the seed (Fisher-Yates with a
            // tiny LCG; no rand dependency needed here).
            let mut perm: Vec<usize> = (0..n).collect();
            let mut state = perm_seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let mut h = PatternGraph::new(n);
            for (u, v, ()) in g.edges() {
                h.add_edge(perm[u], perm[v], ()).unwrap();
            }
            proptest::prop_assert_eq!(canonical_code(&g), canonical_code(&h));
            proptest::prop_assert!(are_isomorphic(&g, &h));
            proptest::prop_assert_eq!(automorphism_count(&g), automorphism_count(&h));
        }
    }
}
