//! A small dynamic bitset backed by `u64` blocks.
//!
//! Hardware and application graphs in MAPA have at most a few dozen
//! vertices, so a handful of `u64` words covers every use. The type exists
//! (rather than `Vec<bool>`) because adjacency-row intersection is the inner
//! loop of the subgraph matcher: candidate filtering is a word-wise `AND`.

use std::fmt;

const BITS: usize = u64::BITS as usize;

/// A fixed-capacity bitset over `0..len`.
///
/// All operations that take indices panic when the index is out of bounds,
/// mirroring slice semantics; binary operations panic on length mismatch.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset with capacity for `len` bits, all zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Creates a bitset of `len` bits, all set to one.
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..s.blocks.len() {
            s.blocks[i] = u64::MAX;
        }
        s.trim();
        s
    }

    /// Builds a bitset from bit indices.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    #[must_use]
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut s = Self::new(len);
        for &i in indices {
            s.insert(i);
        }
        s
    }

    /// The bit capacity of the set (not the number of set bits).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// The backing `u64` blocks, least-significant bits first. Bits at or
    /// beyond [`BitSet::len`] are always zero, so two sets of equal length
    /// are equal iff their words are — the basis for cheap occupancy
    /// fingerprints.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.blocks
    }

    /// Tests bit `i`.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        self.blocks[i / BITS] >> (i % BITS) & 1 == 1
    }

    /// Sets bit `i`. Returns `true` if the bit was previously clear.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let block = &mut self.blocks[i / BITS];
        let mask = 1u64 << (i % BITS);
        let was_clear = *block & mask == 0;
        *block |= mask;
        was_clear
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let block = &mut self.blocks[i / BITS];
        let mask = 1u64 << (i % BITS);
        let was_set = *block & mask != 0;
        *block &= !mask;
        was_set
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_len(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_len(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference (`self &= !other`).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        self.check_len(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Returns `true` when `self` and `other` share no set bit.
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check_len(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Returns `true` when every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check_len(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, &block)| BlockBits {
                block,
                base: bi * BITS,
            })
    }

    /// Index of the lowest set bit, if any.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects set bit indices into a vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    fn check_len(&self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "bitset length mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// Zeroes bits beyond `len` in the final block.
    fn trim(&mut self) {
        let extra = self.blocks.len() * BITS - self.len;
        if extra > 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

struct BlockBits {
    block: u64,
    base: usize,
}

impl Iterator for BlockBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let tz = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(self.base + tz)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_empty() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.len(), 100);
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = BitSet::new(70);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(69));
        assert!(!s.insert(69), "second insert reports already-set");
        assert_eq!(s.count(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.to_vec(), vec![0, 64, 69]);
    }

    #[test]
    fn full_sets_exactly_len_bits() {
        for len in [0, 1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(len);
            assert_eq!(s.count(), len, "len={len}");
            assert_eq!(s.to_vec(), (0..len).collect::<Vec<_>>());
        }
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(10, &[1, 3, 5, 7]);
        let b = BitSet::from_indices(10, &[3, 4, 5]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 3, 4, 5, 7]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![3, 5]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 7]);

        assert!(!a.is_disjoint(&b));
        assert!(d.is_disjoint(&b));
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn first_and_iter_order() {
        let s = BitSet::from_indices(130, &[129, 2, 64]);
        assert_eq!(s.first(), Some(2));
        assert_eq!(s.to_vec(), vec![2, 64, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        let s = BitSet::new(5);
        let _ = s.contains(5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = BitSet::new(5);
        let b = BitSet::new(6);
        a.union_with(&b);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::full(77);
        s.clear();
        assert!(s.is_empty());
    }

    proptest! {
        #[test]
        fn model_matches_vec_bool(len in 1usize..200, ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..64)) {
            let mut s = BitSet::new(len);
            let mut model = vec![false; len];
            for (i, set) in ops {
                let i = i % len;
                if set {
                    s.insert(i);
                    model[i] = true;
                } else {
                    s.remove(i);
                    model[i] = false;
                }
            }
            let expect: Vec<usize> = model
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect();
            prop_assert_eq!(s.to_vec(), expect);
            prop_assert_eq!(s.count(), model.iter().filter(|&&b| b).count());
        }

        #[test]
        fn de_morgan_difference(len in 1usize..130,
                                xs in proptest::collection::vec(0usize..130, 0..40),
                                ys in proptest::collection::vec(0usize..130, 0..40)) {
            let xs: Vec<usize> = xs.into_iter().map(|i| i % len).collect();
            let ys: Vec<usize> = ys.into_iter().map(|i| i % len).collect();
            let a = BitSet::from_indices(len, &xs);
            let b = BitSet::from_indices(len, &ys);
            // (a \ b) ∪ (a ∩ b) == a
            let mut diff = a.clone();
            diff.difference_with(&b);
            let mut inter = a.clone();
            inter.intersect_with(&b);
            let mut rebuilt = diff.clone();
            rebuilt.union_with(&inter);
            prop_assert_eq!(rebuilt, a.clone());
            prop_assert!(diff.is_disjoint(&inter) || diff.is_empty() || inter.is_empty());
        }
    }
}
