//! Small labeled undirected graphs for the MAPA allocation framework.
//!
//! MAPA ([Ranganath et al., SC '21]) abstracts a multi-accelerator *server*
//! as a weighted hardware graph and a multi-accelerator *application* as a
//! small unweighted pattern graph. Both are tiny by graph-processing
//! standards (2–64 vertices), so this crate favours dense adjacency bitsets
//! and exact algorithms over asymptotic cleverness.
//!
//! The main types:
//!
//! * [`Graph`] — an undirected graph with per-edge weights of any `Copy`
//!   type. Hardware graphs use `f64` bandwidths, pattern graphs use `()`.
//! * [`BitSet`] — a dynamic bitset used for adjacency rows and vertex sets.
//! * [`canonical`] — canonical adjacency codes for comparing small graphs
//!   up to isomorphism (used heavily in tests and for pattern deduplication).
//! * [`dot`] — Graphviz DOT export for debugging and documentation.
//!
//! # Example
//!
//! ```
//! use mapa_graph::Graph;
//!
//! // A triangle with bandwidth-like weights.
//! let mut g: Graph<f64> = Graph::new(3);
//! g.add_edge(0, 1, 50.0).unwrap();
//! g.add_edge(1, 2, 25.0).unwrap();
//! g.add_edge(0, 2, 12.0).unwrap();
//! assert_eq!(g.edge_count(), 3);
//! assert!((g.total_weight() - 87.0).abs() < 1e-12);
//! ```
//!
//! [Ranganath et al., SC '21]: https://doi.org/10.1145/3458817.3480853

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod canonical;
pub mod dot;
mod error;
mod graph;

pub use bitset::BitSet;
pub use error::GraphError;
pub use graph::{EdgeIter, Graph, NeighborIter, PatternGraph, WeightedGraph};
