//! Error type for graph construction and manipulation.

use std::fmt;

/// Errors produced by [`crate::Graph`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex index was `>=` the number of vertices.
    VertexOutOfRange {
        /// The offending index.
        vertex: usize,
        /// The number of vertices in the graph.
        len: usize,
    },
    /// A self-loop (`u == v`) was requested; MAPA graphs are simple.
    SelfLoop(usize),
    /// The edge already exists and duplicate insertion was not requested.
    DuplicateEdge(usize, usize),
    /// The edge does not exist.
    MissingEdge(usize, usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, len } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {len} vertices"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
        }
    }
}

impl std::error::Error for GraphError {}
