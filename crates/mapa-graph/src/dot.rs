//! Graphviz DOT export for graphs.
//!
//! Useful for eyeballing hardware topologies (the paper's Fig. 1 and
//! Fig. 17) and application patterns (Fig. 8). The output is deterministic:
//! vertices ascending, edges in upper-triangle order.

use crate::Graph;
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the `graph <name> { ... }` header.
    pub name: String,
    /// Optional vertex labels; falls back to the vertex index.
    pub vertex_labels: Vec<String>,
    /// When true, edge weights are rendered as `label=` attributes.
    pub show_weights: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            name: "G".to_string(),
            vertex_labels: vec![],
            show_weights: true,
        }
    }
}

/// Renders `g` as an undirected Graphviz DOT document.
#[must_use]
pub fn to_dot<W: Copy + std::fmt::Display>(g: &Graph<W>, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(&opts.name));
    for v in 0..g.vertex_count() {
        let label = opts
            .vertex_labels
            .get(v)
            .cloned()
            .unwrap_or_else(|| v.to_string());
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(&label));
    }
    for (u, v, w) in g.edges() {
        if opts.show_weights {
            let _ = writeln!(out, "  n{u} -- n{v} [label=\"{w}\"];");
        } else {
            let _ = writeln!(out, "  n{u} -- n{v};");
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "G".to_string()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, PatternGraph};

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g: Graph<f64> = Graph::from_edges(3, &[(0, 1, 50.0), (1, 2, 12.0)]).unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("graph G {"));
        assert!(dot.contains("n0 [label=\"0\"];"));
        assert!(dot.contains("n2 [label=\"2\"];"));
        assert!(dot.contains("n0 -- n1 [label=\"50\"];"));
        assert!(dot.contains("n1 -- n2 [label=\"12\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_and_weightless_mode() {
        let g = PatternGraph::ring(3).map_weights(|_, _, ()| 1.0);
        let opts = DotOptions {
            name: "dgx 1".into(),
            vertex_labels: vec!["GPU0".into(), "GPU1".into()],
            show_weights: false,
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.starts_with("graph dgx_1 {"), "{dot}");
        assert!(dot.contains("label=\"GPU0\""));
        // Missing third label falls back to the index.
        assert!(dot.contains("n2 [label=\"2\"];"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(!dot.contains("label=\"1\"];\n  n0 -- n1 [label"));
    }

    #[test]
    fn escaping_quotes() {
        let g: Graph<f64> = Graph::new(1);
        let opts = DotOptions {
            vertex_labels: vec!["a\"b".into()],
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("a\\\"b"));
    }

    #[test]
    fn empty_graph_renders() {
        let g: Graph<f64> = Graph::new(0);
        let dot = to_dot(&g, &DotOptions::default());
        assert_eq!(dot, "graph G {\n}\n");
    }
}
