//! The core undirected weighted graph type.

use crate::{BitSet, GraphError};

/// An undirected simple graph with `Copy` edge weights.
///
/// Vertices are dense indices `0..n`. Adjacency is stored both as per-vertex
/// bitset rows (for O(words) intersection in the matcher) and as an `n × n`
/// weight matrix (graphs here are tiny, so density is the right trade).
///
/// Two aliases cover the MAPA use-cases:
/// * [`WeightedGraph`] (`Graph<f64>`) — hardware graphs, weights in GB/s;
/// * [`PatternGraph`] (`Graph<()>`) — application pattern graphs.
#[derive(Clone, PartialEq)]
pub struct Graph<W> {
    n: usize,
    adj: Vec<BitSet>,
    weights: Vec<Option<W>>, // row-major n × n, both triangles mirrored
    edge_count: usize,
}

/// Hardware-style graph: edge weights are link bandwidths in GB/s.
pub type WeightedGraph = Graph<f64>;

/// Application-style pattern graph: edges carry no weight.
pub type PatternGraph = Graph<()>;

impl<W: Copy> Graph<W> {
    /// Creates a graph with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: (0..n).map(|_| BitSet::new(n)).collect(),
            weights: vec![None; n * n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    /// Returns the first construction error (out-of-range vertex, self-loop,
    /// or duplicate edge).
    pub fn from_edges(n: usize, edges: &[(usize, usize, W)]) -> Result<Self, GraphError> {
        let mut g = Self::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Builds the complete graph on `n` vertices with uniform weight `w`.
    #[must_use]
    pub fn complete(n: usize, w: W) -> Self {
        let mut g = Self::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, w).expect("complete graph edges are valid");
            }
        }
        g
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Inserts the undirected edge `(u, v)` with weight `w`.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-loops, and duplicates.
    pub fn add_edge(&mut self, u: usize, v: usize, w: W) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.adj[u].contains(v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        self.weights[u * self.n + v] = Some(w);
        self.weights[v * self.n + u] = Some(w);
        self.edge_count += 1;
        Ok(())
    }

    /// Inserts edge `(u, v)` or overwrites its weight if present.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints and self-loops.
    pub fn set_edge(&mut self, u: usize, v: usize, w: W) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !self.adj[u].contains(v) {
            self.adj[u].insert(v);
            self.adj[v].insert(u);
            self.edge_count += 1;
        }
        self.weights[u * self.n + v] = Some(w);
        self.weights[v * self.n + u] = Some(w);
        Ok(())
    }

    /// Removes edge `(u, v)`, returning its weight.
    ///
    /// # Errors
    /// Returns [`GraphError::MissingEdge`] if absent (or endpoints invalid).
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<W, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v || !self.adj[u].contains(v) {
            return Err(GraphError::MissingEdge(u, v));
        }
        self.adj[u].remove(v);
        self.adj[v].remove(u);
        let w = self.weights[u * self.n + v]
            .take()
            .expect("edge weight present");
        self.weights[v * self.n + u] = None;
        self.edge_count -= 1;
        Ok(w)
    }

    /// Tests whether edge `(u, v)` exists. Out-of-range vertices yield `false`.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && v < self.n && u != v && self.adj[u].contains(v)
    }

    /// The weight of edge `(u, v)` if it exists.
    #[must_use]
    pub fn weight(&self, u: usize, v: usize) -> Option<W> {
        if u < self.n && v < self.n {
            self.weights[u * self.n + v]
        } else {
            None
        }
    }

    /// Vertex degree.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].count()
    }

    /// The adjacency row of `u` as a bitset.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn adjacency_row(&self, u: usize) -> &BitSet {
        &self.adj[u]
    }

    /// Iterates over the neighbors of `u` in ascending order.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> NeighborIter<'_> {
        NeighborIter {
            inner: Box::new(self.adj[u].iter()),
        }
    }

    /// Iterates over all edges as `(u, v, w)` with `u < v`, ordered
    /// lexicographically.
    pub fn edges(&self) -> EdgeIter<'_, W> {
        EdgeIter {
            g: self,
            u: 0,
            v: 0,
        }
    }

    /// The induced subgraph on `vertices`, relabelled `0..vertices.len()` in
    /// the given order. Edge `(i, j)` exists in the result iff
    /// `(vertices[i], vertices[j])` exists here.
    ///
    /// # Errors
    /// Rejects out-of-range or duplicate vertices.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> Result<Graph<W>, GraphError> {
        let mut seen = BitSet::new(self.n);
        for &v in vertices {
            self.check_vertex(v)?;
            if !seen.insert(v) {
                return Err(GraphError::DuplicateEdge(v, v));
            }
        }
        let mut g = Graph::new(vertices.len());
        for (i, &vi) in vertices.iter().enumerate() {
            for (j, &vj) in vertices.iter().enumerate().skip(i + 1) {
                if let Some(w) = self.weight(vi, vj) {
                    g.add_edge(i, j, w).expect("induced edges valid");
                }
            }
        }
        Ok(g)
    }

    /// The induced subgraph on the vertices *not* in `removed`, together
    /// with the mapping from new index to original vertex id.
    ///
    /// This is the "remaining hardware graph" `G ∖ M` of the paper's
    /// Preserved Bandwidth definition (Eq. 3).
    ///
    /// # Panics
    /// Panics if `removed.len() != vertex_count()`.
    #[must_use]
    pub fn without_vertices(&self, removed: &BitSet) -> (Graph<W>, Vec<usize>) {
        assert_eq!(
            removed.len(),
            self.n,
            "bitset capacity must equal vertex count"
        );
        let keep: Vec<usize> = (0..self.n).filter(|&v| !removed.contains(v)).collect();
        let g = self
            .induced_subgraph(&keep)
            .expect("kept vertices are valid and unique");
        (g, keep)
    }

    /// True when the graph is connected (the empty graph counts as
    /// connected, a single vertex is connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut visited = BitSet::new(self.n);
        let mut stack = vec![0usize];
        visited.insert(0);
        while let Some(u) = stack.pop() {
            for v in self.adj[u].iter() {
                if visited.insert(v) {
                    stack.push(v);
                }
            }
        }
        visited.count() == self.n
    }

    /// Applies `f` to every edge weight, producing a graph of a new weight
    /// type with identical structure.
    #[must_use]
    pub fn map_weights<V: Copy>(&self, mut f: impl FnMut(usize, usize, W) -> V) -> Graph<V> {
        let mut g = Graph::new(self.n);
        for (u, v, w) in self.edges() {
            g.add_edge(u, v, f(u, v, w)).expect("structure preserved");
        }
        g
    }

    /// Drops all weights, producing the underlying pattern graph.
    #[must_use]
    pub fn to_pattern(&self) -> PatternGraph {
        self.map_weights(|_, _, _| ())
    }

    fn check_vertex(&self, v: usize) -> Result<(), GraphError> {
        if v < self.n {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                len: self.n,
            })
        }
    }
}

impl Graph<f64> {
    /// Sum of all edge weights — the "aggregate bandwidth" of a hardware
    /// graph when weights are link bandwidths.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }
}

impl PatternGraph {
    /// A ring (cycle) pattern on `n` vertices. For `n == 2` this is a single
    /// edge; `n < 2` yields an edgeless graph.
    ///
    /// Matches the NCCL ring topology of the paper's Fig. 8 (left).
    #[must_use]
    pub fn ring(n: usize) -> Self {
        let mut g = Self::new(n);
        if n == 2 {
            g.add_edge(0, 1, ()).unwrap();
        } else if n > 2 {
            for i in 0..n {
                g.add_edge(i, (i + 1) % n, ()).unwrap();
            }
        }
        g
    }

    /// A balanced binary tree pattern on `n` vertices (vertex 0 is the
    /// root; vertex `i` links to parent `(i - 1) / 2`).
    ///
    /// Matches the NCCL tree topology of the paper's Fig. 8 (middle).
    #[must_use]
    pub fn binary_tree(n: usize) -> Self {
        let mut g = Self::new(n);
        for i in 1..n {
            g.add_edge(i, (i - 1) / 2, ()).unwrap();
        }
        g
    }

    /// A chain (path) pattern on `n` vertices.
    #[must_use]
    pub fn chain(n: usize) -> Self {
        let mut g = Self::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i, ()).unwrap();
        }
        g
    }

    /// A star pattern: vertex 0 connected to all others (parameter-server
    /// style communication).
    #[must_use]
    pub fn star(n: usize) -> Self {
        let mut g = Self::new(n);
        for i in 1..n {
            g.add_edge(0, i, ()).unwrap();
        }
        g
    }

    /// The complete pattern on `n` vertices (all-to-all communication).
    #[must_use]
    pub fn all_to_all(n: usize) -> Self {
        Self::complete(n, ())
    }

    /// Ring plus tree overlay — the paper's Fig. 8 (right): NCCL selects
    /// rings or trees by transfer size, so the union of both patterns is the
    /// conservative application topology.
    #[must_use]
    pub fn ring_tree(n: usize) -> Self {
        let mut g = Self::ring(n);
        for i in 1..n {
            let p = (i - 1) / 2;
            if !g.has_edge(i, p) {
                g.add_edge(i, p, ()).unwrap();
            }
        }
        g
    }
}

impl<W: Copy + std::fmt::Debug> std::fmt::Debug for Graph<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={}, edges=[", self.n, self.edge_count)?;
        for (i, (u, v, w)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({u},{v})={w:?}")?;
        }
        write!(f, "])")
    }
}

/// Iterator over the neighbors of a vertex. See [`Graph::neighbors`].
pub struct NeighborIter<'a> {
    inner: Box<dyn Iterator<Item = usize> + 'a>,
}

impl Iterator for NeighborIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.inner.next()
    }
}

/// Iterator over all edges `(u, v, w)` with `u < v`. See [`Graph::edges`].
pub struct EdgeIter<'a, W> {
    g: &'a Graph<W>,
    u: usize,
    v: usize,
}

impl<W: Copy> Iterator for EdgeIter<'_, W> {
    type Item = (usize, usize, W);

    fn next(&mut self) -> Option<(usize, usize, W)> {
        while self.u < self.g.n {
            self.v += 1;
            if self.v >= self.g.n {
                self.u += 1;
                self.v = self.u;
                continue;
            }
            if let Some(w) = self.g.weight(self.u, self.v) {
                return Some((self.u, self.v, w));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> WeightedGraph {
        Graph::from_edges(3, &[(0, 1, 50.0), (1, 2, 25.0), (0, 2, 12.0)]).unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.weight(1, 2), Some(25.0));
        assert_eq!(g.weight(2, 1), Some(25.0));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert!((g.total_weight() - 87.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut g: WeightedGraph = Graph::new(3);
        assert_eq!(g.add_edge(1, 1, 1.0), Err(GraphError::SelfLoop(1)));
        g.add_edge(0, 1, 1.0).unwrap();
        assert_eq!(g.add_edge(1, 0, 2.0), Err(GraphError::DuplicateEdge(1, 0)));
        assert_eq!(
            g.add_edge(0, 3, 2.0),
            Err(GraphError::VertexOutOfRange { vertex: 3, len: 3 })
        );
    }

    #[test]
    fn set_edge_overwrites() {
        let mut g = triangle();
        g.set_edge(0, 1, 99.0).unwrap();
        assert_eq!(g.weight(0, 1), Some(99.0));
        assert_eq!(g.edge_count(), 3);
        g.set_edge(0, 1, 12.0).unwrap();
        assert_eq!(g.weight(1, 0), Some(12.0));
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = triangle();
        assert_eq!(g.remove_edge(2, 1), Ok(25.0));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.remove_edge(2, 1), Err(GraphError::MissingEdge(2, 1)));
    }

    #[test]
    fn edge_iterator_is_sorted_upper_triangle() {
        let g = Graph::from_edges(4, &[(2, 3, 1.0), (0, 3, 2.0), (1, 0, 3.0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 3.0), (0, 3, 2.0), (2, 3, 1.0)]);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle();
        let sub = g.induced_subgraph(&[2, 0]).unwrap();
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        // (2, 0) in g is weight 12 and becomes (0, 1) in sub.
        assert_eq!(sub.weight(0, 1), Some(12.0));
    }

    #[test]
    fn induced_subgraph_rejects_duplicates() {
        let g = triangle();
        assert!(g.induced_subgraph(&[0, 0]).is_err());
        assert!(g.induced_subgraph(&[0, 7]).is_err());
    }

    #[test]
    fn without_vertices_is_complement_induced() {
        let g = Graph::complete(5, 1.0);
        let removed = BitSet::from_indices(5, &[1, 3]);
        let (rest, map) = g.without_vertices(&removed);
        assert_eq!(map, vec![0, 2, 4]);
        assert_eq!(rest.vertex_count(), 3);
        assert_eq!(rest.edge_count(), 3); // K3
    }

    #[test]
    fn connectivity() {
        assert!(Graph::<f64>::new(0).is_connected());
        assert!(Graph::<f64>::new(1).is_connected());
        assert!(!Graph::<f64>::new(2).is_connected());
        assert!(triangle().is_connected());
        let mut g = triangle();
        g.remove_edge(0, 1).unwrap();
        assert!(g.is_connected()); // still a path
        g.remove_edge(0, 2).unwrap();
        assert!(!g.is_connected()); // vertex 0 isolated
    }

    #[test]
    fn pattern_constructors_shapes() {
        assert_eq!(PatternGraph::ring(2).edge_count(), 1);
        assert_eq!(PatternGraph::ring(5).edge_count(), 5);
        assert_eq!(PatternGraph::chain(5).edge_count(), 4);
        assert_eq!(PatternGraph::binary_tree(5).edge_count(), 4);
        assert_eq!(PatternGraph::star(5).edge_count(), 4);
        assert_eq!(PatternGraph::all_to_all(5).edge_count(), 10);
        assert!(PatternGraph::ring(5).is_connected());
        // Every vertex in a ring has degree 2.
        let r = PatternGraph::ring(6);
        assert!((0..6).all(|v| r.degree(v) == 2));
        // Ring-tree union has at least the ring edges.
        let rt = PatternGraph::ring_tree(5);
        assert!(rt.edge_count() >= 5);
        for i in 0..5 {
            assert!(rt.has_edge(i, (i + 1) % 5));
        }
    }

    #[test]
    fn ring_edge_cases() {
        assert_eq!(PatternGraph::ring(0).edge_count(), 0);
        assert_eq!(PatternGraph::ring(1).edge_count(), 0);
        // n=3 ring is a triangle, not a doubled edge.
        assert_eq!(PatternGraph::ring(3).edge_count(), 3);
    }

    #[test]
    fn map_weights_and_to_pattern() {
        let g = triangle();
        let doubled = g.map_weights(|_, _, w| w * 2.0);
        assert_eq!(doubled.weight(0, 1), Some(100.0));
        let p = g.to_pattern();
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.weight(0, 1), Some(()));
    }

    proptest! {
        #[test]
        fn induced_subgraph_preserves_adjacency(
            n in 2usize..10,
            edges in proptest::collection::vec((0usize..10, 0usize..10), 0..30),
            pick in proptest::collection::vec(0usize..10, 1..8),
        ) {
            let mut g: Graph<f64> = Graph::new(n);
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    let _ = g.set_edge(u, v, (u + v) as f64);
                }
            }
            // Deduplicate picked vertices, keep in-range.
            let mut picked: Vec<usize> = vec![];
            for p in pick {
                let p = p % n;
                if !picked.contains(&p) {
                    picked.push(p);
                }
            }
            let sub = g.induced_subgraph(&picked).unwrap();
            for i in 0..picked.len() {
                for j in 0..picked.len() {
                    prop_assert_eq!(sub.has_edge(i, j), g.has_edge(picked[i], picked[j]));
                }
            }
        }

        #[test]
        fn edge_count_matches_iterator(
            n in 1usize..12,
            edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
        ) {
            let mut g: Graph<f64> = Graph::new(n);
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    let _ = g.set_edge(u, v, 1.0);
                }
            }
            prop_assert_eq!(g.edges().count(), g.edge_count());
            let degree_sum: usize = (0..n).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
        }
    }
}
