//! Shared helpers for the paper-reproduction bench targets.
//!
//! Every table and figure of the MAPA paper has a bench target in
//! `benches/`; most are plain `harness = false` binaries that regenerate
//! the published rows/series (run them with `cargo bench`, or individually
//! with `cargo bench -p mapa-bench --bench fig13_dgxv_eval`). Two targets
//! (`ablation_matcher_backend`, `ablation_symmetry_breaking`) are Criterion
//! micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mapa_sim::stats::Summary;

/// Seeds used by the multi-seed evaluation benches. Five runs keep the
/// Table 3 quantile means stable without blowing up bench time.
pub const EVAL_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

/// Prints a banner naming the experiment and the paper artifact.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("\n================================================================");
    println!("{experiment}");
    println!("reproduces: {paper_ref}");
    println!("================================================================");
}

/// Formats a five-number summary row.
#[must_use]
pub fn summary_row(label: &str, s: &Summary) -> String {
    format!(
        "{label:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}  (n={})",
        s.min, s.p25, s.p50, s.p75, s.max, s.count
    )
}

/// Header matching [`summary_row`].
#[must_use]
pub fn summary_header(label: &str) -> String {
    format!(
        "{label:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "min", "p25", "p50", "p75", "max"
    )
}

/// Mean of a slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Renders a crude ASCII sparkline of a series (for curve benches).
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    if values.is_empty() || max <= min {
        return String::new();
    }
    values
        .iter()
        .map(|v| {
            let idx = ((v - min) / (max - min) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[2.0, 2.0]), "");
    }

    #[test]
    fn summary_row_formats() {
        let s = mapa_sim::stats::summarize(&[1.0, 2.0, 3.0]);
        let row = summary_row("x", &s);
        assert!(row.contains("(n=3)"));
    }
}
