//! Fig. 18 — novel 16-GPU topologies: predicted EffBW distributions for
//! bandwidth-sensitive workloads on Torus-2d and Cube-mesh.
//!
//! Expected shape (per the paper): Preserve lifts the lower tail — its MIN
//! reaches the other policies' 25th percentile; on the irregular Cube-mesh
//! the gap widens ("as hardware topologies scale and become more complex
//! and non-uniform, the greater the need for pattern-aware policies").

use mapa_bench::{banner, summary_header, summary_row};
use mapa_sim::{experiment, stats};
use mapa_topology::machines;
use mapa_workloads::generator;

fn main() {
    banner(
        "Fig. 18: 16-GPU Torus-2d and Cube-mesh, sensitive workloads",
        "paper Fig. 18(a)/(b)",
    );
    for topology in [machines::torus_2d(), machines::cube_mesh()] {
        println!("\n=== {} ===", topology.name());
        let jobs = generator::paper_job_mix(3);
        let cmp = experiment::compare_policies(&topology, &jobs);
        println!("predicted EffBW of BW-sensitive multi-GPU jobs (GB/s):");
        println!("{}", summary_header("policy"));
        let mut mins = Vec::new();
        let mut p25s = Vec::new();
        for rep in &cmp.reports {
            let bws = rep.predicted_eff_bws(|r| r.job.bandwidth_sensitive && r.job.num_gpus() >= 2);
            let s = stats::summarize(&bws);
            println!("{}", summary_row(&rep.policy_name, &s));
            mins.push((rep.policy_name.clone(), s.min));
            p25s.push((rep.policy_name.clone(), s.p25));
        }
        let preserve_min = mins.iter().find(|(n, _)| n == "Preserve").unwrap().1;
        let baseline_p25 = p25s.iter().find(|(n, _)| n == "baseline").unwrap().1;
        println!(
            "\nshape check: Preserve MIN ({preserve_min:.1}) vs baseline 25th \
             percentile ({baseline_p25:.1}) — the paper has Preserve's MIN at \
             or above the other policies' p25."
        );

        println!("\nexecution time of BW-sensitive multi-GPU jobs (s):");
        println!("{}", summary_header("policy"));
        for rep in &cmp.reports {
            let times = rep.execution_times(|r| r.job.bandwidth_sensitive && r.job.num_gpus() >= 2);
            println!(
                "{}",
                summary_row(&rep.policy_name, &stats::summarize(&times))
            );
        }
    }
}
