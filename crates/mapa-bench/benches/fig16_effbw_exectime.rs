//! Fig. 16 — effective bandwidth vs execution time per workload, from
//! full multi-tenant runs.
//!
//! Expected shape: insensitive workloads are flat in EffBW; sensitive ones
//! fall as EffBW rises, with diminishing returns past ~50 GB/s.

use mapa_bench::banner;
use mapa_core::policy::AllocationPolicy;
use mapa_core::policy::{BaselinePolicy, GreedyPolicy, PreservePolicy, TopoAwarePolicy};
use mapa_model::metrics;
use mapa_sim::{JobRecord, Simulation};
use mapa_topology::machines;
use mapa_workloads::{generator, Workload};

fn main() {
    banner(
        "Fig. 16: EffBW vs execution time (real-run records)",
        "paper Fig. 16",
    );
    let dgx = machines::dgx1_v100();
    // Pool records from all four policies so the EffBW axis is well covered
    // (the paper's scatter likewise pools all real runs).
    let mut records: Vec<JobRecord> = Vec::new();
    for policy in [
        Box::new(BaselinePolicy) as Box<dyn AllocationPolicy>,
        Box::new(TopoAwarePolicy),
        Box::new(GreedyPolicy),
        Box::new(PreservePolicy),
    ] {
        let jobs = generator::paper_job_mix(2);
        records.extend(Simulation::new(dgx.clone(), policy).run(&jobs).records);
    }

    println!(
        "{:<14} {:>11} {:>26} {:>20}",
        "workload", "jobs", "corr(EffBW, exec time)", "time range (s)"
    );
    for w in Workload::cnns() {
        let pts: Vec<(&JobRecord, f64)> = records
            .iter()
            .filter(|r| r.job.workload == w && r.job.num_gpus() >= 2)
            .map(|r| (r, r.measured_eff_bw))
            .collect();
        if pts.len() < 3 {
            continue;
        }
        let bw: Vec<f64> = pts.iter().map(|(_, b)| *b).collect();
        let t: Vec<f64> = pts.iter().map(|(r, _)| r.execution_seconds).collect();
        let r = metrics::pearson(&bw, &t);
        let tmin = t.iter().copied().fold(f64::MAX, f64::min);
        let tmax = t.iter().copied().fold(f64::MIN, f64::max);
        println!(
            "{:<14} {:>11} {:>26.3} {:>20}",
            w.name(),
            pts.len(),
            r,
            format!("{tmin:.0}..{tmax:.0}")
        );
    }
    println!(
        "\npaper shape: sensitive workloads show a clear negative correlation \
         (execution time drops as EffBW grows, flattening past ~50 GB/s); \
         insensitive workloads are flat (|r| near 0)."
    );
}
