//! Criterion ablation — symmetry breaking on vs off.
//!
//! Peregrine's core trick (which MAPA inherits) is enumerating one match
//! per automorphism class instead of every vertex mapping. For a 5-ring
//! (10 automorphisms) that is a 10× reduction in matches to score; this
//! bench measures the end-to-end matcher speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapa_graph::PatternGraph;
use mapa_isomorph::{DedupMode, MatchOptions, Matcher};
use std::hint::black_box;

fn bench_symmetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_breaking");
    group.sample_size(20);
    let cases = [
        (
            "ring4_into_k8",
            PatternGraph::ring(4),
            PatternGraph::all_to_all(8),
        ),
        (
            "ring5_into_k8",
            PatternGraph::ring(5),
            PatternGraph::all_to_all(8),
        ),
        (
            "ring6_into_k10",
            PatternGraph::ring(6),
            PatternGraph::all_to_all(10),
        ),
        (
            "alltoall4_into_k8",
            PatternGraph::all_to_all(4),
            PatternGraph::all_to_all(8),
        ),
    ];
    for (name, pattern, data) in &cases {
        for (mode_name, dedup) in [
            ("canonical", DedupMode::CanonicalOnly),
            ("all_mappings", DedupMode::AllMappings),
        ] {
            let matcher = Matcher::new(MatchOptions {
                dedup,
                ..MatchOptions::default()
            });
            group.bench_with_input(
                BenchmarkId::new(mode_name, name),
                &(pattern, data),
                |b, (p, d)| {
                    b.iter(|| {
                        let found = matcher.find(black_box(*p), black_box(*d)).unwrap();
                        black_box(found.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_symmetry);
criterion_main!(benches);
