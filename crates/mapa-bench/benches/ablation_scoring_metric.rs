//! Ablation — which scoring metric matters?
//!
//! DESIGN.md calls out the paper's central design choice: score matches by
//! *predicted effective* bandwidth (+ preservation), not by aggregated
//! bandwidth. This ablation runs the same job mixes under:
//!
//! * Greedy — max AggBW (the strawman the paper keeps),
//! * EffBW-greedy — max predicted EffBW for every job, no preservation,
//! * Preserve — Algorithm 1, sensitivity-aware.
//!
//! It reports the sensitive-job execution-time quantiles for each.

use mapa_bench::{banner, mean, summary_header, summary_row, EVAL_SEEDS};
use mapa_core::policy::{AllocationPolicy, EffBwGreedyPolicy, GreedyPolicy, PreservePolicy};
use mapa_sim::{stats, Simulation};
use mapa_topology::machines;
use mapa_workloads::generator;

fn main() {
    banner(
        "Ablation: AggBW-greedy vs EffBW-greedy vs Preserve",
        "DESIGN.md ablation #1 (paper §3.4-3.5 design rationale)",
    );
    let dgx = machines::dgx1_v100();
    type PolicyFactory = fn() -> Box<dyn AllocationPolicy>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("Greedy(AggBW)", || Box::new(GreedyPolicy)),
        ("EffBW-greedy", || Box::new(EffBwGreedyPolicy)),
        ("Preserve", || Box::new(PreservePolicy)),
    ];

    println!(
        "sensitive multi-GPU execution time, pooled over {} seeds:\n",
        EVAL_SEEDS.len()
    );
    println!("{}", summary_header("policy"));
    let mut p75s: Vec<(String, f64)> = Vec::new();
    for (name, make) in &policies {
        let mut times = Vec::new();
        let mut per_seed_p75 = Vec::new();
        for &seed in &EVAL_SEEDS {
            let jobs = generator::paper_job_mix(seed);
            let rep = Simulation::new(dgx.clone(), make()).run(&jobs);
            let t = rep.execution_times(|r| r.job.bandwidth_sensitive && r.job.num_gpus() >= 2);
            per_seed_p75.push(stats::summarize(&t).p75);
            times.extend(t);
        }
        println!("{}", summary_row(name, &stats::summarize(&times)));
        p75s.push((name.to_string(), mean(&per_seed_p75)));
    }

    println!("\nmean per-seed p75 (lower is better):");
    for (name, p75) in &p75s {
        println!("  {name:<16} {p75:>8.1} s");
    }
    println!(
        "\nexpected: EffBW-based scoring beats AggBW at the tail (the Fig. 11 \
         lesson), and Preserve's sensitivity awareness does not sacrifice \
         the tail to help insensitive jobs."
    );
}
