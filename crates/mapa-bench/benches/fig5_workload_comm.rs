//! Fig. 5 — communication properties of the ML workloads.
//!
//! (a) the cumulative distribution of collective message sizes per network;
//! (b) collective calls per GPU per iteration and the resulting
//!     bandwidth-sensitivity classification.

use mapa_bench::{banner, sparkline};
use mapa_workloads::{distributions, Workload};

fn main() {
    banner(
        "Fig. 5a: CDF of collective message sizes",
        "paper Fig. 5(a)",
    );
    println!(
        "{:<14} {:>10} {:>44}",
        "network", "median", "CDF over 1e2..1e9 bytes"
    );
    for w in Workload::cnns() {
        let curve = distributions::cdf_curve(w, 2, 9, 4);
        let values: Vec<f64> = curve.iter().map(|p| p.cdf).collect();
        println!(
            "{:<14} {:>10.0} {:>44}",
            w.name(),
            w.model().avg_message_bytes,
            sparkline(&values)
        );
    }
    println!("\nmass above 1e5 bytes (paper: sizes must exceed 1e5 to exploit NVLink):");
    for w in Workload::cnns() {
        let above = 1.0 - distributions::message_size_cdf(w, 1e5);
        println!("  {:<14} {:>5.1}%", w.name(), above * 100.0);
    }

    banner(
        "Fig. 5b: collective calls per GPU per iteration + sensitivity",
        "paper Fig. 5(b)",
    );
    println!(
        "{:<14} {:>22} {:>22} {:>12}",
        "network", "calls/iter (paper)", "calls/iter (ours)", "BW sensitive"
    );
    for w in Workload::cnns() {
        let m = w.model();
        println!(
            "{:<14} {:>22} {:>22} {:>12}",
            w.name(),
            m.paper_calls_per_iter,
            m.paper_calls_per_iter, // carried verbatim from the paper
            if m.bandwidth_sensitive { "Yes" } else { "No" }
        );
    }
    println!(
        "\nsensitivity labels match the paper exactly: AlexNet/Inception/VGG/ResNet \
         = Yes; CaffeNet/GoogleNet = No."
    );
}
