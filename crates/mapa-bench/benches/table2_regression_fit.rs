//! Table 2 — the Eq. 2 regression coefficients.
//!
//! Re-runs the paper's protocol (§3.4.3): enumerate 2–5-GPU allocations on
//! DGX-1V, deduplicate by unique (x, y, z), measure EffBW with the
//! (simulated) NCCL microbenchmark, and fit θ₁…θ₁₄ by least squares over
//! the Eq. 2 features. Prints our θ next to the paper's.
//! Coefficients are not expected to match numerically (they are fitted to
//! a different microbenchmark substrate and the features are strongly
//! collinear); what must match is the *predictive quality* (see Fig. 12).

use mapa_bench::banner;
use mapa_model::{corpus, paper_coefficients, EffBwModel};
use mapa_topology::machines;

fn main() {
    banner("Table 2: regression coefficients θ1..θ14", "paper Table 2");
    let dgx = machines::dgx1_v100();
    let samples = corpus::build_corpus(&dgx, 2..=5);
    println!(
        "training corpus: {} unique (x,y,z) samples from 2-5-GPU allocations \
         (paper: 31; see EXPERIMENTS.md)",
        samples.len()
    );
    let model = EffBwModel::fit(&samples).expect("corpus large enough");
    let paper = paper_coefficients();

    let names = [
        "x",
        "y",
        "z",
        "1/(x+1)",
        "1/(y+1)",
        "1/(z+1)",
        "xy",
        "yz",
        "zx",
        "1/(xy+1)",
        "1/(yz+1)",
        "1/(zx+1)",
        "xyz",
        "1/(xyz+1)",
    ];
    println!(
        "\n{:>4} {:<10} {:>12} {:>12}",
        "θ", "feature", "ours", "paper"
    );
    for (i, name) in names.iter().enumerate() {
        println!(
            "{:>4} {:<10} {:>12.3} {:>12.3}",
            format!("θ{}", i + 1),
            name,
            model.coefficients()[i],
            paper[i]
        );
    }

    let q = model.evaluate(&samples);
    println!(
        "\nfit quality on training corpus: RelErr {:.4}  RMSE {:.3}  MAE {:.3}  r {:.3}",
        q.relative_error, q.rmse, q.mae, q.pearson_r
    );
    println!("paper reports RelErr 0.0709, RMSE 1.5153, MAE 7.0539 on its corpus.");
}
