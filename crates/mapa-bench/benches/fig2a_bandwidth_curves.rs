//! Fig. 2a — all-reduce bandwidth vs transfer size for each link class.
//!
//! Paper protocol: NCCL all-reduce on DGX-1V GPU pairs (1,5) double NVLink,
//! (1,2) single NVLink, (1,6) PCIe (1-indexed; 0-indexed (0,4)/(0,1)/(0,5)).
//! Expected shape: each curve ramps up between 10⁵ and 10⁷ bytes, the
//! relative order double > single > PCIe holds at every size, plateaus at
//! ≈50 / ≈25 / ≈12 GB/s.

use mapa_bench::{banner, sparkline};
use mapa_interconnect::effbw;
use mapa_topology::machines;

fn main() {
    banner(
        "Fig. 2a: Bandwidth characterization (NCCL all-reduce vs size)",
        "paper Fig. 2(a)",
    );
    let dgx = machines::dgx1_v100();
    let pairs = [
        ("NV2-Double (0,4)", vec![0usize, 4]),
        ("NV2-Single (0,1)", vec![0, 1]),
        ("PCIe       (0,5)", vec![0, 5]),
    ];

    print!("{:<18}", "bytes");
    for (name, _) in &pairs {
        print!(" {name:>18}");
    }
    println!();

    let mut curves: Vec<Vec<f64>> = vec![vec![]; pairs.len()];
    for exp in 4..=9 {
        for frac in [0.0, 0.5] {
            let bytes = 10f64.powf(exp as f64 + frac);
            print!("{bytes:<18.0}");
            for (i, (_, gpus)) in pairs.iter().enumerate() {
                let bw = effbw::measure_at_size(&dgx, gpus, bytes);
                curves[i].push(bw);
                print!(" {bw:>18.2}");
            }
            println!();
        }
    }

    println!();
    for ((name, _), curve) in pairs.iter().zip(&curves) {
        println!(
            "{name:<18} {}  plateau {:.1} GB/s",
            sparkline(curve),
            curve.last().unwrap()
        );
    }
    println!(
        "\npaper plateaus: double ≈ 45–50, single ≈ 22–25, PCIe ≈ 10–12 GB/s; \
         ramp between 1e5 and 1e7 bytes"
    );
}
