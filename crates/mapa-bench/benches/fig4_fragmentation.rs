//! Fig. 4 — fragmentation of GPU allocations under the baseline policy.
//!
//! Paper protocol: 100 ML training jobs with 2–5 GPUs on DGX-1V under the
//! lowest-ID baseline scheduler; plot the distribution of
//! `BW_Allocated / BW_IdealAllocation` per job size.
//! Expected shape: a large majority of jobs below 1.0; smaller jobs spread
//! wider (3-GPU jobs: 75% of jobs at ≤ 0.8, 25% at ≤ 0.55 in the paper).

use mapa_bench::{banner, summary_header, summary_row};
use mapa_core::policy::BaselinePolicy;
use mapa_sim::{stats, Simulation};
use mapa_topology::machines;
use mapa_workloads::{generator, Workload};

fn main() {
    banner(
        "Fig. 4: BW_Allocated / BW_IdealAllocation under baseline",
        "paper Fig. 4",
    );
    let cfg = generator::JobMixConfig {
        job_count: 100,
        gpus_min: 2,
        gpus_max: 5,
        workloads: Workload::cnns().to_vec(),
        iteration_jitter: 0.2,
        ..generator::JobMixConfig::default()
    };
    let jobs = generator::generate_jobs(&cfg, 4);
    let report = Simulation::new(machines::dgx1_v100(), Box::new(BaselinePolicy)).run(&jobs);

    println!("{}", summary_header("numGPUs"));
    for k in 2..=5 {
        let q: Vec<f64> = report
            .records
            .iter()
            .filter(|r| r.job.num_gpus() == k)
            .map(|r| r.allocation_quality)
            .collect();
        if q.is_empty() {
            continue;
        }
        println!("{}", summary_row(&k.to_string(), &stats::summarize(&q)));
    }

    let all: Vec<f64> = report
        .records
        .iter()
        .map(|r| r.allocation_quality)
        .collect();
    let sub = all.iter().filter(|&&q| q < 0.999).count();
    println!(
        "\n{sub}/{} jobs sub-ideal ({}%).",
        all.len(),
        sub * 100 / all.len()
    );
    println!(
        "paper: \"a large majority of jobs receive suboptimal allocations\"; \
         3-GPU jobs: 75% at ≤ 0.8 quality, 25% at ≤ 0.55."
    );
}
