//! Fig. 6 — execution time vs training iterations, NVLink vs PCIe,
//! 2 and 4 GPUs, for a bandwidth-insensitive (GoogleNet) and a
//! bandwidth-sensitive (VGG-16) network.
//!
//! Expected shape: linear in iterations everywhere; the NVLink and PCIe
//! lines nearly coincide for GoogleNet and diverge strongly for VGG-16.

use mapa_bench::banner;
use mapa_topology::machines;
use mapa_workloads::{perf, Workload};

fn main() {
    banner(
        "Fig. 6: execution time vs iterations",
        "paper Fig. 6(a)/(b)",
    );
    let dgx = machines::dgx1_v100();
    // NVLink vs PCIe allocations at 2 and 4 GPUs.
    let allocs: [(&str, Vec<usize>); 4] = [
        ("2-GPU NVLink", vec![0, 3]),
        ("2-GPU PCIe", vec![0, 5]),
        ("4-GPU NVLink", vec![0, 1, 2, 3]),
        ("4-GPU fragmented", vec![0, 1, 4, 5]),
    ];

    for w in [Workload::GoogleNet, Workload::Vgg16] {
        let label = if w.is_bandwidth_sensitive() {
            "sensitive"
        } else {
            "insensitive"
        };
        println!("\n-- {} ({label}) --", w.name());
        print!("{:<10}", "iters");
        for (name, _) in &allocs {
            print!(" {name:>18}");
        }
        println!();
        for iters in [1000u64, 2000, 3000, 4000, 5000, 6000, 7000] {
            print!("{iters:<10}");
            for (_, gpus) in &allocs {
                let t = perf::execution_time(w, &dgx, gpus, iters);
                print!(" {t:>18.0}");
            }
            println!();
        }
        // Divergence ratio at 7000 iterations.
        let nv = perf::execution_time(w, &dgx, &allocs[0].1, 7000);
        let pcie = perf::execution_time(w, &dgx, &allocs[1].1, 7000);
        println!("   PCIe/NVLink ratio at 7000 iters: {:.2}x", pcie / nv);
    }
    println!(
        "\npaper shape: GoogleNet's NVLink and PCIe curves nearly overlap; \
         VGG-16's separate by ~2-3x and the gap grows linearly with iterations."
    );
}
