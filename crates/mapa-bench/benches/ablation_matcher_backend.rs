//! Criterion ablation — VF2 vs Ullmann vs brute force subgraph matching.
//!
//! The paper builds its matching stage on Peregrine; we implement VF2-style
//! search (default), Ullmann's bit-matrix algorithm, and a brute-force
//! reference. This bench quantifies the gap on MAPA-shaped inputs
//! (ring patterns into complete 8/16-vertex hardware graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapa_graph::PatternGraph;
use mapa_isomorph::{Backend, MatchOptions, Matcher};
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher_backend");
    group.sample_size(20);
    let cases = [
        (
            "ring4_into_k8",
            PatternGraph::ring(4),
            PatternGraph::all_to_all(8),
        ),
        (
            "ring5_into_k8",
            PatternGraph::ring(5),
            PatternGraph::all_to_all(8),
        ),
        (
            "ring5_into_k16",
            PatternGraph::ring(5),
            PatternGraph::all_to_all(16),
        ),
        (
            "tree5_into_k8",
            PatternGraph::binary_tree(5),
            PatternGraph::all_to_all(8),
        ),
    ];
    for (name, pattern, data) in &cases {
        for backend in [Backend::Vf2, Backend::Ullmann, Backend::BruteForce] {
            // Brute force on K16 is too slow for a tight loop.
            if *name == "ring5_into_k16" && backend == Backend::BruteForce {
                continue;
            }
            let matcher = Matcher::new(MatchOptions {
                backend,
                ..MatchOptions::default()
            });
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}"), name),
                &(pattern, data),
                |b, (p, d)| {
                    b.iter(|| {
                        let found = matcher.find(black_box(*p), black_box(*d)).unwrap();
                        black_box(found.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
