//! Fig. 2b — CNN training speedup on NVLink pairs relative to PCIe.
//!
//! Paper protocol: train each network on 2 GPUs placed on a double-NVLink,
//! single-NVLink and PCIe pair; normalize execution time to the PCIe pair.
//! Expected shape: VGG-16 ≈ 3× on double NVLink, GoogleNet barely moves.

use mapa_bench::banner;
use mapa_topology::machines;
use mapa_workloads::{perf, Workload};

fn main() {
    banner(
        "Fig. 2b: Network speedup with different links",
        "paper Fig. 2(b)",
    );
    let dgx = machines::dgx1_v100();
    // The paper's bar chart, eyeballed: (double, single) speedup vs PCIe.
    let paper: &[(Workload, f64, f64)] = &[
        (Workload::AlexNet, 2.3, 1.9),
        (Workload::GoogleNet, 1.1, 1.1),
        (Workload::Vgg16, 3.0, 2.1),
        (Workload::ResNet50, 1.5, 1.4),
        (Workload::InceptionV3, 1.5, 1.4),
        (Workload::CaffeNet, 1.15, 1.1),
    ];

    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "network", "double (ours)", "double (paper)", "single (ours)", "single (paper)"
    );
    for &(w, p_double, p_single) in paper {
        let s = perf::fig2b_speedup(w, &dgx);
        println!(
            "{:<14} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            w.name(),
            s.double_vs_pcie,
            p_double,
            s.single_vs_pcie,
            p_single
        );
    }
    println!(
        "\nshape check: VGG-16 gains ~3x from double NVLink while GoogleNet \
         and CaffeNet are nearly flat — bandwidth sensitivity emerges from \
         message sizes and volumes, not from a hard-coded label."
    );
}
