//! Headline engine-throughput benchmark → `BENCH_throughput.json`.
//!
//! ROADMAP's "raw-speed engine core" item: at fleet scale the simulator's
//! event loop — not the allocation policy — bounds how large a campaign
//! the repo can evaluate, so this bench tracks the perf trajectory of the
//! engine itself across PRs. Three sections:
//!
//! * **macro** — end-to-end jobs/sec through the production path: a
//!   queued cluster of 1 / 8 / 64 DGX-1 V100 shards draining ≥1M small
//!   (1–2 GPU) jobs (batch arrivals, allocation cache on, zero iteration
//!   jitter so same-shape jobs finish in large same-tick batches — the
//!   homogeneous finish-event traffic the calendar queue is tuned for).
//! * **engine_loop** — events/sec of the dispatcher/event core alone: the
//!   same job stream run against a trivial O(1) `NullBackend`, isolating
//!   queue-pop, job-table, and stats cost from placement cost.
//! * **event_core** — the queue swap itself, measured differentially:
//!   the same pre-generated event stream (same-tick ties, ~90% lazily
//!   cancelled entries, far-future outliers — preemption-heavy traffic)
//!   drained through the pre-PR 6 `ReferenceQueue` (BinaryHeap) and the
//!   bucketed `CalendarQueue`. Both live in `mapa_sim::queue`, so the
//!   baseline is re-measured by the same binary on every run.
//!
//! The committed `BENCH_throughput.json` also embeds a
//! `pre_change_baseline` block: macro/engine-loop numbers measured by
//! this same harness on the pre-overhaul engine (BinaryHeap event queue,
//! HashMap job tables) before the PR 6 rewrite landed, on the same
//! hardware as the committed post-change numbers.
//!
//! CLI: `--small` (CI sizes), `--out PATH` (default
//! `BENCH_throughput.json` at the workspace root), and
//! `--check PATH [--tolerance F]` — compare this run's small-size macro
//! jobs/sec against the committed baseline file and exit non-zero on a
//! regression beyond the tolerance (default 0.20). CI runs
//! `--small --check BENCH_throughput.json`.

use mapa_bench::banner;
use mapa_cluster::{Cluster, RoundRobinPolicy, DEFAULT_SHARD_QUEUE_DEPTH};
use mapa_core::policy::BaselinePolicy;
use mapa_core::scoring::MatchScore;
use mapa_core::CacheStats;
use mapa_sim::queue::{CalendarQueue, ReferenceQueue, TimedEvent};
use mapa_sim::{Engine, Placement, SchedulerBackend, SimConfig};
use mapa_topology::{machines, LinkMix, Topology};
use mapa_workloads::generator::{self, JobMixConfig};
use mapa_workloads::{GpuDemand, JobSpec, Workload};
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 8, 64];
const FULL_MACRO_JOBS: usize = 1_000_000;
const SMALL_MACRO_JOBS: usize = 30_000;
const FULL_LOOP_JOBS: usize = 250_000;
const SMALL_LOOP_JOBS: usize = 100_000;
const FULL_CORE_EVENTS: usize = 2_000_000;
const SMALL_CORE_EVENTS: usize = 300_000;
const DEFAULT_TOLERANCE: f64 = 0.20;

/// Numbers measured by this same harness on the pre-PR 6 engine
/// (BinaryHeap event queue, HashMap job/epoch tables, per-event
/// queue-depth re-walks), in the same container the committed
/// post-change numbers come from. The acceptance comparison —
/// `engine_loop_full.events_per_sec` here vs the committed run — is the
/// PR's ≥10× event-loop claim.
const PRE_CHANGE_BASELINE: &str = r#"  "pre_change_baseline": {
    "harness": "this benchmark, pre-overhaul engine (BinaryHeap queue, HashMap tables)",
    "macro_small": [
      {"shards": 1, "jobs": 30000, "jobs_per_sec": 264808.4},
      {"shards": 8, "jobs": 30000, "jobs_per_sec": 105986.0},
      {"shards": 64, "jobs": 30000, "jobs_per_sec": 16213.2}
    ],
    "macro_full": [
      {"shards": 1, "jobs": 1000000, "jobs_per_sec": 146762.8},
      {"shards": 8, "jobs": 1000000, "jobs_per_sec": 91971.7},
      {"shards": 64, "jobs": 1000000, "jobs_per_sec": 16501.6}
    ],
    "engine_loop_small": {"jobs": 100000, "events_per_sec": 8228.2, "jobs_per_sec": 4114.1},
    "engine_loop_full": {"jobs": 250000, "events_per_sec": 2952.4, "jobs_per_sec": 1476.2}
  },
"#;

/// The homogeneous small-job stream: 1–2 GPU jobs of one workload with
/// zero iteration jitter, so execution times collapse onto few distinct
/// values and finish events arrive in large same-tick batches.
fn small_jobs(n: usize) -> Vec<JobSpec> {
    generator::generate_jobs(
        &JobMixConfig {
            job_count: n,
            gpus_min: 1,
            gpus_max: 2,
            workloads: vec![Workload::Gmm],
            iteration_jitter: 0.0,
            ..JobMixConfig::default()
        },
        11,
    )
}

/// End-to-end jobs/sec: `jobs` drained through a queued `shards`-wide
/// fleet on the production dispatch path (baseline allocation policy +
/// round-robin server selection — the cheapest real decision, so the
/// engine, not the allocator, dominates).
fn macro_run(shards: usize, jobs: &[JobSpec]) -> f64 {
    let cluster = Cluster::homogeneous(
        machines::dgx1_v100(),
        shards,
        || Box::new(BaselinePolicy),
        Box::new(RoundRobinPolicy),
    )
    .with_shard_queues(DEFAULT_SHARD_QUEUE_DEPTH);
    let start = Instant::now();
    let report = Engine::over(cluster).run(jobs);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.records.len(), jobs.len(), "every job must complete");
    jobs.len() as f64 / wall
}

/// A trivially-satisfiable backend: O(1) placement on a fixed GPU pair,
/// bounded only by a free-GPU counter. Isolates the engine's own event
/// loop, job table, and stats accounting from placement cost.
struct NullBackend {
    topology: Topology,
    free: usize,
}

const NULL_CAPACITY: usize = 128;

impl SchedulerBackend for NullBackend {
    fn label(&self) -> String {
        "null-backend".to_string()
    }
    fn policy_label(&self) -> String {
        "null".to_string()
    }
    fn server_count(&self) -> usize {
        1
    }
    fn server_topology(&self, _server: usize) -> &Topology {
        &self.topology
    }
    fn server_cache_stats(&self, _server: usize) -> Option<CacheStats> {
        None
    }
    fn max_job_gpus(&self) -> usize {
        NULL_CAPACITY
    }
    fn total_free_gpus(&self) -> usize {
        self.free
    }
    fn configure(&mut self, _config: &SimConfig) {}
    fn try_place(&mut self, job: &JobSpec) -> Option<Placement> {
        if job.num_gpus() > self.free {
            return None;
        }
        self.free -= job.num_gpus();
        Some(Placement {
            server: 0,
            gpus: vec![0, 1],
            score: MatchScore {
                aggregated_bw: 0.0,
                predicted_eff_bw: 0.0,
                preserved_bw: 0.0,
                link_mix: LinkMix::default(),
            },
            scheduling_overhead: std::time::Duration::ZERO,
        })
    }
    fn release(&mut self, _server: usize, _job: u64) {
        // Every stream job requests 2 GPUs (see `loop_jobs`).
        self.free += 2;
    }
}

/// Engine-loop events/sec over the null backend: every job is admitted,
/// placed in O(1), and finished, so the wall clock is pure engine
/// overhead. Each job is one arrival event + one finish event.
fn engine_loop_run(n: usize) -> (f64, f64) {
    let jobs: Vec<JobSpec> = small_jobs(n)
        .into_iter()
        .map(|mut j| {
            j.demand = GpuDemand::Whole(2);
            j
        })
        .collect();
    let backend = NullBackend {
        topology: machines::dgx1_v100(),
        free: NULL_CAPACITY,
    };
    let start = Instant::now();
    let report = Engine::over(backend).run(&jobs);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.records.len(), jobs.len());
    let events = 2.0 * n as f64;
    (events / wall, n as f64 / wall)
}

/// One step of the pre-generated event-core workload. The stream mimics
/// preemption-heavy engine traffic: dense same-tick ties, ~90% of
/// entries lazily cancelled before they pop, and occasional far-future
/// outliers that overflow the calendar window.
#[derive(Clone, Copy)]
enum CoreOp {
    /// Push at `floor + delta`; `cancelled` entries are skipped on pop
    /// (and reported to the queue for compaction accounting).
    Push { delta: f64, cancelled: bool },
    /// Pop until one non-cancelled event comes out (or the queue dries).
    Pop,
}

/// Deterministic 64-bit LCG — no external RNG in the hot loop, and the
/// identical op stream replays for both queue implementations.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Standing population of pending events during the steady-state phase
/// — engine traffic is "one finish event per running job", tens of
/// thousands of jobs, so the queues are measured *loaded*, not drained
/// to a handful of entries where any structure is fast.
const CORE_POPULATION: usize = 50_000;

fn core_push(rng: &mut Lcg) -> CoreOp {
    let kind = rng.next() % 16;
    let delta = match kind {
        // Exact ties: the same-tick batches the engine drains.
        0..=5 => 0.0,
        // Far beyond the 1024 s wheel window.
        6 => 2.0e6 + (rng.next() % 1000) as f64,
        _ => (rng.next() % 2000) as f64 * 0.37,
    };
    CoreOp::Push {
        delta,
        // 90% of entries go stale before they pop — heavy preemption.
        cancelled: rng.next() % 10 != 0,
    }
}

fn core_ops(pushes: usize) -> Vec<CoreOp> {
    let mut rng = Lcg(0x5eed_cafe);
    let mut ops = Vec::with_capacity(pushes + pushes / 10 + 1);
    // Build up the standing population, then hold it: each pop drains
    // until one live event comes out (~10 entries at 90% cancellation),
    // so ten pushes per pop keeps the pending count stationary.
    let prefill = CORE_POPULATION.min(pushes);
    for _ in 0..prefill {
        ops.push(core_push(&mut rng));
    }
    let mut pushed = prefill;
    while pushed < pushes {
        for _ in 0..10 {
            if pushed == pushes {
                break;
            }
            ops.push(core_push(&mut rng));
            pushed += 1;
        }
        ops.push(CoreOp::Pop);
    }
    ops
}

/// Minimal common surface of the two queue implementations, so one
/// driver times both on the identical op stream.
trait CoreQueue {
    fn push(&mut self, time: f64, id: u64);
    fn pop(&mut self) -> Option<TimedEvent<u64>>;
    fn note_cancelled(&mut self);
    fn note_drained_stale(&mut self);
    fn try_compact(&mut self);
}

impl CoreQueue for ReferenceQueue<u64> {
    fn push(&mut self, time: f64, id: u64) {
        ReferenceQueue::push(self, time, id);
    }
    fn pop(&mut self) -> Option<TimedEvent<u64>> {
        ReferenceQueue::pop(self)
    }
    fn note_cancelled(&mut self) {}
    fn note_drained_stale(&mut self) {}
    fn try_compact(&mut self) {}
}

impl CoreQueue for CalendarQueue<u64> {
    fn push(&mut self, time: f64, id: u64) {
        CalendarQueue::push(self, time, id);
    }
    fn pop(&mut self) -> Option<TimedEvent<u64>> {
        CalendarQueue::pop(self)
    }
    fn note_cancelled(&mut self) {
        CalendarQueue::note_cancelled(self);
    }
    fn note_drained_stale(&mut self) {
        CalendarQueue::note_drained_stale(self);
    }
    fn try_compact(&mut self) {
        // Cancelled ids have a non-zero low decimal digit (see
        // `core_drive`'s id scheme).
        self.maybe_compact(|id| id % 10 == 0);
    }
}

/// Drives `ops` through `queue` and returns pushes/sec. Ids encode
/// their cancelled flag (`id % 10 != 0`), so liveness is a pure
/// function of the payload — no side table in the timed loop.
fn core_drive<Q: CoreQueue>(queue: &mut Q, ops: &[CoreOp]) -> f64 {
    let mut floor = 0.0f64;
    let mut next_live = 0u64;
    let mut next_cancelled = 1u64;
    let mut pushes = 0usize;
    let start = Instant::now();
    for &op in ops {
        match op {
            CoreOp::Push { delta, cancelled } => {
                let id = if cancelled {
                    let id = next_cancelled;
                    // 1,2,…,9, 11,12,… — every id with `id % 10 != 0`.
                    next_cancelled += if next_cancelled % 10 == 9 { 2 } else { 1 };
                    id
                } else {
                    let id = next_live;
                    next_live += 10;
                    id
                };
                queue.push(floor + delta, id);
                if cancelled {
                    queue.note_cancelled();
                }
                pushes += 1;
            }
            CoreOp::Pop => {
                while let Some(ev) = queue.pop() {
                    if ev.time > floor {
                        floor = ev.time;
                    }
                    if ev.payload % 10 == 0 {
                        break;
                    }
                    queue.note_drained_stale();
                }
            }
        }
        if pushes % 4096 == 0 {
            queue.try_compact();
        }
    }
    while queue.pop().is_some() {}
    let wall = start.elapsed().as_secs_f64();
    pushes as f64 / wall
}

fn event_core_run(pushes: usize) -> (f64, f64) {
    let ops = core_ops(pushes);
    let mut reference: ReferenceQueue<u64> = ReferenceQueue::default();
    let reference_eps = core_drive(&mut reference, &ops);
    let mut calendar: CalendarQueue<u64> = CalendarQueue::default();
    let calendar_eps = core_drive(&mut calendar, &ops);
    (reference_eps, calendar_eps)
}

struct MacroRow {
    shards: usize,
    jobs: usize,
    jobs_per_sec: f64,
}

fn render_json(
    mode: &str,
    small_rows: &[MacroRow],
    full_rows: &[MacroRow],
    loop_small: (usize, f64, f64),
    loop_full: Option<(usize, f64, f64)>,
) -> String {
    let rows = |rows: &[MacroRow]| {
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"shards\": {}, \"jobs\": {}, \"jobs_per_sec\": {:.1}}}",
                    r.shards, r.jobs, r.jobs_per_sec
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let loop_obj = |(n, eps, jps): (usize, f64, f64)| {
        format!("{{\"jobs\": {n}, \"events_per_sec\": {eps:.1}, \"jobs_per_sec\": {jps:.1}}}")
    };
    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"throughput\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str(&format!(
        "  \"macro_small\": [\n{}\n  ],\n",
        rows(small_rows)
    ));
    if !full_rows.is_empty() {
        body.push_str(&format!("  \"macro_full\": [\n{}\n  ],\n", rows(full_rows)));
    }
    body.push_str(&format!(
        "  \"engine_loop_small\": {},\n",
        loop_obj(loop_small)
    ));
    if let Some(full) = loop_full {
        body.push_str(&format!("  \"engine_loop_full\": {},\n", loop_obj(full)));
    }
    // Trailing sections (event_core, pre_change_baseline) are appended by
    // main() so this helper stays reusable for the --check parser tests.
    body
}

/// Extracts `"jobs_per_sec": <f64>` values from the `"macro_small"` array
/// of a baseline JSON — a purposely narrow scanner, not a JSON parser
/// (the file is produced by this bench, so its shape is known).
fn parse_macro_small(json: &str) -> Vec<(usize, f64)> {
    let Some(start) = json.find("\"macro_small\"") else {
        return Vec::new();
    };
    let Some(end) = json[start..].find(']') else {
        return Vec::new();
    };
    let section = &json[start..start + end];
    let mut rows = Vec::new();
    for line in section.lines() {
        let shard = line
            .split("\"shards\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse::<usize>().ok());
        let jps = line
            .split("\"jobs_per_sec\": ")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse::<f64>().ok());
        if let (Some(s), Some(j)) = (shard, jps) {
            rows.push((s, j));
        }
    }
    rows
}

/// Resolves a CLI path against the workspace root. Bench binaries run
/// with cwd = the *package* directory (`crates/mapa-bench`), but the
/// tracked artifacts live at the workspace root — so CI can say
/// `--check BENCH_throughput.json` and mean the committed file.
fn workspace_path(p: &str) -> String {
    let path = std::path::Path::new(p);
    if path.is_absolute() {
        p.to_string()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
            .to_string_lossy()
            .into_owned()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` forwards its own `--bench` flag; ignore it.
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let small = flag("--small");
    let tolerance: f64 = value("--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a float"))
        .unwrap_or(DEFAULT_TOLERANCE);
    let out =
        workspace_path(&value("--out").unwrap_or_else(|| "BENCH_throughput.json".to_string()));

    banner(
        "Engine throughput: end-to-end jobs/sec and event-core events/sec",
        "ROADMAP raw-speed engine overhaul (tracked artifact)",
    );

    let mode = if small { "small" } else { "full" };
    let small_stream = small_jobs(SMALL_MACRO_JOBS);
    let mut small_rows = Vec::new();
    println!("\n-- macro (small: {SMALL_MACRO_JOBS} jobs) --");
    for shards in SHARD_COUNTS {
        let jps = macro_run(shards, &small_stream);
        println!("{shards:>3} shards  {jps:>12.0} jobs/sec");
        small_rows.push(MacroRow {
            shards,
            jobs: SMALL_MACRO_JOBS,
            jobs_per_sec: jps,
        });
    }
    let mut full_rows = Vec::new();
    if !small {
        let full_stream = small_jobs(FULL_MACRO_JOBS);
        println!("\n-- macro (full: {FULL_MACRO_JOBS} jobs) --");
        for shards in SHARD_COUNTS {
            let jps = macro_run(shards, &full_stream);
            println!("{shards:>3} shards  {jps:>12.0} jobs/sec");
            full_rows.push(MacroRow {
                shards,
                jobs: FULL_MACRO_JOBS,
                jobs_per_sec: jps,
            });
        }
    }

    let loop_small = {
        let (eps, jps) = engine_loop_run(SMALL_LOOP_JOBS);
        println!(
            "\n-- engine loop (null backend, {SMALL_LOOP_JOBS} jobs) --\n\
             {eps:>12.0} events/sec  ({jps:.0} jobs/sec)"
        );
        (SMALL_LOOP_JOBS, eps, jps)
    };
    let loop_full = (!small).then(|| {
        let (eps, jps) = engine_loop_run(FULL_LOOP_JOBS);
        println!(
            "\n-- engine loop (null backend, {FULL_LOOP_JOBS} jobs) --\n\
             {eps:>12.0} events/sec  ({jps:.0} jobs/sec)"
        );
        (FULL_LOOP_JOBS, eps, jps)
    });

    let core_events = if small {
        SMALL_CORE_EVENTS
    } else {
        FULL_CORE_EVENTS
    };
    let (reference_eps, calendar_eps) = event_core_run(core_events);
    println!(
        "\n-- event core ({core_events} pushes, ties + 90% cancelled + far-future) --\n\
         reference heap  {reference_eps:>12.0} events/sec\n\
         calendar queue  {calendar_eps:>12.0} events/sec  ({:.1}x)",
        calendar_eps / reference_eps
    );

    let mut body = render_json(mode, &small_rows, &full_rows, loop_small, loop_full);
    body.push_str(&format!(
        "  \"event_core\": {{\"events\": {core_events}, \
         \"reference_events_per_sec\": {reference_eps:.1}, \
         \"calendar_events_per_sec\": {calendar_eps:.1}, \
         \"speedup\": {:.2}}},\n",
        calendar_eps / reference_eps
    ));
    body.push_str(PRE_CHANGE_BASELINE);
    body.push_str("  \"schema\": 1\n}\n");

    if let Some(baseline_path) = value("--check").map(|p| workspace_path(&p)) {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("--check {baseline_path}: {e}"));
        let want = parse_macro_small(&baseline);
        assert!(
            !want.is_empty(),
            "--check {baseline_path}: no macro_small rows found"
        );
        let mut failed = false;
        println!(
            "\n-- regression check vs {baseline_path} (tolerance {tolerance:.0}%) --",
            tolerance = tolerance * 100.0
        );
        for (shards, baseline_jps) in want {
            let Some(row) = small_rows.iter().find(|r| r.shards == shards) else {
                continue;
            };
            let ratio = row.jobs_per_sec / baseline_jps;
            let verdict = if ratio < 1.0 - tolerance {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "{shards:>3} shards  {:>12.0} vs baseline {baseline_jps:>12.0}  ({ratio:.2}x)  {verdict}",
                row.jobs_per_sec
            );
        }
        if failed {
            eprintln!(
                "throughput regressed more than {:.0}% below the committed baseline",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }

    std::fs::write(&out, &body).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nmachine-readable results: {out}");
}
