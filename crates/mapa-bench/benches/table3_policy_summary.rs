//! Table 3 — normalized execution-time speedup quantiles and throughput.
//!
//! Paper values (normalized to baseline):
//! ```text
//! Policy        MIN    25th   50th   75th   MAX    Tput
//! Baseline      1.000  1.000  1.000  1.000  1.000  1.00
//! Topo-aware    1.002  1.029  1.385  1.014  1.075  1.07
//! Greedy        0.997  1.059  1.519  1.048  1.319  1.08
//! Preservation  1.006  1.057  1.119  1.124  1.352  1.12
//! ```
//! We report the mean over several seeds; each seed is one 300-job run.

use mapa_bench::{banner, mean, EVAL_SEEDS};
use mapa_sim::experiment;
use mapa_topology::machines;
use mapa_workloads::generator;
use std::collections::BTreeMap;

fn main() {
    banner(
        "Table 3: speedup and throughput normalized to baseline",
        "paper Table 3",
    );
    let dgx = machines::dgx1_v100();

    type Acc = BTreeMap<String, (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)>;
    let mut acc_sensitive: Acc = BTreeMap::new();
    let mut acc_all: Acc = BTreeMap::new();
    let mut order: Vec<String> = vec![];
    for &seed in &EVAL_SEEDS {
        let jobs = generator::paper_job_mix(seed);
        let cmp = experiment::compare_policies(&dgx, &jobs);
        for (rows, acc) in [
            (cmp.table3_sensitive(), &mut acc_sensitive),
            (cmp.table3(), &mut acc_all),
        ] {
            for row in rows {
                if !order.contains(&row.policy) {
                    order.push(row.policy.clone());
                }
                let e = acc.entry(row.policy.clone()).or_default();
                e.0.push(row.speedup.min);
                e.1.push(row.speedup.p25);
                e.2.push(row.speedup.p50);
                e.3.push(row.speedup.p75);
                e.4.push(row.speedup.max);
                e.5.push(row.normalized_throughput);
            }
        }
    }

    for (title, acc) in [
        (
            "bandwidth-SENSITIVE multi-GPU jobs (the population MAPA targets)",
            &acc_sensitive,
        ),
        ("ALL multi-GPU jobs", &acc_all),
    ] {
        println!("\n--- {title} ---");
        println!("(mean over {} seeded 300-job runs)\n", EVAL_SEEDS.len());
        println!(
            "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "policy", "MIN", "25th", "50th", "75th", "MAX", "Tput"
        );
        for policy in &order {
            let e = &acc[policy];
            println!(
                "{:<12} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.2}",
                policy,
                mean(&e.0),
                mean(&e.1),
                mean(&e.2),
                mean(&e.3),
                mean(&e.4),
                mean(&e.5)
            );
        }
    }
    println!(
        "\npaper:        MIN     25th    50th    75th    MAX     Tput\n\
         Topo-aware    1.002   1.029   1.385   1.014   1.075   1.07\n\
         Greedy        0.997   1.059   1.519   1.048   1.319   1.08\n\
         Preservation  1.006   1.057   1.119   1.124   1.352   1.12"
    );
    println!(
        "\nshape checks: every MAPA/topology policy ≥ baseline at p25-p75; \
         Preserve leads the 75th percentile (paper: 1.124, see EXPERIMENTS.md \
         for our measured value); MAX does not reproduce under saturated \
         batch-FIFO (all policies hit an identical forced worst case — \
         discussed in EXPERIMENTS.md)."
    );
}
