//! Fig. 11 — why Aggregated Bandwidth is the wrong score and Effective
//! Bandwidth the right one.
//!
//! (a) AggBW vs VGG-16 execution time: weak/ambiguous correlation;
//! (b) AggBW vs measured EffBW over 2–5-GPU allocations: poor correlation;
//! (c) EffBW vs execution time: strong (negative) correlation.

use mapa_bench::banner;
use mapa_core::fragmentation;
use mapa_interconnect::effbw;
use mapa_model::{corpus, metrics};
use mapa_topology::machines;
use mapa_workloads::{perf, Workload};

fn main() {
    banner(
        "Fig. 11: evaluating pattern-scoring metrics",
        "paper Fig. 11(a)-(c)",
    );
    let dgx = machines::dgx1_v100();

    // (a)+(c): VGG-16 execution time across all 4- and 5-GPU allocations.
    let mut agg = Vec::new();
    let mut eff = Vec::new();
    let mut time = Vec::new();
    for k in [4usize, 5] {
        for combo in corpus::combinations(8, k) {
            agg.push(fragmentation::aggregate_bandwidth(&dgx, &combo));
            eff.push(effbw::measure(&dgx, &combo));
            time.push(perf::execution_time(Workload::Vgg16, &dgx, &combo, 3000));
        }
    }
    let r_agg_time = metrics::pearson(&agg, &time);
    let r_eff_time = metrics::pearson(&eff, &time);

    // (b): AggBW vs EffBW over 2–5-GPU allocations.
    let mut agg_all = Vec::new();
    let mut eff_all = Vec::new();
    for k in 2..=5usize {
        for combo in corpus::combinations(8, k) {
            agg_all.push(fragmentation::aggregate_bandwidth(&dgx, &combo));
            eff_all.push(effbw::measure(&dgx, &combo));
        }
    }
    let r_agg_eff = metrics::pearson(&agg_all, &eff_all);

    println!(
        "samples: {} (4/5-GPU exec-time), {} (2-5-GPU bandwidth)",
        time.len(),
        eff_all.len()
    );
    println!("\n{:<44} {:>10}", "correlation (Pearson r)", "value");
    println!(
        "{:<44} {:>10.3}",
        "(a) AggBW  vs VGG-16 execution time", r_agg_time
    );
    println!("{:<44} {:>10.3}", "(b) AggBW  vs measured EffBW", r_agg_eff);
    println!(
        "{:<44} {:>10.3}",
        "(c) EffBW  vs VGG-16 execution time", r_eff_time
    );

    // The paper's qualitative claim: |r| of (c) far exceeds |r| of (a).
    println!(
        "\nshape check: |r_c| = {:.2} >> |r_a| = {:.2} — execution time follows \
         effective bandwidth, not aggregated bandwidth (paper: \"AggBW does \
         not correlate well with execution time … EffBW correlates well\").",
        r_eff_time.abs(),
        r_agg_time.abs()
    );

    // A concrete inversion the paper highlights: a higher-AggBW allocation
    // that is slower than a lower-AggBW one.
    let mut inversion = None;
    'outer: for i in 0..agg.len() {
        for j in 0..agg.len() {
            if agg[i] > agg[j] + 10.0 && time[i] > time[j] * 1.2 {
                inversion = Some((agg[i], time[i], agg[j], time[j]));
                break 'outer;
            }
        }
    }
    if let Some((a_hi, t_hi, a_lo, t_lo)) = inversion {
        println!(
            "inversion example: AggBW {a_hi:.0} runs {t_hi:.0}s while AggBW {a_lo:.0} runs \
             {t_lo:.0}s — more aggregated bandwidth, slower job."
        );
    }
}
