//! Ablation — offered load vs policy benefit.
//!
//! The paper's batch job file keeps the DGX saturated, which limits how
//! much placement freedom any policy has. Real multi-tenant traces
//! (Philly) arrive over time. Sweeping Poisson arrival rates shows where
//! MAPA's benefit peaks: at moderate load the machine has slack and the
//! Preserve policy's choices bite hardest; at saturation every policy is
//! forced into whatever just freed.

use mapa_bench::{banner, mean};
use mapa_core::policy::{AllocationPolicy, BaselinePolicy, PreservePolicy};
use mapa_sim::{stats, ArrivalProcess, JobRecord, SimConfig, Simulation};
use mapa_topology::machines;
use mapa_workloads::generator;

fn p75_sensitive(report: &mapa_sim::SimReport) -> f64 {
    let sens = |r: &JobRecord| r.job.bandwidth_sensitive && r.job.num_gpus() >= 2;
    stats::summarize(&report.execution_times(sens)).p75
}

fn main() {
    banner(
        "Ablation: offered load (Poisson arrivals) vs Preserve benefit",
        "extension of paper §4 (batch arrivals) toward Philly-style traces",
    );
    let dgx = machines::dgx1_v100();
    let seeds = [1u64, 2, 3];

    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "arrival process", "baseline p75", "Preserve p75", "speedup"
    );
    let loads: Vec<(&str, Option<f64>)> = vec![
        ("batch (paper)", None),
        ("Poisson mean 30 s", Some(30.0)),
        ("Poisson mean 90 s", Some(90.0)),
        ("Poisson mean 180 s", Some(180.0)),
        ("Poisson mean 400 s", Some(400.0)),
    ];
    for (name, mean_gap) in loads {
        let mut base_p75 = Vec::new();
        let mut pres_p75 = Vec::new();
        for &seed in &seeds {
            let jobs = generator::paper_job_mix(seed);
            let config = match mean_gap {
                None => SimConfig::default(),
                Some(g) => SimConfig {
                    arrivals: ArrivalProcess::Poisson { mean_gap: g, seed },
                    ..SimConfig::default()
                },
            };
            for (policy, out) in [
                (
                    Box::new(BaselinePolicy) as Box<dyn AllocationPolicy>,
                    &mut base_p75,
                ),
                (
                    Box::new(PreservePolicy) as Box<dyn AllocationPolicy>,
                    &mut pres_p75,
                ),
            ] {
                let rep = Simulation::new(dgx.clone(), policy)
                    .with_config(config.clone())
                    .run(&jobs);
                out.push(p75_sensitive(&rep));
            }
        }
        let b = mean(&base_p75);
        let p = mean(&pres_p75);
        println!("{name:<22} {b:>14.0} {p:>14.0} {:>10.3}", b / p);
    }
    println!(
        "\nreading: the speedup column peaks at moderate load — MAPA's benefit \
         is largest when the scheduler has real choices, and the batch row is \
         the (conservative) configuration all paper-facing numbers use."
    );
}
