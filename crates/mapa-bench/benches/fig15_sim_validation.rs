//! Fig. 15 — simulator validation: effective bandwidth from the "real"
//! path vs the simulator path.
//!
//! In the paper: correlate predicted EffBW logged during the *real* DGX-V
//! runs against the simulator's EffBW for the same schedule. In our
//! reproduction the "real" path is the ring-packing microbenchmark
//! (ground truth) and the simulator path is the Eq. 2 regression the
//! scheduler actually logs — correlating the two over a full 300-job run
//! validates that the simulated scheduler sees the bandwidth the
//! "hardware" delivers.

use mapa_bench::banner;
use mapa_core::policy::PreservePolicy;
use mapa_model::metrics;
use mapa_sim::Simulation;
use mapa_topology::machines;
use mapa_workloads::generator;

fn main() {
    banner(
        "Fig. 15: real vs simulated effective bandwidth",
        "paper Fig. 15",
    );
    let jobs = generator::paper_job_mix(1);
    let report = Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&jobs);

    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for r in &report.records {
        if r.job.num_gpus() >= 2 {
            measured.push(r.measured_eff_bw);
            predicted.push(r.predicted_eff_bw);
        }
    }
    let r = metrics::pearson(&measured, &predicted);
    let rel = metrics::mean_relative_error(&predicted, &measured);

    println!("jobs correlated: {}", measured.len());
    println!("Pearson r (measured vs predicted EffBW): {r:.3}");
    println!("mean relative error: {rel:.3}");

    // Binned scatter so the relationship is visible in text form.
    println!(
        "\n{:>22} {:>16} {:>8}",
        "measured EffBW bin", "mean predicted", "jobs"
    );
    for lo in (0..70).step_by(10) {
        let hi = lo + 10;
        let in_bin: Vec<f64> = measured
            .iter()
            .zip(&predicted)
            .filter(|(m, _)| **m >= lo as f64 && **m < hi as f64)
            .map(|(_, p)| *p)
            .collect();
        if in_bin.is_empty() {
            continue;
        }
        println!(
            "{:>22} {:>16.1} {:>8}",
            format!("[{lo},{hi}) GB/s"),
            mapa_bench::mean(&in_bin),
            in_bin.len()
        );
    }
    println!(
        "\npaper shape: points hug the diagonal — \"the simulated and real \
         effective bandwidth correlates well\"."
    );
}
