//! Ablation — strict FIFO vs backfill.
//!
//! The paper's queue is strict FIFO (head-of-line blocking, Fig. 14). Our
//! engine also supports backfill (blocked head jobs can be overtaken).
//! This changes machine pressure and therefore how much freedom policies
//! have — useful context for the Table 3 magnitudes.

use mapa_bench::{banner, summary_header, summary_row, EVAL_SEEDS};
use mapa_core::policy::{BaselinePolicy, PreservePolicy};
use mapa_sim::{stats, SimConfig, Simulation};
use mapa_topology::machines;
use mapa_workloads::generator;

fn main() {
    banner(
        "Ablation: strict FIFO vs backfill queue discipline",
        "DESIGN.md ablation (paper Fig. 14 queue model)",
    );
    let dgx = machines::dgx1_v100();

    for (qname, strict) in [("strict FIFO", true), ("backfill", false)] {
        println!("\n--- {qname} ---");
        println!("sensitive multi-GPU execution time (s):");
        println!("{}", summary_header("policy"));
        let mut makespans = Vec::new();
        type PolicyFactory = fn() -> Box<dyn mapa_core::policy::AllocationPolicy>;
        let factories: [(&str, PolicyFactory); 2] = [
            ("baseline", || Box::new(BaselinePolicy)),
            ("Preserve", || Box::new(PreservePolicy)),
        ];
        for (pname, make) in factories {
            let mut times = Vec::new();
            let mut policy_makespans = Vec::new();
            for &seed in &EVAL_SEEDS {
                let jobs = generator::paper_job_mix(seed);
                let rep = Simulation::new(dgx.clone(), make())
                    .with_config(SimConfig {
                        strict_fifo: strict,
                        ..SimConfig::default()
                    })
                    .run(&jobs);
                times.extend(
                    rep.execution_times(|r| r.job.bandwidth_sensitive && r.job.num_gpus() >= 2),
                );
                policy_makespans.push(rep.makespan_seconds);
            }
            println!("{}", summary_row(pname, &stats::summarize(&times)));
            makespans.push((pname, mapa_bench::mean(&policy_makespans)));
        }
        for (pname, m) in makespans {
            println!("  mean makespan [{pname}]: {m:.0} s");
        }
    }
    println!(
        "\nreading: backfill keeps the machine fuller (shorter makespan) but \
         leaves policies less placement freedom; strict FIFO is the paper's \
         configuration and the one all headline numbers use."
    );
}
