//! Ablation — parallel match enumeration (paper §5.4).
//!
//! "This overhead can be reduced by parallelizing the scoring process
//! since it is a data parallel problem." The matcher partitions the search
//! tree across crossbeam workers; this bench measures the wall-clock
//! speedup for enumeration-heavy MAPA inputs.

use mapa_bench::banner;
use mapa_graph::PatternGraph;
use mapa_isomorph::{DedupMode, MatchOptions, Matcher};
use std::time::Instant;

fn time_matcher(
    pattern: &PatternGraph,
    data: &PatternGraph,
    threads: Option<usize>,
) -> (f64, usize) {
    let matcher = Matcher::new(MatchOptions {
        threads,
        dedup: DedupMode::AllMappings,
        ..MatchOptions::default()
    });
    // Median of 3.
    let mut times = Vec::new();
    let mut count = 0;
    for _ in 0..3 {
        let start = Instant::now();
        let found = matcher.find(pattern, data).unwrap();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        count = found.len();
    }
    times.sort_by(f64::total_cmp);
    (times[1], count)
}

fn main() {
    banner(
        "Ablation: parallel match enumeration speedup",
        "paper §5.4 (parallelizing the data-parallel scoring)",
    );
    let cases = [
        (
            "ring6 into K12",
            PatternGraph::ring(6),
            PatternGraph::all_to_all(12),
        ),
        (
            "ring7 into K12",
            PatternGraph::ring(7),
            PatternGraph::all_to_all(12),
        ),
        (
            "chain6 into K12",
            PatternGraph::chain(6),
            PatternGraph::all_to_all(12),
        ),
    ];
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "case", "1 thread", "2 threads", "4 threads", "8 threads", "matches"
    );
    for (name, pattern, data) in &cases {
        let (t1, n1) = time_matcher(pattern, data, None);
        let (t2, _) = time_matcher(pattern, data, Some(2));
        let (t4, _) = time_matcher(pattern, data, Some(4));
        let (t8, _) = time_matcher(pattern, data, Some(8));
        println!("{name:<18} {t1:>10.1}ms {t2:>10.1}ms {t4:>10.1}ms {t8:>10.1}ms {n1:>10}");
    }
    println!("\nexpected: wall-clock drops with threads (embarrassingly parallel search tree).");
}
