//! Ablation — parallel match enumeration (paper §5.4).
//!
//! "This overhead can be reduced by parallelizing the scoring process
//! since it is a data parallel problem." The matcher partitions the search
//! tree across a persistent worker pool; this bench measures the
//! wall-clock speedup for enumeration-heavy MAPA inputs. The matcher is
//! constructed once per thread count, so pool threads are spawned once
//! and reused across the repetitions — exactly the production shape. The
//! sweep ends at the machine's own `available_parallelism` instead of a
//! magic constant.

use mapa_bench::banner;
use mapa_graph::PatternGraph;
use mapa_isomorph::{default_threads, DedupMode, MatchOptions, Matcher};
use std::time::Instant;

fn time_matcher(
    pattern: &PatternGraph,
    data: &PatternGraph,
    threads: Option<usize>,
) -> (f64, usize) {
    let matcher = Matcher::new(MatchOptions {
        threads,
        dedup: DedupMode::AllMappings,
        ..MatchOptions::default()
    });
    // Median of 3; the pool persists across repetitions.
    let mut times = Vec::new();
    let mut count = 0;
    for _ in 0..3 {
        let start = Instant::now();
        let found = matcher.find(pattern, data).unwrap();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        count = found.len();
    }
    times.sort_by(f64::total_cmp);
    (times[1], count)
}

fn main() {
    banner(
        "Ablation: parallel match enumeration speedup",
        "paper §5.4 (parallelizing the data-parallel scoring)",
    );
    let cases = [
        (
            "ring6 into K12",
            PatternGraph::ring(6),
            PatternGraph::all_to_all(12),
        ),
        (
            "ring7 into K12",
            PatternGraph::ring(7),
            PatternGraph::all_to_all(12),
        ),
        (
            "chain6 into K12",
            PatternGraph::chain(6),
            PatternGraph::all_to_all(12),
        ),
    ];
    let auto = default_threads();
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "case",
        "1 thread",
        "2 threads",
        "4 threads",
        format!("auto ({auto})"),
        "matches"
    );
    for (name, pattern, data) in &cases {
        let (t1, n1) = time_matcher(pattern, data, None);
        let (t2, _) = time_matcher(pattern, data, Some(2));
        let (t4, _) = time_matcher(pattern, data, Some(4));
        let (ta, _) = time_matcher(pattern, data, MatchOptions::parallel().threads);
        println!("{name:<18} {t1:>10.1}ms {t2:>10.1}ms {t4:>10.1}ms {ta:>12.1}ms {n1:>10}");
    }
    println!(
        "\nexpected: wall-clock drops with threads (embarrassingly parallel \
         search tree); the pool is spawned once per matcher and reused."
    );
}
