//! Ablation — how much do the bandwidth-sensitivity annotations matter?
//!
//! The Preserve policy consumes a per-job `bandwidth_sensitive` flag that
//! the paper assumes "is known and already annotated" (§3.5). This
//! ablation re-runs the same mixes with the annotation (a) correct,
//! (b) inverted, (c) all-sensitive, (d) all-insensitive.

use mapa_bench::{banner, summary_header, summary_row, EVAL_SEEDS};
use mapa_core::policy::PreservePolicy;
use mapa_sim::{stats, Simulation};
use mapa_topology::machines;
use mapa_workloads::{generator, JobSpec};

fn relabel(jobs: &[JobSpec], f: impl Fn(bool) -> bool) -> Vec<JobSpec> {
    jobs.iter()
        .map(|j| j.clone().with_bandwidth_sensitive(f(j.bandwidth_sensitive)))
        .collect()
}

fn main() {
    banner(
        "Ablation: Preserve under oracle / inverted / constant annotations",
        "DESIGN.md ablation #4 (paper §3.5 annotation assumption)",
    );
    let dgx = machines::dgx1_v100();
    type Relabeler = Box<dyn Fn(bool) -> bool>;
    let variants: Vec<(&str, Relabeler)> = vec![
        ("oracle", Box::new(|s| s)),
        ("inverted", Box::new(|s: bool| !s)),
        ("all-sensitive", Box::new(|_| true)),
        ("all-insensitive", Box::new(|_| false)),
    ];

    println!(
        "execution time of TRULY sensitive multi-GPU jobs (s), pooled over {} seeds:\n",
        EVAL_SEEDS.len()
    );
    println!("{}", summary_header("annotation"));
    for (name, relabeler) in &variants {
        let mut times = Vec::new();
        for &seed in &EVAL_SEEDS {
            let jobs = generator::paper_job_mix(seed);
            let labeled = relabel(&jobs, relabeler);
            let rep = Simulation::new(dgx.clone(), Box::new(PreservePolicy)).run(&labeled);
            // Evaluate against the TRUE sensitivity, regardless of label.
            times.extend(rep.execution_times(|r| {
                r.job.workload.is_bandwidth_sensitive() && r.job.num_gpus() >= 2
            }));
        }
        println!("{}", summary_row(name, &stats::summarize(&times)));
    }
    println!(
        "\nexpected: oracle annotations give the best sensitive-job tail; \
         inverting them parks sensitive jobs on preservation picks and \
         insensitive jobs on the fast links — the worst of both."
    );
}
