//! Fig. 13 — the DGX-V evaluation: execution time and predicted effective
//! bandwidth per workload under the four policies.
//!
//! Paper protocol: 300 jobs, uniform workload mix, uniform 1–5 GPUs, FIFO,
//! on DGX-1 V100. We aggregate over several seeds (the paper has one
//! physical run; seeds play the role of re-runs).

use mapa_bench::{banner, summary_header, summary_row, EVAL_SEEDS};
use mapa_sim::{experiment, stats, JobRecord, SimReport};
use mapa_topology::machines;
use mapa_workloads::{generator, Workload};

fn collect(
    reports: &[Vec<SimReport>],
    policy_idx: usize,
    f: impl Fn(&JobRecord) -> bool + Copy,
    value: impl Fn(&JobRecord) -> f64 + Copy,
) -> Vec<f64> {
    reports
        .iter()
        .flat_map(|per_policy| per_policy[policy_idx].records.iter())
        .filter(|r| f(r))
        .map(value)
        .collect()
}

fn main() {
    banner(
        "Fig. 13: evaluation on DGX-V (300-job mix x 4 policies)",
        "paper Fig. 13(a)-(d)",
    );
    let dgx = machines::dgx1_v100();
    let mut all_reports: Vec<Vec<SimReport>> = Vec::new();
    for &seed in &EVAL_SEEDS {
        let jobs = generator::paper_job_mix(seed);
        all_reports.push(experiment::compare_policies(&dgx, &jobs).reports);
    }
    let policy_names: Vec<String> = all_reports[0]
        .iter()
        .map(|r| r.policy_name.clone())
        .collect();

    let sensitive = [
        Workload::Vgg16,
        Workload::AlexNet,
        Workload::ResNet50,
        Workload::InceptionV3,
    ];
    let insensitive = [
        Workload::CaffeNet,
        Workload::GoogleNet,
        Workload::Cusimann,
        Workload::Gmm,
        Workload::Jacobi,
    ];

    for (title, group) in [
        ("(a) execution time, BW-SENSITIVE jobs (s)", &sensitive[..]),
        (
            "(b) execution time, BW-INSENSITIVE jobs (s)",
            &insensitive[..],
        ),
    ] {
        println!("\n--- Fig. 13{title} ---");
        for w in group {
            println!("\n[{}]", w.name());
            println!("{}", summary_header("policy"));
            for (pi, pname) in policy_names.iter().enumerate() {
                let times = collect(
                    &all_reports,
                    pi,
                    |r| r.job.workload == *w && r.job.num_gpus() >= 2,
                    |r| r.execution_seconds,
                );
                if times.is_empty() {
                    continue;
                }
                println!("{}", summary_row(pname, &stats::summarize(&times)));
            }
        }
    }

    for (title, group) in [
        (
            "(c) predicted EffBW, BW-SENSITIVE jobs (GB/s)",
            &sensitive[..],
        ),
        (
            "(d) predicted EffBW, BW-INSENSITIVE jobs (GB/s)",
            &insensitive[..],
        ),
    ] {
        println!("\n--- Fig. 13{title} ---");
        for w in group {
            println!("\n[{}]", w.name());
            println!("{}", summary_header("policy"));
            for (pi, pname) in policy_names.iter().enumerate() {
                let bws = collect(
                    &all_reports,
                    pi,
                    |r| r.job.workload == *w && r.job.num_gpus() >= 2,
                    |r| r.predicted_eff_bw,
                );
                if bws.is_empty() {
                    continue;
                }
                println!("{}", summary_row(pname, &stats::summarize(&bws)));
            }
        }
    }

    println!(
        "\npaper shape checks: (1) baseline has the longest sensitive-workload \
         tails; (2) MAPA policies lift the EffBW distribution (median near the \
         baseline max); (3) Preserve avoids Greedy's depressed 25th percentile \
         for sensitive jobs."
    );
}
