//! Campaign-runner throughput benchmark → `BENCH_campaign.json`.
//!
//! PR 7's two deliverables, measured by one harness:
//!
//! * **campaign** — cells/sec through `CampaignGrid::run` (the
//!   production campaign path: per-cell context hoisting, CRN
//!   replications, streaming aggregation) at worker-pool sizes 1 / 4 /
//!   default. On a multi-core host the >1-worker rows show the fan-out
//!   win; on a 1-core container they honestly record ~1× (thread-count
//!   *results* are still bit-identical — asserted here and pinned by
//!   `tests/campaign.rs`). Only the `workers: 1` row is gated, because
//!   it is the only hardware-shape-independent one.
//! * **macro_small / macro_full** — the shard-scaling curve the
//!   occupancy-mask fix repaired: end-to-end jobs/sec draining a
//!   homogeneous small-job stream through 1 / 8 / 64 queued shards,
//!   same workload shape as `bench_throughput`. The committed pre-fix
//!   curve (inverted: 226k at 1 shard collapsing to 17k at 64) is
//!   embedded below as the before/after record.
//!
//! CLI mirrors `bench_throughput`: `--small` (CI sizes), `--out PATH`
//! (default `BENCH_campaign.json` at the workspace root), `--check PATH
//! [--tolerance F]` — compare this run's gated rows against a committed
//! baseline file and exit non-zero on a regression beyond the tolerance
//! (default 0.20). The small-size sections run in *both* modes so the
//! gate always compares like against like; full mode adds the
//! `campaign_full` / `macro_full` sections on top. CI runs
//! `--small --check BENCH_campaign.json`.

use mapa::prelude::*;
use mapa_bench::banner;
use std::sync::Arc;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 8, 64];
const FULL_MACRO_JOBS: usize = 300_000;
const SMALL_MACRO_JOBS: usize = 30_000;
/// (jobs per replication, replications) for the two campaign sizes.
const SMALL_CAMPAIGN: (usize, usize) = (60, 3);
const FULL_CAMPAIGN: (usize, usize) = (150, 10);
const DEFAULT_TOLERANCE: f64 = 0.20;

/// The shard-scaling curve of the committed pre-fix cluster (PR 6's
/// `BENCH_throughput.json`, same harness shape, same container family):
/// every pump walked all 64 shards whether or not anything waited, so
/// adding shards *divided* throughput. Kept verbatim as the before/after
/// record for the occupancy-mask fix.
const PRE_FIX_BASELINE: &str = r#"  "pre_fix_baseline": {
    "harness": "BENCH_throughput.json macro rows, pre occupancy-mask cluster",
    "macro_small": [
      {"shards": 1, "jobs": 30000, "jobs_per_sec": 226534.2},
      {"shards": 8, "jobs": 30000, "jobs_per_sec": 99895.0},
      {"shards": 64, "jobs": 30000, "jobs_per_sec": 17052.9}
    ],
    "macro_full": [
      {"shards": 1, "jobs": 1000000, "jobs_per_sec": 177912.4},
      {"shards": 8, "jobs": 1000000, "jobs_per_sec": 95182.5},
      {"shards": 64, "jobs": 1000000, "jobs_per_sec": 16322.2}
    ]
  },
"#;

/// The benchmark grid: 2 server policies × 2 allocation policies ×
/// 2 shard widths × both dispatch modes = 16 cells. Big enough that the
/// per-cell context hoisting and fan-out matter, small enough for CI.
fn bench_grid(jobs: usize, replications: usize) -> CampaignGrid {
    CampaignGrid {
        server_policies: vec!["round-robin".into(), "least-loaded".into()],
        alloc_policies: vec!["baseline".into(), "preserve".into()],
        shards: vec![2, 4],
        job_counts: vec![jobs],
        dispatch: vec![DispatchMode::Sequential, DispatchMode::Parallel],
        replications,
        base_seed: 42,
        ..CampaignGrid::new(machines::dgx1_v100())
    }
}

struct CampaignRow {
    workers: usize,
    cells_per_sec: f64,
    wall_seconds: f64,
}

/// How many timed repeats per worker count; the best one is reported.
/// The small grid finishes in tens of milliseconds, where scheduler
/// noise on a shared runner swamps a single measurement — best-of-N is
/// the standard antidote and is what the 20% gate is calibrated for.
const CAMPAIGN_REPEATS: usize = 3;

/// Runs the grid `CAMPAIGN_REPEATS` times on a `workers`-wide pool and
/// returns the fastest row plus the (repeat-invariant) result table.
fn campaign_run(grid: &CampaignGrid, workers: usize) -> (CampaignRow, Vec<CellSummary>) {
    let pool = Arc::new(WorkerPool::new(workers));
    let mut best: Option<(f64, Vec<CellSummary>)> = None;
    for _ in 0..CAMPAIGN_REPEATS {
        let start = Instant::now();
        let table = grid.run(&pool).expect("bench grid is valid");
        let wall = start.elapsed().as_secs_f64();
        if let Some((best_wall, best_table)) = &best {
            assert_eq!(best_table, &table, "campaign tables must not vary per run");
            if wall >= *best_wall {
                continue;
            }
        }
        best = Some((wall, table));
    }
    let (wall, table) = best.expect("at least one repeat");
    (
        CampaignRow {
            workers,
            cells_per_sec: table.len() as f64 / wall,
            wall_seconds: wall,
        },
        table,
    )
}

/// Runs one campaign section — the grid at each worker count — printing
/// rows and asserting the tables are bit-identical across counts.
fn campaign_section(jobs_per_rep: usize, replications: usize) -> Vec<CampaignRow> {
    let grid = bench_grid(jobs_per_rep, replications);
    let cells = grid.cells().len();
    println!(
        "\n-- campaign ({cells} cells x {replications} replications, \
         {jobs_per_rep} jobs/replication) --"
    );
    let mut rows: Vec<CampaignRow> = Vec::new();
    let mut reference_table: Option<Vec<CellSummary>> = None;
    for workers in [1usize, 4, default_threads()] {
        if rows.iter().any(|r| r.workers == workers) {
            continue;
        }
        let (row, table) = campaign_run(&grid, workers);
        println!(
            "{workers:>3} workers  {:>8.2} cells/sec  ({:.2}s wall)",
            row.cells_per_sec, row.wall_seconds
        );
        match &reference_table {
            None => reference_table = Some(table),
            Some(reference) => assert_eq!(
                reference, &table,
                "campaign tables must be bit-identical at any worker count"
            ),
        }
        rows.push(row);
    }
    println!("    (result tables bit-identical across all worker counts: verified)");
    rows
}

/// End-to-end jobs/sec through a queued `shards`-wide fleet — the same
/// macro workload as `bench_throughput` (1–2 GPU homogeneous jobs, batch
/// arrivals, round-robin + baseline, shard queues on), so the numbers
/// are directly comparable with the committed pre-fix curve.
fn macro_run(shards: usize, jobs: &[JobSpec]) -> f64 {
    let cluster = Cluster::homogeneous(
        machines::dgx1_v100(),
        shards,
        || Box::new(BaselinePolicy),
        Box::new(RoundRobinPolicy),
    )
    .with_shard_queues(DEFAULT_SHARD_QUEUE_DEPTH);
    let start = Instant::now();
    let report = Engine::over(cluster).run(jobs);
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.records.len(), jobs.len(), "every job must complete");
    jobs.len() as f64 / wall
}

fn macro_section(job_count: usize) -> Vec<(usize, f64)> {
    let stream = generator::generate_jobs(
        &generator::JobMixConfig {
            job_count,
            gpus_min: 1,
            gpus_max: 2,
            workloads: vec![Workload::Gmm],
            iteration_jitter: 0.0,
            ..generator::JobMixConfig::default()
        },
        11,
    );
    println!("\n-- macro shard scaling ({job_count} jobs, occupancy-mask cluster) --");
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let jps = macro_run(shards, &stream);
            println!("{shards:>3} shards  {jps:>12.0} jobs/sec");
            (shards, jps)
        })
        .collect()
}

fn campaign_json(rows: &[CampaignRow], jobs_per_rep: usize, replications: usize) -> String {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"cells_per_sec\": {:.2}, \"wall_seconds\": {:.3}}}",
                r.workers, r.cells_per_sec, r.wall_seconds
            )
        })
        .collect();
    format!(
        "{{\"cells\": 16, \"replications\": {replications}, \
         \"jobs_per_replication\": {jobs_per_rep}, \"rows\": [\n{}\n  ]}}",
        lines.join(",\n")
    )
}

fn macro_json(rows: &[(usize, f64)], job_count: usize) -> String {
    let lines: Vec<String> = rows
        .iter()
        .map(|(s, j)| {
            format!("    {{\"shards\": {s}, \"jobs\": {job_count}, \"jobs_per_sec\": {j:.1}}}")
        })
        .collect();
    format!("[\n{}\n  ]", lines.join(",\n"))
}

/// Narrow scanner for the gated rows of a baseline file produced by this
/// bench: `"cells_per_sec"` at `"workers": 1` inside `campaign_small`,
/// and the `macro_small` shard rows. Purposely not a JSON parser — the
/// file's shape is known.
fn parse_gated_rows(json: &str) -> (Option<f64>, Vec<(usize, f64)>) {
    let field = |line: &str, key: &str| {
        line.split(&format!("\"{key}\": "))
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse::<f64>().ok())
    };
    let section = |name: &str| {
        json.find(&format!("\"{name}\""))
            .and_then(|start| json[start..].find(']').map(|end| &json[start..start + end]))
    };
    let one_worker = section("campaign_small").and_then(|s| {
        s.lines()
            .find(|l| l.contains("\"workers\": 1,"))
            .and_then(|l| field(l, "cells_per_sec"))
    });
    let macro_rows = section("macro_small")
        .map(|s| {
            s.lines()
                .filter_map(|l| match (field(l, "shards"), field(l, "jobs_per_sec")) {
                    (Some(shards), Some(jps)) => Some((shards as usize, jps)),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default();
    (one_worker, macro_rows)
}

/// Resolves a CLI path against the workspace root. Bench binaries run
/// with cwd = the *package* directory (`crates/mapa-bench`), but the
/// tracked artifacts live at the workspace root — so CI can say
/// `--check BENCH_campaign.json` and mean the committed file.
fn workspace_path(p: &str) -> String {
    let path = std::path::Path::new(p);
    if path.is_absolute() {
        p.to_string()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
            .to_string_lossy()
            .into_owned()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let small = flag("--small");
    let tolerance: f64 = value("--tolerance")
        .map(|t| t.parse().expect("--tolerance takes a float"))
        .unwrap_or(DEFAULT_TOLERANCE);
    let out = workspace_path(&value("--out").unwrap_or_else(|| "BENCH_campaign.json".to_string()));

    banner(
        "Campaign runner: cells/sec fan-out and the repaired shard-scaling curve",
        "PR 7 campaign instrument + occupancy-mask fix (tracked artifact)",
    );

    let mode = if small { "small" } else { "full" };
    let (small_jobs, small_reps) = SMALL_CAMPAIGN;
    let campaign_small = campaign_section(small_jobs, small_reps);
    let campaign_full = (!small).then(|| {
        let (jobs, reps) = FULL_CAMPAIGN;
        campaign_section(jobs, reps)
    });
    let macro_small = macro_section(SMALL_MACRO_JOBS);
    let macro_full = (!small).then(|| macro_section(FULL_MACRO_JOBS));

    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"campaign\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str(&format!(
        "  \"campaign_small\": {},\n",
        campaign_json(&campaign_small, small_jobs, small_reps)
    ));
    if let Some(rows) = &campaign_full {
        let (jobs, reps) = FULL_CAMPAIGN;
        body.push_str(&format!(
            "  \"campaign_full\": {},\n",
            campaign_json(rows, jobs, reps)
        ));
    }
    body.push_str(&format!(
        "  \"macro_small\": {},\n",
        macro_json(&macro_small, SMALL_MACRO_JOBS)
    ));
    if let Some(rows) = &macro_full {
        body.push_str(&format!(
            "  \"macro_full\": {},\n",
            macro_json(rows, FULL_MACRO_JOBS)
        ));
    }
    body.push_str(PRE_FIX_BASELINE);
    body.push_str("  \"schema\": 1\n}\n");

    if let Some(baseline_path) = value("--check").map(|p| workspace_path(&p)) {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("--check {baseline_path}: {e}"));
        let (want_cells, want_macro) = parse_gated_rows(&baseline);
        assert!(
            want_cells.is_some() && !want_macro.is_empty(),
            "--check {baseline_path}: no gated rows found"
        );
        let mut failed = false;
        println!(
            "\n-- regression check vs {baseline_path} (tolerance {:.0}%) --",
            tolerance * 100.0
        );
        let mut check = |label: String, got: f64, want: f64| {
            let ratio = got / want;
            let verdict = if ratio < 1.0 - tolerance {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!("{label:<24} {got:>12.1} vs baseline {want:>12.1}  ({ratio:.2}x)  {verdict}");
        };
        if let (Some(want), Some(got)) =
            (want_cells, campaign_small.iter().find(|r| r.workers == 1))
        {
            check("campaign workers=1".to_string(), got.cells_per_sec, want);
        }
        for (shards, want) in want_macro {
            if let Some((_, got)) = macro_small.iter().find(|(s, _)| *s == shards) {
                check(format!("macro {shards} shards"), *got, want);
            }
        }
        if failed {
            eprintln!(
                "campaign bench regressed more than {:.0}% below the committed baseline",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }

    std::fs::write(&out, &body).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nmachine-readable results: {out}");
}
