//! Table 1 — peak bandwidths per link.

use mapa_bench::banner;
use mapa_topology::LinkType;

fn main() {
    banner("Table 1: Peak Bandwidths per link", "paper Table 1");
    println!(
        "{:<22} {:>18} {:>18}",
        "Link", "paper (GB/s)", "measured (GB/s)"
    );
    let rows = [
        ("Single NVLink-v1", LinkType::SingleNvLink1, 20.0),
        ("Single NVLink-v2", LinkType::SingleNvLink2, 25.0),
        ("Double NVLink-v2", LinkType::DoubleNvLink2, 50.0),
        ("16-lane PCIe Gen3", LinkType::Pcie, 12.0),
    ];
    let mut all_match = true;
    for (name, link, paper) in rows {
        let ours = link.bandwidth_gbps();
        all_match &= (ours - paper).abs() < f64::EPSILON;
        println!("{name:<22} {paper:>18.0} {ours:>18.0}");
    }
    println!(
        "\nresult: {}",
        if all_match { "EXACT match" } else { "MISMATCH" }
    );
}
