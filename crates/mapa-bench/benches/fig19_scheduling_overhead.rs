//! Fig. 19 — MAPA scheduling overhead vs requested job size, per machine.
//!
//! Paper protocol: allocate a k-GPU job (k = 2..9) with MAPA + Preserve on
//! an *idle* hardware graph of Summit (6), DGX-V (8), Torus-2d (16) and
//! CubeMesh-16 (16); report the decision latency. Expected shape:
//! milliseconds for small jobs, growing with both job size and machine
//! size (the paper reaches ~10⁴ ms for 9-GPU jobs on 16-GPU graphs with
//! single-threaded scoring; our set-streaming scorer is faster, but the
//! growth curve is the point).

use mapa_bench::banner;
use mapa_core::policy::PreservePolicy;
use mapa_core::MapaAllocator;
use mapa_topology::machines;
use mapa_workloads::{AppTopology, JobSpec, Workload};
use std::time::Instant;

fn main() {
    banner(
        "Fig. 19: scheduling overhead of MAPA w/ Preserve (ms)",
        "paper Fig. 19",
    );
    let machines = [
        machines::summit(),
        machines::dgx1_v100(),
        machines::torus_2d(),
        machines::cube_mesh(),
    ];

    print!("{:<8}", "GPUs");
    for m in &machines {
        print!(" {:>14}", m.name());
    }
    println!();

    for k in 2..=9usize {
        print!("{k:<8}");
        for machine in &machines {
            if k > machine.gpu_count() {
                print!(" {:>14}", "-");
                continue;
            }
            // Fresh idle allocator per measurement (paper: idle graph,
            // upper bound of scheduling cost).
            let mut alloc = MapaAllocator::new(machine.clone(), Box::new(PreservePolicy));
            let job = JobSpec {
                id: 1,
                num_gpus: k,
                topology: AppTopology::Ring,
                bandwidth_sensitive: true,
                workload: Workload::Vgg16,
                iterations: 1,
            };
            // Median of 3 runs.
            let mut times = Vec::new();
            for rep in 0..3 {
                let j = JobSpec {
                    id: rep + 1,
                    ..job.clone()
                };
                let start = Instant::now();
                let out = alloc.try_allocate(&j).expect("valid");
                let dt = start.elapsed();
                assert!(out.is_some());
                alloc.release(rep + 1).unwrap();
                times.push(dt.as_secs_f64() * 1e3);
            }
            times.sort_by(f64::total_cmp);
            print!(" {:>14.3}", times[1]);
        }
        println!();
    }
    println!(
        "\npaper shape: overhead is negligible (ms) for small jobs and grows \
         with job size and hardware-graph size; 16-GPU machines with 120+ \
         edges are the most expensive. Our streaming set scorer keeps the \
         9-GPU/16-GPU case far below the paper's ~10^4 ms single-threaded \
         figure while preserving the growth trend."
    );
}
