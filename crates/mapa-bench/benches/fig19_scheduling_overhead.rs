//! Fig. 19 — MAPA scheduling overhead vs requested job size, per machine.
//!
//! Paper protocol: allocate a k-GPU job (k = 2..9) on an *idle* hardware
//! graph of Summit (6), DGX-V (8), Torus-2d (16) and CubeMesh-16 (16);
//! report the decision latency. Expected shape: milliseconds for small
//! jobs, growing with both job size and machine size (the paper reaches
//! ~10⁴ ms for 9-GPU jobs on 16-GPU graphs with single-threaded scoring).
//!
//! This reproduction extends the protocol with the allocation fast path:
//! every (machine, policy, size) cell is measured twice — once uncached
//! (every repetition runs matching + scoring from scratch) and once with
//! the canonical-state allocation cache, where the allocate/release cycle
//! returns the machine to the identical occupancy signature so every
//! repetition after the first is a cache hit. Matchers run on a persistent
//! worker pool sized by `available_parallelism` (no magic thread counts).
//!
//! A second extension measures *fleet* dispatch overhead: an 8-shard
//! cluster under best-score server selection places the same decision
//! stream with sequential and parallel shard evaluation
//! (`DispatchMode`), showing how much of the per-decision cost the
//! worker pool absorbs when shards are scored concurrently (the
//! schedules are bit-identical — `tests/dispatch_equivalence.rs` — so
//! this is pure wall-clock).
//!
//! Besides the table below, results are written machine-readably to
//! `BENCH_fig19.json` at the workspace root: per-policy median latencies
//! (cached and uncached), speedups, cache hit rates, and the fleet
//! dispatch comparison — the artifact CI uploads to track the perf
//! trajectory across PRs.

use mapa_bench::banner;
use mapa_cluster::{BestScorePolicy, Cluster, DispatchMode};
use mapa_core::policy::{self, AllocationPolicy};
use mapa_core::{AllocatorConfig, MapaAllocator};
use mapa_isomorph::{default_threads, MatchOptions, Matcher};
use mapa_sim::{stats, SchedulerBackend, SimConfig};
use mapa_topology::{machines, Topology};
use mapa_workloads::{AppTopology, GpuDemand, JobSpec, Workload};
use std::time::Instant;

const REPS: u64 = 5;

/// Shards in the fleet-dispatch comparison (the PR 4 acceptance setting).
const DISPATCH_SHARDS: usize = 8;
/// Placement decisions measured per dispatch mode.
const DISPATCH_DECISIONS: u64 = 24;

struct Cell {
    machine: String,
    policy: String,
    gpus: usize,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

fn policy_by_name(name: &str) -> Box<dyn AllocationPolicy> {
    policy::paper_policies()
        .into_iter()
        .find(|p| p.name() == name)
        .expect("paper policy roster")
}

/// Greedy streams *embeddings* (not vertex sets); ring-9 in a 16-vertex
/// complete graph has ~2.3e8 canonical occurrences, which is a soak test,
/// not a benchmark cell. Skip the explosive corner, as the paper's own
/// single-threaded runs effectively did (they report ~10⁴ ms there).
fn tractable(policy: &str, machine: &Topology, k: usize) -> bool {
    policy != "Greedy" || machine.gpu_count() <= 8 || k <= 6
}

/// Median decision latency over `REPS` allocate/release cycles of a
/// k-GPU ring job on an idle `machine`, plus cache counters when cached.
fn measure(machine: &Topology, policy: &str, k: usize, cached: bool) -> (f64, u64, u64) {
    let config = if cached {
        AllocatorConfig::cached()
    } else {
        AllocatorConfig::default()
    };
    let mut alloc = MapaAllocator::new(machine.clone(), policy_by_name(policy)).with_config(config);
    alloc.set_matcher(Matcher::new(MatchOptions::parallel()));
    let mut times = Vec::new();
    for rep in 1..=REPS {
        let job = JobSpec::new(rep, GpuDemand::Whole(k), Workload::Vgg16)
            .with_topology(AppTopology::Ring)
            .with_bandwidth_sensitive(true)
            .with_iterations(1);
        let start = Instant::now();
        let out = alloc.try_allocate(&job).expect("valid request");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(out.is_some(), "idle machine fits the job");
        alloc.release(rep).unwrap();
    }
    let summary = stats::summarize(&times);
    let (hits, misses) = alloc.cache_stats().map_or((0, 0), |c| (c.hits, c.misses));
    (summary.p50, hits, misses)
}

/// Fleet-dispatch overhead: an 8-shard DGX-1 V100 cluster under
/// best-score server selection (one Preserve-policy peek per shard per
/// decision — the per-shard work parallel dispatch spreads over the
/// pool), uncached so every decision pays the full matching + scoring
/// cost. Returns the median per-decision latency in ms. The schedules of
/// the two modes are bit-identical (`tests/dispatch_equivalence.rs`);
/// only this wall-clock differs.
fn measure_cluster_dispatch(mode: DispatchMode) -> f64 {
    let mut cluster = Cluster::homogeneous(
        machines::dgx1_v100(),
        DISPATCH_SHARDS,
        || policy_by_name("Preserve"),
        Box::new(BestScorePolicy),
    )
    .with_dispatch(mode);
    cluster.configure(&SimConfig {
        cached: false,
        ..SimConfig::default()
    });
    let mut times = Vec::new();
    for rep in 1..=DISPATCH_DECISIONS {
        let job = JobSpec::new(
            rep,
            GpuDemand::Whole(2 + (rep as usize % 5)),
            Workload::Vgg16,
        )
        .with_topology(AppTopology::Ring) // 2..=6-GPU mix
        .with_bandwidth_sensitive(true)
        .with_iterations(1);
        let start = Instant::now();
        let placement = cluster.try_place(&job).expect("fleet has room");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        cluster.release(placement.server, rep);
    }
    stats::summarize(&times).p50
}

fn json_escape_free(name: &str) -> &str {
    assert!(
        !name.contains('"') && !name.contains('\\'),
        "plain names only"
    );
    name
}

fn write_json(cells: &[Cell], dispatch_seq_ms: f64, dispatch_par_ms: f64) -> std::path::PathBuf {
    let mut rows = Vec::new();
    for c in cells {
        rows.push(format!(
            "    {{\"machine\": \"{}\", \"policy\": \"{}\", \"gpus\": {}, \
             \"uncached_ms\": {:.6}, \"cached_ms\": {:.6}, \"speedup\": {:.3}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}}}",
            json_escape_free(&c.machine),
            json_escape_free(&c.policy),
            c.gpus,
            c.uncached_ms,
            c.cached_ms,
            c.speedup,
            c.cache_hits,
            c.cache_misses,
            c.cache_hit_rate,
        ));
    }
    let body = format!(
        "{{\n  \"bench\": \"fig19_scheduling_overhead\",\n  \"reps\": {REPS},\n  \
         \"matcher_threads\": {},\n  \
         \"cluster_dispatch\": {{\"shards\": {DISPATCH_SHARDS}, \
         \"decisions\": {DISPATCH_DECISIONS}, \"server_policy\": \"best-score\", \
         \"policy\": \"Preserve\", \"sequential_ms\": {dispatch_seq_ms:.6}, \
         \"parallel_ms\": {dispatch_par_ms:.6}, \"speedup\": {:.3}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        default_threads(),
        dispatch_seq_ms / dispatch_par_ms.max(1e-6),
        rows.join(",\n")
    );
    // CARGO_MANIFEST_DIR = crates/mapa-bench → workspace root is two up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fig19.json");
    std::fs::write(&path, body).expect("write BENCH_fig19.json");
    path.canonicalize().unwrap_or(path)
}

fn main() {
    banner(
        "Fig. 19: scheduling overhead of MAPA (ms), uncached vs cached",
        "paper Fig. 19 + allocation fast path",
    );
    let machines = [
        machines::summit(),
        machines::dgx1_v100(),
        machines::torus_2d(),
        machines::cube_mesh(),
    ];
    let policies = ["baseline", "Topo-aware", "Greedy", "Preserve"];

    let mut cells: Vec<Cell> = Vec::new();
    for machine in &machines {
        for policy in policies {
            for k in 2..=9usize {
                if k > machine.gpu_count() || !tractable(policy, machine, k) {
                    continue;
                }
                let (uncached_ms, _, _) = measure(machine, policy, k, false);
                let (cached_ms, hits, misses) = measure(machine, policy, k, true);
                assert!(
                    hits >= REPS - 1,
                    "repeated job shape on a recurring state must hit the cache \
                     ({policy}/{k} on {}: {hits} hits)",
                    machine.name()
                );
                cells.push(Cell {
                    machine: machine.name().to_string(),
                    policy: policy.to_string(),
                    gpus: k,
                    uncached_ms,
                    cached_ms,
                    // Clamp the denominator to the timer's practical
                    // resolution so sub-tick cached medians cannot produce
                    // `inf`, which is not valid JSON.
                    speedup: uncached_ms / cached_ms.max(1e-6),
                    cache_hits: hits,
                    cache_misses: misses,
                    cache_hit_rate: hits as f64 / (hits + misses) as f64,
                });
            }
        }
    }

    for policy in policies {
        println!("\n-- policy: {policy} (median ms, uncached → cached) --");
        print!("{:<8}", "GPUs");
        for m in &machines {
            print!(" {:>22}", m.name());
        }
        println!();
        for k in 2..=9usize {
            print!("{k:<8}");
            for m in &machines {
                let cell = cells
                    .iter()
                    .find(|c| c.machine == m.name() && c.policy == policy && c.gpus == k);
                match cell {
                    Some(c) => print!(" {:>11.3} → {:>7.3}", c.uncached_ms, c.cached_ms),
                    None => print!(" {:>22}", "-"),
                }
            }
            println!();
        }
    }

    // Fleet dispatch: same decisions, sequential vs parallel shard
    // evaluation. On multi-core hosts parallel spreads the 8 best-score
    // peeks over the pool and wins; on a 1-core host it only measures
    // the (small) scatter overhead — report, don't assert.
    let dispatch_seq_ms = measure_cluster_dispatch(DispatchMode::Sequential);
    let dispatch_par_ms = measure_cluster_dispatch(DispatchMode::Parallel);
    println!(
        "\n-- fleet dispatch: {DISPATCH_SHARDS}× DGX-1 V100, best-score/Preserve, \
         uncached ({DISPATCH_DECISIONS} decisions) --\n\
         sequential {dispatch_seq_ms:>8.3} ms/decision\n\
         parallel   {dispatch_par_ms:>8.3} ms/decision  ({:.2}x, {} worker thread(s))",
        dispatch_seq_ms / dispatch_par_ms.max(1e-6),
        default_threads()
    );

    let speedups: Vec<f64> = cells.iter().map(|c| c.speedup).collect();
    let hit_rates: Vec<f64> = cells.iter().map(|c| c.cache_hit_rate).collect();
    let path = write_json(&cells, dispatch_seq_ms, dispatch_par_ms);
    println!(
        "\n{} cells | median cache speedup {:.1}x | median hit rate {:.0}% | \
         matcher pool: {} thread(s)",
        cells.len(),
        stats::summarize(&speedups).p50,
        stats::summarize(&hit_rates).p50 * 100.0,
        default_threads()
    );
    println!("machine-readable results: {}", path.display());
    println!(
        "\npaper shape: overhead grows with job size and hardware-graph size \
         (the paper's single-threaded scorer reaches ~10^4 ms at 9 GPUs on \
         16-GPU graphs). Our set-streaming scorer keeps the uncached path \
         far below that, and the canonical-state cache answers repeated job \
         shapes on recurring occupancy states in near-constant time."
    );
}
