//! Fig. 3 — Top500 accelerator and interconnect trends (survey data).

use mapa_bench::banner;
use mapa_topology::survey;

fn main() {
    banner(
        "Fig. 3: Top500 accelerator-system trends (embedded survey data)",
        "paper Fig. 3(a)/(b)",
    );
    println!(
        "{:>6} {:>14} {:>16} {:>22}",
        "year", "GPU systems", "other accel.", "heterog. interconn. %"
    );
    for y in survey::top500_trend() {
        println!(
            "{:>6} {:>14} {:>16} {:>22.0}",
            y.year, y.gpu_systems, y.other_accelerator_systems, y.heterogeneous_interconnect_pct
        );
    }
    println!(
        "\nshape check: accelerator systems grow every year, GPUs dominate, \
         and heterogeneous interconnects pass 50% — the paper's motivation. \
         (Static data distilled from the published figure; see DESIGN.md.)"
    );
}
