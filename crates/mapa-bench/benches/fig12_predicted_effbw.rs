//! Fig. 12 — predicted vs actual effective bandwidth.
//!
//! Fit on the unique-(x,y,z) corpus, then predict EffBW for *every*
//! 2–5-GPU allocation and compare against the microbenchmark ground truth,
//! reporting the paper's quality metrics (Relative Error, RMSE, MAE) and
//! checking that the model "generalizes well even when the number of GPUs
//! in a job varies".

use mapa_bench::banner;
use mapa_model::{corpus, metrics, EffBwModel};
use mapa_topology::machines;

fn main() {
    banner("Fig. 12: predicted vs actual EffBW", "paper Fig. 12");
    let dgx = machines::dgx1_v100();
    let train = corpus::build_corpus(&dgx, 2..=5);
    let model = EffBwModel::fit(&train).expect("corpus large enough");

    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>10}",
        "GPUs", "samples", "mean actual", "mean pred.", "Pearson r"
    );
    let mut all_pred = Vec::new();
    let mut all_actual = Vec::new();
    for k in 2..=5usize {
        let test = corpus::build_full_corpus(&dgx, k..=k);
        let pred: Vec<f64> = test.iter().map(|s| model.predict(&s.mix)).collect();
        let actual: Vec<f64> = test.iter().map(|s| s.eff_bw_gbps).collect();
        let r = metrics::pearson(&pred, &actual);
        println!(
            "{k:>5} {:>10} {:>12.2} {:>12.2} {:>10.3}",
            test.len(),
            mapa_bench::mean(&actual),
            mapa_bench::mean(&pred),
            r
        );
        all_pred.extend(pred);
        all_actual.extend(actual);
    }

    let rel = metrics::mean_relative_error(&all_pred, &all_actual);
    let rmse = metrics::rmse(&all_pred, &all_actual);
    let mae = metrics::mae(&all_pred, &all_actual);
    let r = metrics::pearson(&all_pred, &all_actual);
    println!("\n{:<18} {:>10} {:>10}", "metric", "ours", "paper");
    println!("{:<18} {:>10.4} {:>10.4}", "Relative Error", rel, 0.0709);
    println!("{:<18} {:>10.3} {:>10.3}", "RMSE (GB/s)", rmse, 1.5153);
    println!("{:<18} {:>10.3} {:>10.3}", "MAE (GB/s)", mae, 7.0539);
    println!("{:<18} {:>10.3} {:>10}", "Pearson r", r, "-");
    println!(
        "\nshape check: strong predicted-vs-actual correlation across all job \
         sizes — EffBW is a function of the link mix (x,y,z), which is the \
         premise that lets MAPA score matches without microbenchmarking."
    );
}
