//! Workload models — MAPA's substitute for running Caffe on GPUs.
//!
//! The paper evaluates six CNN training workloads (AlexNet, VGG-16,
//! ResNet-50, Inception-v3, GoogleNet, CaffeNet via Caffe/NCCL on ImageNet)
//! and three multi-GPU HPC codes (Cusimann, GMM, Jacobi). None of that can
//! run here, so each workload is modeled analytically:
//!
//! ```text
//! t_iter(allocation) = t_compute + bytes_per_iter / EffBW(allocation, avg_msg)
//! ```
//!
//! with per-workload `(t_compute, bytes_per_iter, avg_msg)` calibrated so
//! that the paper's published characteristics *emerge* from the model
//! rather than being hard-coded:
//!
//! * the bandwidth-sensitivity labels of Fig. 5b,
//! * the double-NVLink-vs-PCIe speedups of Fig. 2b (≈3× for VGG-16,
//!   ≈1.1× for GoogleNet),
//! * the linear-in-iterations execution trends of Fig. 6,
//! * 2-GPU NVLink job durations in the paper's 200–1000 s range (Fig. 13).
//!
//! Modules: [`network`] (the nine workload models), [`perf`] (execution
//! time), [`distributions`] (Fig. 5a message-size CDFs), [`jobs`] (job
//! specs + the paper's Fig. 14 CSV job-file format, now with tenant
//! priorities), [`gangs`] (co-scheduled multi-job workflows), [`generator`]
//! (the 300-job random mix of §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod gangs;
pub mod generator;
pub mod jobs;
pub mod network;
pub mod perf;

pub use gangs::JobGroup;
pub use jobs::{assign_priority_classes, assign_tenants, AppTopology, GpuDemand, JobSpec};
pub use network::{Workload, WorkloadClass};
