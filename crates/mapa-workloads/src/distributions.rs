//! Message-size distributions (the paper's Fig. 5a CDFs).
//!
//! Fig. 5a plots, per network, the cumulative distribution of collective
//! message sizes. We model each network's distribution as log-normal around
//! its calibrated mean message size with a spread typical of layer-wise
//! gradient synchronization (layers span ~3 orders of magnitude), and
//! expose the CDF both analytically and as sampled curve points.

use crate::network::Workload;

/// Log-standard-deviation (in ln-bytes) of the per-layer message sizes.
/// Gradient tensors across CNN layers commonly span ~2–3 decades.
const SIGMA_LN: f64 = 1.6;

/// The CDF of message sizes for `workload`, evaluated at `bytes`.
///
/// A log-normal CDF with median at the workload's calibrated average
/// message size: `Φ((ln s − ln μ) / σ)`.
#[must_use]
pub fn message_size_cdf(workload: Workload, bytes: f64) -> f64 {
    if bytes <= 0.0 {
        return 0.0;
    }
    let mu_ln = workload.model().avg_message_bytes.ln();
    let z = (bytes.ln() - mu_ln) / SIGMA_LN;
    standard_normal_cdf(z)
}

/// One point of a CDF curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Message size in bytes.
    pub bytes: f64,
    /// Cumulative probability in `[0, 1]`.
    pub cdf: f64,
}

/// Samples the Fig. 5a curve for `workload` over `10^lo ..= 10^hi` bytes.
#[must_use]
pub fn cdf_curve(workload: Workload, lo: u32, hi: u32, points_per_decade: usize) -> Vec<CdfPoint> {
    let mut out = Vec::new();
    for d in lo..=hi {
        for p in 0..points_per_decade {
            let bytes = 10f64.powf(f64::from(d) + p as f64 / points_per_decade as f64);
            out.push(CdfPoint {
                bytes,
                cdf: message_size_cdf(workload, bytes),
            });
        }
    }
    out
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (7.1.26), accurate to ~1.5e-7 — plenty for plotting CDFs.
#[must_use]
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        for w in Workload::cnns() {
            let curve = cdf_curve(w, 2, 9, 4);
            for p in &curve {
                assert!((0.0..=1.0).contains(&p.cdf), "{w}: {p:?}");
            }
            for pair in curve.windows(2) {
                assert!(pair[1].cdf >= pair[0].cdf - 1e-12, "{w}");
            }
        }
    }

    #[test]
    fn median_sits_at_average_message_size() {
        for w in Workload::cnns() {
            let mu = w.model().avg_message_bytes;
            let cdf = message_size_cdf(w, mu);
            assert!((cdf - 0.5).abs() < 1e-6, "{w}: CDF({mu}) = {cdf}");
        }
    }

    #[test]
    fn googlenet_is_left_of_vgg() {
        // Fig. 5a: GoogleNet's messages are smaller — at any size its CDF
        // is at least VGG's.
        for exp in 2..9 {
            let s = 10f64.powi(exp);
            assert!(
                message_size_cdf(Workload::GoogleNet, s)
                    >= message_size_cdf(Workload::Vgg16, s) - 1e-12
            );
        }
    }

    #[test]
    fn large_message_networks_cross_1e5_late() {
        // "data size has to be larger than 1e5 to make use of the
        // high-speed links": the sensitive large-message networks still
        // have most of their traffic above 1e5.
        for w in [Workload::Vgg16, Workload::AlexNet, Workload::CaffeNet] {
            assert!(message_size_cdf(w, 1e5) < 0.5, "{w}");
        }
        assert!(message_size_cdf(Workload::GoogleNet, 1e5) > 0.5);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn zero_size_has_zero_mass() {
        assert_eq!(message_size_cdf(Workload::Vgg16, 0.0), 0.0);
        assert_eq!(message_size_cdf(Workload::Vgg16, -5.0), 0.0);
    }
}
