//! The nine evaluated workloads and their communication characteristics.

use std::fmt;

/// Workload category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// CNN training (Caffe + NCCL in the paper).
    CnnTraining,
    /// Non-NN multi-GPU HPC code.
    Hpc,
    /// Latency-SLO inference serving (MoCA/ParvaGPU-style tenants):
    /// short recurring requests, typically on MIG slices.
    Inference,
}

/// One of the paper's evaluated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// AlexNet CNN training — bandwidth sensitive.
    AlexNet,
    /// VGG-16 CNN training — the most bandwidth sensitive (≈3× in Fig. 2b).
    Vgg16,
    /// ResNet-50 CNN training — bandwidth sensitive.
    ResNet50,
    /// Inception-v3 CNN training — bandwidth sensitive.
    InceptionV3,
    /// GoogleNet CNN training — bandwidth *insensitive* (small messages).
    GoogleNet,
    /// CaffeNet CNN training — bandwidth *insensitive* (few calls).
    CaffeNet,
    /// Parallel simulated annealing (Cusimann) — negligible inter-GPU I/O.
    Cusimann,
    /// Gaussian Mixture Model training — negligible inter-GPU I/O.
    Gmm,
    /// Jacobi solver — <3% improvement from fast links in the paper.
    Jacobi,
    /// BERT-style transformer serving — latency-SLO inference tenant.
    /// Not part of the paper's nine; excluded from [`Workload::all`].
    BertServing,
    /// ResNet-50 image-classification serving — latency-SLO inference
    /// tenant. Not part of the paper's nine; excluded from
    /// [`Workload::all`].
    ResNetServing,
}

/// Static model of one workload: everything the scheduler and the
/// performance model need to know.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    /// Which workload this is.
    pub workload: Workload,
    /// Category.
    pub class: WorkloadClass,
    /// Per-iteration compute time in seconds (data-parallel: independent of
    /// GPU count, each GPU processes its own batch shard).
    pub compute_seconds: f64,
    /// Bytes of gradient/halo traffic synchronized per iteration.
    pub comm_bytes_per_iter: f64,
    /// Mean collective message size in bytes (sets where on the Fig. 2a
    /// ramp the workload operates — small messages cannot exploit NVLink).
    pub avg_message_bytes: f64,
    /// Collective calls per GPU per iteration, as published in Fig. 5b.
    pub paper_calls_per_iter: u64,
    /// Bandwidth sensitivity annotation (Fig. 5b / §4 for the HPC codes);
    /// the Preserve policy consumes this flag.
    pub bandwidth_sensitive: bool,
    /// Default training iterations for generated jobs — chosen so baseline
    /// 2-GPU NVLink runs land in the paper's 200–1000 s range.
    pub default_iterations: u64,
}

impl Workload {
    /// All nine workloads in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Workload; 9] {
        [
            Workload::Vgg16,
            Workload::AlexNet,
            Workload::ResNet50,
            Workload::InceptionV3,
            Workload::CaffeNet,
            Workload::GoogleNet,
            Workload::Cusimann,
            Workload::Gmm,
            Workload::Jacobi,
        ]
    }

    /// The inference-serving workloads (not part of the paper's nine —
    /// they never appear in [`Workload::all`], so default job mixes and
    /// golden schedules are unchanged by their existence).
    #[must_use]
    pub fn inference() -> [Workload; 2] {
        [Workload::BertServing, Workload::ResNetServing]
    }

    /// The six CNN workloads of Fig. 5.
    #[must_use]
    pub fn cnns() -> [Workload; 6] {
        [
            Workload::Vgg16,
            Workload::AlexNet,
            Workload::ResNet50,
            Workload::InceptionV3,
            Workload::CaffeNet,
            Workload::GoogleNet,
        ]
    }

    /// The workload's calibrated model. Calibration targets are described
    /// in the crate docs; parameters are simulation inputs, not claims
    /// about real Caffe internals.
    #[must_use]
    pub fn model(self) -> WorkloadModel {
        use Workload::*;
        use WorkloadClass::*;
        match self {
            // CNN models. (compute_s, bytes/iter, avg_msg) calibrated to
            // Fig. 2b speedups: VGG 3.0×, AlexNet 2.3×, ResNet/Inception
            // 1.5×, GoogleNet 1.1×, CaffeNet 1.15×.
            Vgg16 => WorkloadModel {
                workload: self,
                class: CnnTraining,
                compute_seconds: 0.0149,
                comm_bytes_per_iter: 3.2e9,
                avg_message_bytes: 2e6,
                paper_calls_per_iter: 160_001,
                bandwidth_sensitive: true,
                default_iterations: 3000,
            },
            AlexNet => WorkloadModel {
                workload: self,
                class: CnnTraining,
                compute_seconds: 0.0554,
                comm_bytes_per_iter: 1.8e9,
                avg_message_bytes: 1e6,
                paper_calls_per_iter: 80_001,
                bandwidth_sensitive: true,
                default_iterations: 3000,
            },
            ResNet50 => WorkloadModel {
                workload: self,
                class: CnnTraining,
                compute_seconds: 0.154,
                comm_bytes_per_iter: 0.316e9,
                avg_message_bytes: 2e5,
                paper_calls_per_iter: 1_600_001,
                bandwidth_sensitive: true,
                default_iterations: 1500,
            },
            InceptionV3 => WorkloadModel {
                workload: self,
                class: CnnTraining,
                compute_seconds: 0.193,
                comm_bytes_per_iter: 0.395e9,
                avg_message_bytes: 2e5,
                paper_calls_per_iter: 2_830_001,
                bandwidth_sensitive: true,
                default_iterations: 1200,
            },
            GoogleNet => WorkloadModel {
                workload: self,
                class: CnnTraining,
                compute_seconds: 0.282,
                comm_bytes_per_iter: 0.01e9,
                avg_message_bytes: 2e4,
                paper_calls_per_iter: 640_001,
                bandwidth_sensitive: false,
                default_iterations: 2000,
            },
            CaffeNet => WorkloadModel {
                workload: self,
                class: CnnTraining,
                compute_seconds: 0.303,
                comm_bytes_per_iter: 0.4e9,
                avg_message_bytes: 1e6,
                paper_calls_per_iter: 84_936,
                bandwidth_sensitive: false,
                default_iterations: 2000,
            },
            // HPC codes: "negligible inter-GPU communication" (§4, citing
            // the Tartan suite characterization).
            Cusimann => WorkloadModel {
                workload: self,
                class: Hpc,
                compute_seconds: 0.30,
                comm_bytes_per_iter: 1e6,
                avg_message_bytes: 1e6,
                paper_calls_per_iter: 1,
                bandwidth_sensitive: false,
                default_iterations: 1500,
            },
            Gmm => WorkloadModel {
                workload: self,
                class: Hpc,
                compute_seconds: 0.25,
                comm_bytes_per_iter: 1e6,
                avg_message_bytes: 1e6,
                paper_calls_per_iter: 1,
                bandwidth_sensitive: false,
                default_iterations: 1800,
            },
            Jacobi => WorkloadModel {
                workload: self,
                class: Hpc,
                compute_seconds: 0.35,
                comm_bytes_per_iter: 0.02e9,
                avg_message_bytes: 1e6,
                paper_calls_per_iter: 16,
                bandwidth_sensitive: false,
                default_iterations: 1300,
            },
            // Inference tenants: one iteration models one request, so
            // `compute + bytes/EffBW` is the per-request latency the SLO
            // counters compare against. Compute dominates on a healthy
            // slice; the communication term is what co-residency pressure
            // inflates when slices share external links.
            BertServing => WorkloadModel {
                workload: self,
                class: Inference,
                compute_seconds: 0.030,
                comm_bytes_per_iter: 0.2e9,
                avg_message_bytes: 1e6,
                paper_calls_per_iter: 8,
                bandwidth_sensitive: false,
                default_iterations: 2000,
            },
            ResNetServing => WorkloadModel {
                workload: self,
                class: Inference,
                compute_seconds: 0.008,
                comm_bytes_per_iter: 0.05e9,
                avg_message_bytes: 2e5,
                paper_calls_per_iter: 4,
                bandwidth_sensitive: false,
                default_iterations: 4000,
            },
        }
    }

    /// Canonical lowercase name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::AlexNet => "alexnet",
            Workload::Vgg16 => "vgg-16",
            Workload::ResNet50 => "resnet-50",
            Workload::InceptionV3 => "inception-v3",
            Workload::GoogleNet => "googlenet",
            Workload::CaffeNet => "caffenet",
            Workload::Cusimann => "cusimann",
            Workload::Gmm => "gmm",
            Workload::Jacobi => "jacobi",
            Workload::BertServing => "bert-serving",
            Workload::ResNetServing => "resnet-serving",
        }
    }

    /// Parses a canonical name (case-insensitive). Covers the paper's
    /// nine plus the inference-serving workloads.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Workload> {
        let lower = name.to_ascii_lowercase();
        Workload::all()
            .into_iter()
            .chain(Workload::inference())
            .find(|w| w.name() == lower)
    }

    /// Shorthand for `self.model().bandwidth_sensitive`.
    #[must_use]
    pub fn is_bandwidth_sensitive(self) -> bool {
        self.model().bandwidth_sensitive
    }

    /// Whether this is a latency-SLO inference-serving workload.
    #[must_use]
    pub fn is_inference(self) -> bool {
        self.model().class == WorkloadClass::Inference
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_labels_match_fig5b_and_section4() {
        // Fig. 5b: AlexNet, Inception-v3, VGG-16, Resnet-50 → Yes;
        // CaffeNet, GoogleNet → No. §4: cusimann, gmm, jacobi → No.
        assert!(Workload::AlexNet.is_bandwidth_sensitive());
        assert!(Workload::InceptionV3.is_bandwidth_sensitive());
        assert!(Workload::Vgg16.is_bandwidth_sensitive());
        assert!(Workload::ResNet50.is_bandwidth_sensitive());
        assert!(!Workload::CaffeNet.is_bandwidth_sensitive());
        assert!(!Workload::GoogleNet.is_bandwidth_sensitive());
        assert!(!Workload::Cusimann.is_bandwidth_sensitive());
        assert!(!Workload::Gmm.is_bandwidth_sensitive());
        assert!(!Workload::Jacobi.is_bandwidth_sensitive());
    }

    #[test]
    fn paper_call_counts_match_fig5b() {
        assert_eq!(Workload::AlexNet.model().paper_calls_per_iter, 80_001);
        assert_eq!(
            Workload::InceptionV3.model().paper_calls_per_iter,
            2_830_001
        );
        assert_eq!(Workload::Vgg16.model().paper_calls_per_iter, 160_001);
        assert_eq!(Workload::ResNet50.model().paper_calls_per_iter, 1_600_001);
        assert_eq!(Workload::CaffeNet.model().paper_calls_per_iter, 84_936);
        assert_eq!(Workload::GoogleNet.model().paper_calls_per_iter, 640_001);
    }

    #[test]
    fn fig5a_large_message_networks() {
        // "Alexnet, VGG, Inception, and CaffeNet involve an average
        // communication data size of at least 1e5 bytes."
        for w in [
            Workload::AlexNet,
            Workload::Vgg16,
            Workload::InceptionV3,
            Workload::CaffeNet,
        ] {
            assert!(w.model().avg_message_bytes >= 1e5, "{w}");
        }
        // GoogleNet's average is below 1e5.
        assert!(Workload::GoogleNet.model().avg_message_bytes < 1e5);
    }

    #[test]
    fn name_roundtrip() {
        for w in Workload::all().into_iter().chain(Workload::inference()) {
            assert_eq!(Workload::from_name(w.name()), Some(w));
            assert_eq!(Workload::from_name(&w.name().to_uppercase()), Some(w));
        }
        assert_eq!(Workload::from_name("bert"), None);
    }

    #[test]
    fn inference_workloads_stay_out_of_the_paper_mix() {
        // `all()` feeds the default job generator; keeping serving
        // workloads out of it is what preserves the golden schedules.
        for w in Workload::inference() {
            assert!(!Workload::all().contains(&w), "{w}");
            assert!(w.is_inference());
            assert_eq!(w.model().class, WorkloadClass::Inference);
        }
        assert!(Workload::all().iter().all(|w| !w.is_inference()));
    }

    #[test]
    fn inference_requests_are_short() {
        // Per-request latency on a healthy 40 GB/s allocation must land
        // in the tens-of-milliseconds regime an SLO can discriminate.
        for w in Workload::inference() {
            let m = w.model();
            let latency_ms = (m.compute_seconds + m.comm_bytes_per_iter / 40e9) * 1e3;
            assert!(
                (1.0..200.0).contains(&latency_ms),
                "{w}: {latency_ms} ms/request"
            );
        }
    }

    #[test]
    fn hpc_codes_have_negligible_traffic() {
        for w in [Workload::Cusimann, Workload::Gmm] {
            let m = w.model();
            // Communication per iteration is ≤ a few MB.
            assert!(m.comm_bytes_per_iter <= 2e6, "{w}");
            assert_eq!(m.class, WorkloadClass::Hpc);
        }
    }

    #[test]
    fn all_models_are_positive_and_finite() {
        for w in Workload::all() {
            let m = w.model();
            assert!(m.compute_seconds > 0.0);
            assert!(m.comm_bytes_per_iter > 0.0);
            assert!(m.avg_message_bytes > 0.0);
            assert!(m.default_iterations > 0);
        }
    }
}
