//! Gangs: multi-job workflows whose members must be co-scheduled.
//!
//! A distributed training pipeline or a coupled HPC workflow submits
//! *sets* of jobs that only make progress together — MAGMA
//! (arXiv:2104.13997) optimizes exactly such job-set mappings onto many
//! accelerators at once. A [`JobGroup`] is that unit of submission: the
//! scheduler must start **all members at the same simulation tick or none
//! of them** (all-or-nothing admission), possibly spread across several
//! servers of a cluster. Members are ordinary [`JobSpec`]s; the gang adds
//! only the co-scheduling constraint and an identity.

use crate::jobs::JobSpec;

/// A gang: jobs that must start together (all-or-nothing, same tick).
#[derive(Debug, Clone, PartialEq)]
pub struct JobGroup {
    /// Gang identity — unique among gangs in one run, and stamped on
    /// every member's simulation record.
    pub id: u64,
    /// The member jobs, in submission order. Never empty.
    pub members: Vec<JobSpec>,
}

impl JobGroup {
    /// Builds a gang over `members`.
    ///
    /// # Panics
    /// Panics when `members` is empty — an empty gang has no admission
    /// semantics.
    #[must_use]
    pub fn new(id: u64, members: Vec<JobSpec>) -> Self {
        assert!(!members.is_empty(), "a gang needs at least one member");
        Self { id, members }
    }

    /// Number of member jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the gang has no members (never true for a constructed
    /// gang; present for clippy's `len_without_is_empty` convention).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// GPUs the whole gang needs simultaneously.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.members.iter().map(|m| m.num_gpus()).sum()
    }

    /// Highest member priority — the priority the gang presents to
    /// admission ordering.
    #[must_use]
    pub fn priority(&self) -> u8 {
        self.members.iter().map(|m| m.priority).max().unwrap_or(0)
    }

    /// Chunks a flat job list into gangs of `size` consecutive jobs (the
    /// last gang may be smaller). Gang ids count up from 1 in chunk
    /// order. `size = 0` is clamped to 1 (every job its own gang) — the
    /// CLI's `--gang-size` flag calls exactly this.
    #[must_use]
    pub fn chunk(jobs: Vec<JobSpec>, size: usize) -> Vec<JobGroup> {
        let size = size.max(1);
        let mut gangs = Vec::with_capacity(jobs.len().div_ceil(size));
        let mut members = Vec::with_capacity(size);
        for job in jobs {
            members.push(job);
            if members.len() == size {
                gangs.push(JobGroup::new(
                    gangs.len() as u64 + 1,
                    std::mem::take(&mut members),
                ));
            }
        }
        if !members.is_empty() {
            gangs.push(JobGroup::new(gangs.len() as u64 + 1, members));
        }
        gangs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::GpuDemand;
    use crate::network::Workload;

    fn job(id: u64, n: usize, priority: u8) -> JobSpec {
        JobSpec::new(id, GpuDemand::Whole(n), Workload::Vgg16)
            .with_iterations(10)
            .with_priority(priority)
    }

    #[test]
    fn gang_accessors() {
        let g = JobGroup::new(7, vec![job(1, 2, 0), job(2, 3, 4), job(3, 1, 1)]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.total_gpus(), 6);
        assert_eq!(g.priority(), 4, "gang presents its highest member class");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_gang_panics() {
        let _ = JobGroup::new(1, Vec::new());
    }

    #[test]
    fn chunking_preserves_order_and_covers_every_job() {
        let jobs: Vec<JobSpec> = (1..=7).map(|i| job(i, 1, 0)).collect();
        let gangs = JobGroup::chunk(jobs.clone(), 3);
        assert_eq!(gangs.len(), 3);
        assert_eq!(gangs[0].members.len(), 3);
        assert_eq!(gangs[2].members.len(), 1, "tail gang keeps the remainder");
        assert_eq!(
            gangs.iter().map(|g| g.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let flattened: Vec<u64> = gangs
            .iter()
            .flat_map(|g| g.members.iter().map(|m| m.id))
            .collect();
        assert_eq!(flattened, (1..=7).collect::<Vec<_>>());
        // Degenerate sizes: 0 clamps to singleton gangs.
        assert_eq!(JobGroup::chunk(jobs, 0).len(), 7);
    }
}
