//! Random job-mix generation — the paper's §4 configuration.
//!
//! "We randomly generated a job file of 300 jobs consisting of a uniform
//! mix of training jobs … these jobs are generated with a random number of
//! requested GPUs, from 1 to 5, which follows a uniform distribution"
//! (citing Philly's observation that multi-tenant GPU request sizes are
//! roughly uniform).
//!
//! Beyond the paper, [`JobMixConfig::inference_fraction`] mixes in
//! SLO-tagged inference tenants (fractional slice demands, short recurring
//! requests) for the MIG/spatial-sharing studies. The fraction defaults to
//! `0.0`, and a zero fraction consumes exactly the paper's RNG stream, so
//! default mixes — and every golden schedule built on them — are
//! bit-identical to earlier releases.

use crate::jobs::{GpuDemand, JobSpec};
use crate::network::Workload;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a random job mix.
#[derive(Debug, Clone)]
pub struct JobMixConfig {
    /// Number of jobs to generate (paper: 300).
    pub job_count: usize,
    /// Inclusive range of requested GPUs (paper: 1–5).
    pub gpus_min: usize,
    /// See `gpus_min`.
    pub gpus_max: usize,
    /// Workload pool to draw from uniformly (paper: all nine).
    pub workloads: Vec<Workload>,
    /// Iteration jitter: each job's iterations are scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]` so durations vary (paper jobs
    /// embed measured execution times with natural variance).
    pub iteration_jitter: f64,
    /// Fraction of jobs that are SLO-tagged inference tenants in `[0, 1]`
    /// (default `0.0` — the paper's pure-training mix). Inference jobs
    /// draw from [`Workload::inference`], request [`GpuDemand::Slices`],
    /// and carry a latency SLO.
    pub inference_fraction: f64,
    /// Inclusive upper bound on an inference tenant's slice demand
    /// (lower bound is 1).
    pub inference_slices_max: usize,
    /// Latency SLO stamped on inference jobs, in milliseconds. `None`
    /// (the default) derives a per-workload target from
    /// [`default_slo_ms`].
    pub inference_slo_ms: Option<f64>,
}

impl Default for JobMixConfig {
    fn default() -> Self {
        Self {
            job_count: 300,
            gpus_min: 1,
            gpus_max: 5,
            workloads: Workload::all().to_vec(),
            iteration_jitter: 0.2,
            inference_fraction: 0.0,
            inference_slices_max: 2,
            inference_slo_ms: None,
        }
    }
}

/// The default per-request latency SLO for an inference workload: its
/// healthy-allocation latency (compute + communication at a 40 GB/s
/// effective bandwidth) with 25% headroom. Tight enough that saturated
/// co-residency misses it, loose enough that a well-spread placement
/// meets it.
#[must_use]
pub fn default_slo_ms(workload: Workload) -> f64 {
    let m = workload.model();
    (m.compute_seconds + m.comm_bytes_per_iter / 40e9) * 1e3 * 1.25
}

/// Generates a reproducible random job mix.
///
/// Application topology defaults to [`crate::jobs::AppTopology::Ring`]
/// for multi-GPU CNN jobs (NCCL's large-transfer choice) and `Ring` for
/// HPC codes as well; 1-GPU jobs get `Ring` trivially (no edges).
///
/// Inference tenants are interleaved deterministically (an accumulator
/// over `inference_fraction`, not an RNG draw), so a zero fraction leaves
/// the paper's RNG stream untouched.
///
/// # Panics
/// Panics if the config is degenerate (`gpus_min > gpus_max`, zero
/// workloads, jitter outside `[0, 1)`, `inference_fraction` outside
/// `[0, 1]`, or a zero `inference_slices_max` with a positive fraction).
#[must_use]
pub fn generate_jobs(config: &JobMixConfig, seed: u64) -> Vec<JobSpec> {
    assert!(config.gpus_min >= 1 && config.gpus_min <= config.gpus_max);
    assert!(!config.workloads.is_empty(), "need at least one workload");
    assert!((0.0..1.0).contains(&config.iteration_jitter));
    assert!(
        (0.0..=1.0).contains(&config.inference_fraction),
        "inference fraction must be in [0, 1]"
    );
    assert!(
        config.inference_fraction == 0.0 || config.inference_slices_max >= 1,
        "inference jobs need at least one slice"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0.0f64;
    (0..config.job_count)
        .map(|i| {
            let id = i as u64 + 1;
            acc += config.inference_fraction;
            let inference = acc >= 1.0 - 1e-12;
            if inference {
                acc -= 1.0;
                let pool = Workload::inference();
                let workload = *pool.choose(&mut rng).expect("non-empty pool");
                let model = workload.model();
                let slices = rng.random_range(1..=config.inference_slices_max);
                let jitter = 1.0 + config.iteration_jitter * (rng.random_range(-1.0f64..=1.0));
                let iterations = ((model.default_iterations as f64) * jitter)
                    .round()
                    .max(1.0) as u64;
                let slo = config
                    .inference_slo_ms
                    .unwrap_or_else(|| default_slo_ms(workload));
                JobSpec::new(id, GpuDemand::Slices(slices), workload)
                    .with_iterations(iterations)
                    .with_slo(slo)
            } else {
                let workload = *config.workloads.choose(&mut rng).expect("non-empty pool");
                let model = workload.model();
                let num_gpus = rng.random_range(config.gpus_min..=config.gpus_max);
                let jitter = 1.0 + config.iteration_jitter * (rng.random_range(-1.0f64..=1.0));
                let iterations = ((model.default_iterations as f64) * jitter)
                    .round()
                    .max(1.0) as u64;
                JobSpec::new(id, GpuDemand::Whole(num_gpus), workload).with_iterations(iterations)
            }
        })
        .collect()
}

/// The paper's exact §4 mix: 300 jobs, 1–5 GPUs, all nine workloads.
#[must_use]
pub fn paper_job_mix(seed: u64) -> Vec<JobSpec> {
    generate_jobs(&JobMixConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = paper_job_mix(42);
        let b = paper_job_mix(42);
        assert_eq!(a, b);
        let c = paper_job_mix(43);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_configuration_bounds() {
        let jobs = paper_job_mix(7);
        assert_eq!(jobs.len(), 300);
        for j in &jobs {
            assert!((1..=5).contains(&j.num_gpus()));
            assert!(!j.is_fractional());
            assert!(!j.has_slo());
            assert!(j.iterations > 0);
            assert_eq!(j.bandwidth_sensitive, j.workload.is_bandwidth_sensitive());
        }
        // Unique, consecutive ids.
        let ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, (1..=300).collect::<Vec<u64>>());
    }

    #[test]
    fn gpu_sizes_are_roughly_uniform() {
        let jobs = paper_job_mix(123);
        let mut counts = HashMap::new();
        for j in &jobs {
            *counts.entry(j.num_gpus()).or_insert(0usize) += 1;
        }
        // 300 jobs over 5 sizes: expect 60 each; allow generous slack.
        for size in 1..=5 {
            let c = counts[&size];
            assert!((35..=85).contains(&c), "size {size}: count {c}");
        }
    }

    #[test]
    fn workload_mix_is_roughly_uniform() {
        let jobs = paper_job_mix(99);
        let mut counts = HashMap::new();
        for j in &jobs {
            *counts.entry(j.workload).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 9, "all workloads appear");
        for (w, c) in counts {
            assert!((15..=55).contains(&c), "{w}: count {c}");
        }
    }

    #[test]
    fn jitter_varies_iterations() {
        let jobs = paper_job_mix(5);
        let vggs: Vec<u64> = jobs
            .iter()
            .filter(|j| j.workload == Workload::Vgg16)
            .map(|j| j.iterations)
            .collect();
        assert!(vggs.len() > 5);
        let min = vggs.iter().min().unwrap();
        let max = vggs.iter().max().unwrap();
        assert!(max > min, "jitter must vary iteration counts");
        // Within the configured ±20%.
        let base = Workload::Vgg16.model().default_iterations as f64;
        assert!(*min as f64 >= base * 0.79);
        assert!(*max as f64 <= base * 1.21);
    }

    #[test]
    fn custom_config() {
        let cfg = JobMixConfig {
            job_count: 10,
            gpus_min: 2,
            gpus_max: 3,
            workloads: vec![Workload::Jacobi],
            iteration_jitter: 0.0,
            ..JobMixConfig::default()
        };
        let jobs = generate_jobs(&cfg, 1);
        assert_eq!(jobs.len(), 10);
        assert!(jobs.iter().all(|j| j.workload == Workload::Jacobi));
        assert!(jobs.iter().all(|j| (2..=3).contains(&j.num_gpus())));
        let iters = Workload::Jacobi.model().default_iterations;
        assert!(jobs.iter().all(|j| j.iterations == iters));
    }

    #[test]
    fn inference_fraction_mixes_slo_tenants() {
        let cfg = JobMixConfig {
            job_count: 100,
            inference_fraction: 0.25,
            ..JobMixConfig::default()
        };
        let jobs = generate_jobs(&cfg, 11);
        let inference: Vec<_> = jobs.iter().filter(|j| j.workload.is_inference()).collect();
        // The accumulator interleaving is exact, not probabilistic.
        assert_eq!(inference.len(), 25);
        for j in &inference {
            assert!(j.is_fractional());
            assert!((1..=2).contains(&j.num_gpus()));
            assert_eq!(j.slo_ms, Some(default_slo_ms(j.workload)), "{}", j.id);
        }
        // Training jobs are untouched by the mix.
        for j in jobs.iter().filter(|j| !j.workload.is_inference()) {
            assert!(!j.is_fractional());
            assert!(!j.has_slo());
        }
    }

    #[test]
    fn explicit_slo_overrides_the_derived_target() {
        let cfg = JobMixConfig {
            job_count: 10,
            inference_fraction: 1.0,
            inference_slo_ms: Some(33.0),
            ..JobMixConfig::default()
        };
        let jobs = generate_jobs(&cfg, 3);
        assert!(jobs.iter().all(|j| j.slo_ms == Some(33.0)));
        assert!(jobs.iter().all(|j| j.workload.is_inference()));
    }

    #[test]
    fn zero_fraction_preserves_the_paper_stream() {
        // The inference gate must not consume RNG draws: a 0.0 fraction
        // yields the identical mix as the config that predates it.
        let jobs = generate_jobs(&JobMixConfig::default(), 42);
        assert_eq!(jobs, paper_job_mix(42));
        assert!(jobs.iter().all(|j| !j.workload.is_inference()));
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_pool_panics() {
        let cfg = JobMixConfig {
            workloads: vec![],
            ..JobMixConfig::default()
        };
        let _ = generate_jobs(&cfg, 0);
    }

    #[test]
    #[should_panic(expected = "inference fraction")]
    fn out_of_range_fraction_panics() {
        let cfg = JobMixConfig {
            inference_fraction: 1.5,
            ..JobMixConfig::default()
        };
        let _ = generate_jobs(&cfg, 0);
    }
}
