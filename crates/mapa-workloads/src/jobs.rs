//! Job specifications and the paper's job-file format.
//!
//! Fig. 14 shows the simulator input: "Each row in a job file corresponds
//! to a job and is annotated with a job ID, number of GPUs, application
//! topology, and bandwidth sensitivity":
//!
//! ```text
//! ID, NumGPUs, Topology, BW Sensitive
//! 1, 3, Ring, True
//! 2, 4, Ring, True
//! 3, 5, Tree, False
//! ```
//!
//! We carry three extra columns — workload name, iterations, and an
//! optional tenant priority — so the execution-time model can run the job
//! (the paper's job files embed "execution times from real-world runs"
//! the same way) and the preemption layer can tell tenant classes apart.
//! The `Priority` column may be omitted (it defaults to 0); files written
//! by [`write_job_file`] always carry it.

use crate::network::Workload;
use std::fmt;

/// The application communication topology (paper Fig. 8): how the job's
/// GPUs talk to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AppTopology {
    /// NCCL ring (default for large transfers).
    #[default]
    Ring,
    /// NCCL tree (small transfers / latency bound).
    Tree,
    /// Ring and tree combined (the conservative union of Fig. 8 right).
    RingTree,
    /// Fully connected (e.g. unknown/implicit communication — the
    /// conservative fallback mentioned in §3.1).
    AllToAll,
}

impl AppTopology {
    /// Canonical name used in job files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppTopology::Ring => "Ring",
            AppTopology::Tree => "Tree",
            AppTopology::RingTree => "RingTree",
            AppTopology::AllToAll => "AllToAll",
        }
    }

    /// Parses a job-file topology name (case-insensitive).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ring" => Some(AppTopology::Ring),
            "tree" => Some(AppTopology::Tree),
            "ringtree" | "ring+tree" => Some(AppTopology::RingTree),
            "alltoall" | "all-to-all" => Some(AppTopology::AllToAll),
            _ => None,
        }
    }
}

impl fmt::Display for AppTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One job in a job file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job identifier (unique within a job file).
    pub id: u64,
    /// GPUs requested (1–5 in the paper's mix).
    pub num_gpus: usize,
    /// Application communication topology.
    pub topology: AppTopology,
    /// Bandwidth-sensitivity annotation consumed by the Preserve policy.
    pub bandwidth_sensitive: bool,
    /// The workload driving the execution-time model.
    pub workload: Workload,
    /// Training iterations to run.
    pub iterations: u64,
    /// Tenant priority: larger is more important, 0 (the default) is the
    /// lowest class. Priorities only matter to a scheduler running a
    /// non-`None` preemption policy — with preemption off they are inert
    /// annotations and schedules are identical to all-zero priorities.
    pub priority: u8,
}

impl JobSpec {
    /// Returns the job with its priority replaced (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// Assigns round-robin tenant classes by job id: `priority = id % classes`
/// (so `classes = 1` leaves every job at priority 0). A quick way to turn
/// a flat job file into a multi-class tenant mix for preemption studies —
/// the CLI's `--priorities N` flag calls exactly this.
pub fn assign_priority_classes(jobs: &mut [JobSpec], classes: u8) {
    let classes = classes.max(1);
    for job in jobs {
        job.priority = (job.id % u64::from(classes)) as u8;
    }
}

/// Errors from job-file parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFileError {
    /// Wrong number of fields on a line.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
        /// Offending text.
        value: String,
    },
    /// Duplicate job id.
    DuplicateId(u64),
}

impl fmt::Display for JobFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFileError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 6 or 7 fields, found {found}")
            }
            JobFileError::BadField { line, field, value } => {
                write!(f, "line {line}: bad {field}: '{value}'")
            }
            JobFileError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
        }
    }
}

impl std::error::Error for JobFileError {}

/// Serializes jobs into the CSV job-file format (with header).
#[must_use]
pub fn write_job_file(jobs: &[JobSpec]) -> String {
    let mut out =
        String::from("ID, NumGPUs, Topology, BW Sensitive, Workload, Iterations, Priority\n");
    for j in jobs {
        out.push_str(&format!(
            "{}, {}, {}, {}, {}, {}, {}\n",
            j.id,
            j.num_gpus,
            j.topology,
            if j.bandwidth_sensitive {
                "True"
            } else {
                "False"
            },
            j.workload,
            j.iterations,
            j.priority
        ));
    }
    out
}

/// Parses a CSV job file (header optional).
///
/// # Errors
/// Returns the first [`JobFileError`] encountered.
pub fn parse_job_file(input: &str) -> Result<Vec<JobSpec>, JobFileError> {
    let mut jobs = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        // Header detection: first field is not a number.
        if fields[0].parse::<u64>().is_err() && fields[0].eq_ignore_ascii_case("id") {
            continue;
        }
        if fields.len() != 6 && fields.len() != 7 {
            return Err(JobFileError::FieldCount {
                line,
                found: fields.len(),
            });
        }
        let parse_u64 = |field: &'static str, s: &str| {
            s.parse::<u64>().map_err(|_| JobFileError::BadField {
                line,
                field,
                value: s.to_string(),
            })
        };
        let id = parse_u64("ID", fields[0])?;
        if !seen.insert(id) {
            return Err(JobFileError::DuplicateId(id));
        }
        let num_gpus = parse_u64("NumGPUs", fields[1])? as usize;
        let topology = AppTopology::from_name(fields[2]).ok_or_else(|| JobFileError::BadField {
            line,
            field: "Topology",
            value: fields[2].to_string(),
        })?;
        let bandwidth_sensitive = match fields[3].to_ascii_lowercase().as_str() {
            "true" | "yes" | "1" => true,
            "false" | "no" | "0" => false,
            other => {
                return Err(JobFileError::BadField {
                    line,
                    field: "BW Sensitive",
                    value: other.to_string(),
                })
            }
        };
        let workload = Workload::from_name(fields[4]).ok_or_else(|| JobFileError::BadField {
            line,
            field: "Workload",
            value: fields[4].to_string(),
        })?;
        let iterations = parse_u64("Iterations", fields[5])?;
        let priority = match fields.get(6) {
            Some(s) => s.parse::<u8>().map_err(|_| JobFileError::BadField {
                line,
                field: "Priority",
                value: (*s).to_string(),
            })?,
            None => 0,
        };
        jobs.push(JobSpec {
            id,
            num_gpus,
            topology,
            bandwidth_sensitive,
            workload,
            iterations,
            priority,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                id: 1,
                num_gpus: 3,
                topology: AppTopology::Ring,
                bandwidth_sensitive: true,
                workload: Workload::Vgg16,
                iterations: 3000,
                priority: 0,
            },
            JobSpec {
                id: 2,
                num_gpus: 5,
                topology: AppTopology::Tree,
                bandwidth_sensitive: false,
                workload: Workload::GoogleNet,
                iterations: 2000,
                priority: 2,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let jobs = sample_jobs();
        let text = write_job_file(&jobs);
        let parsed = parse_job_file(&text).unwrap();
        assert_eq!(parsed, jobs);
    }

    #[test]
    fn parses_paper_style_rows() {
        let text = "ID, NumGPUs, Topology, BW Sensitive, Workload, Iterations\n\
                    1, 3, Ring, True, vgg-16, 100\n\
                    # a comment line\n\
                    2, 4, RingTree, False, jacobi, 50\n";
        let jobs = parse_job_file(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].workload, Workload::Vgg16);
        assert_eq!(jobs[1].topology, AppTopology::RingTree);
        assert!(!jobs[1].bandwidth_sensitive);
        // Six-column files (the paper's format) default priority to 0.
        assert_eq!(jobs[0].priority, 0);
        assert_eq!(jobs[1].priority, 0);
    }

    #[test]
    fn priority_column_parses_and_defaults() {
        let text = "1, 2, Ring, True, vgg-16, 100, 3\n2, 2, Ring, True, vgg-16, 100\n";
        let jobs = parse_job_file(text).unwrap();
        assert_eq!(jobs[0].priority, 3);
        assert_eq!(jobs[1].priority, 0);
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16, 100, urgent"),
            Err(JobFileError::BadField {
                field: "Priority",
                ..
            })
        ));
    }

    #[test]
    fn priority_classes_follow_job_ids() {
        let mut jobs: Vec<JobSpec> = (1..=6)
            .map(|id| JobSpec {
                id,
                ..sample_jobs()[0].clone().with_priority(9)
            })
            .collect();
        assign_priority_classes(&mut jobs, 3);
        let priorities: Vec<u8> = jobs.iter().map(|j| j.priority).collect();
        assert_eq!(priorities, vec![1, 2, 0, 1, 2, 0]);
        // One class flattens everything back to priority 0.
        assign_priority_classes(&mut jobs, 1);
        assert!(jobs.iter().all(|j| j.priority == 0));
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16"),
            Err(JobFileError::FieldCount { line: 1, found: 5 })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Mesh, True, vgg-16, 5"),
            Err(JobFileError::BadField {
                field: "Topology",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, maybe, vgg-16, 5"),
            Err(JobFileError::BadField {
                field: "BW Sensitive",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, bert, 5"),
            Err(JobFileError::BadField {
                field: "Workload",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16, 5\n1, 2, Ring, True, vgg-16, 5"),
            Err(JobFileError::DuplicateId(1))
        ));
        assert!(matches!(
            parse_job_file("x, 2, Ring, True, vgg-16, 5"),
            Err(JobFileError::BadField { field: "ID", .. })
        ));
    }

    #[test]
    fn topology_name_roundtrip() {
        for t in [
            AppTopology::Ring,
            AppTopology::Tree,
            AppTopology::RingTree,
            AppTopology::AllToAll,
        ] {
            assert_eq!(AppTopology::from_name(t.name()), Some(t));
        }
        assert_eq!(
            AppTopology::from_name("ring+tree"),
            Some(AppTopology::RingTree)
        );
        assert_eq!(AppTopology::from_name("mesh"), None);
    }

    #[test]
    fn empty_file_is_empty_jobs() {
        assert_eq!(parse_job_file("").unwrap(), vec![]);
        assert_eq!(parse_job_file("\n\n# only comments\n").unwrap(), vec![]);
    }

    proptest::proptest! {
        /// Arbitrary text never panics the parser — it either parses or
        /// reports a structured error.
        #[test]
        fn parser_is_total(input in proptest::prelude::any::<String>()) {
            let _ = parse_job_file(&input);
        }

        /// Every generated job list round-trips through the file format.
        #[test]
        fn roundtrip_for_generated_jobs(
            count in 1usize..20,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let cfg = crate::generator::JobMixConfig {
                job_count: count,
                ..Default::default()
            };
            let jobs = crate::generator::generate_jobs(&cfg, seed);
            let text = write_job_file(&jobs);
            let parsed = parse_job_file(&text).expect("own output parses");
            proptest::prop_assert_eq!(parsed, jobs);
        }
    }
}
