//! Job specifications and the paper's job-file format.
//!
//! Fig. 14 shows the simulator input: "Each row in a job file corresponds
//! to a job and is annotated with a job ID, number of GPUs, application
//! topology, and bandwidth sensitivity":
//!
//! ```text
//! ID, NumGPUs, Topology, BW Sensitive
//! 1, 3, Ring, True
//! 2, 4, Ring, True
//! 3, 5, Tree, False
//! ```
//!
//! We carry extra columns — workload name, iterations, an optional tenant
//! priority, an optional per-request latency SLO, and an optional tenant
//! id — so the execution-time model can run the job (the paper's job
//! files embed "execution times from real-world runs" the same way), the
//! preemption layer can tell tenant classes apart, inference tenants can
//! carry their deadline, and the federation tier can charge quotas to the
//! right tenant. The `NumGPUs` column accepts a `s` suffix for
//! fractional demands (`3s` = three MIG slices); the `SloMs` and
//! `Tenant` columns may be omitted or `-` (untagged). Files written by
//! [`write_job_file`] use the legacy 7-column format whenever no job
//! needs the new columns, so old files and old readers keep working.

use crate::network::Workload;
use std::fmt;

/// The application communication topology (paper Fig. 8): how the job's
/// GPUs talk to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AppTopology {
    /// NCCL ring (default for large transfers).
    #[default]
    Ring,
    /// NCCL tree (small transfers / latency bound).
    Tree,
    /// Ring and tree combined (the conservative union of Fig. 8 right).
    RingTree,
    /// Fully connected (e.g. unknown/implicit communication — the
    /// conservative fallback mentioned in §3.1).
    AllToAll,
}

impl AppTopology {
    /// Canonical name used in job files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppTopology::Ring => "Ring",
            AppTopology::Tree => "Tree",
            AppTopology::RingTree => "RingTree",
            AppTopology::AllToAll => "AllToAll",
        }
    }

    /// Parses a job-file topology name (case-insensitive).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ring" => Some(AppTopology::Ring),
            "tree" => Some(AppTopology::Tree),
            "ringtree" | "ring+tree" => Some(AppTopology::RingTree),
            "alltoall" | "all-to-all" => Some(AppTopology::AllToAll),
            _ => None,
        }
    }
}

impl fmt::Display for AppTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How many accelerator units a job wants, and of what granularity.
///
/// `Whole(n)` is the paper's demand model: `n` physical GPUs, and the job
/// never shares a die with anyone. `Slices(k)` is the MIG/fractional
/// demand: `k` slice-or-GPU vertices, which *may* land on slices that
/// co-reside on a physical GPU (and on an unpartitioned machine simply
/// land on whole GPUs). Both demands occupy one topology vertex per unit —
/// the difference is which vertices are eligible and how co-residency is
/// scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuDemand {
    /// `n` whole physical GPUs (never placed on MIG slices).
    Whole(usize),
    /// `k` fractional slices (placeable on slices or whole GPUs).
    Slices(usize),
}

impl GpuDemand {
    /// Number of topology vertices the demand occupies.
    #[must_use]
    pub fn units(self) -> usize {
        match self {
            GpuDemand::Whole(n) | GpuDemand::Slices(n) => n,
        }
    }

    /// Whether this is a fractional (slice) demand.
    #[must_use]
    pub fn is_fractional(self) -> bool {
        matches!(self, GpuDemand::Slices(_))
    }

    /// Parses the job-file spelling: `"3"` → `Whole(3)`, `"3s"` →
    /// `Slices(3)` (suffix case-insensitive).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        let s = s.trim();
        if let Some(head) = s.strip_suffix(['s', 'S']) {
            head.parse::<u64>()
                .ok()
                .map(|n| GpuDemand::Slices(n as usize))
        } else {
            s.parse::<u64>().ok().map(|n| GpuDemand::Whole(n as usize))
        }
    }
}

impl fmt::Display for GpuDemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuDemand::Whole(n) => write!(f, "{n}"),
            GpuDemand::Slices(n) => write!(f, "{n}s"),
        }
    }
}

/// One job in a job file.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`JobSpec::new`] and the `with_*` builders so new fields (like the
/// fractional demand and the SLO) can land without breaking downstream
/// code.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct JobSpec {
    /// Job identifier (unique within a job file).
    pub id: u64,
    /// Accelerator demand: whole GPUs (1–5 in the paper's mix) or MIG
    /// slices.
    pub demand: GpuDemand,
    /// Application communication topology.
    pub topology: AppTopology,
    /// Bandwidth-sensitivity annotation consumed by the Preserve policy.
    pub bandwidth_sensitive: bool,
    /// The workload driving the execution-time model.
    pub workload: Workload,
    /// Training iterations (or, for inference workloads, requests) to run.
    pub iterations: u64,
    /// Tenant priority: larger is more important, 0 (the default) is the
    /// lowest class. Priorities only matter to a scheduler running a
    /// non-`None` preemption policy — with preemption off they are inert
    /// annotations and schedules are identical to all-zero priorities.
    pub priority: u8,
    /// Per-request latency SLO in milliseconds (inference tenants).
    /// `None` (the default) means the job carries no deadline; the
    /// engine counts SLO attainment only for tagged jobs.
    pub slo_ms: Option<f64>,
    /// Tenant identity for federation quota accounting. `None` (the
    /// default) means the job belongs to no tenant: quotas never apply
    /// and per-tenant counters skip it.
    pub tenant: Option<u64>,
}

impl JobSpec {
    /// Builds a job with the workload's model defaults: `Ring` topology,
    /// the workload's bandwidth-sensitivity annotation, its default
    /// iteration count, priority 0, and no SLO.
    #[must_use]
    pub fn new(id: u64, demand: GpuDemand, workload: Workload) -> Self {
        let model = workload.model();
        JobSpec {
            id,
            demand,
            topology: AppTopology::Ring,
            bandwidth_sensitive: model.bandwidth_sensitive,
            workload,
            iterations: model.default_iterations,
            priority: 0,
            slo_ms: None,
            tenant: None,
        }
    }

    /// Number of topology vertices (GPUs or slices) the job occupies.
    #[must_use]
    pub fn num_gpus(&self) -> usize {
        self.demand.units()
    }

    /// Whether the job requests fractional slices rather than whole GPUs.
    #[must_use]
    pub fn is_fractional(&self) -> bool {
        self.demand.is_fractional()
    }

    /// Whether the job carries a latency SLO.
    #[must_use]
    pub fn has_slo(&self) -> bool {
        self.slo_ms.is_some()
    }

    /// Whether the job is tagged with a tenant identity.
    #[must_use]
    pub fn has_tenant(&self) -> bool {
        self.tenant.is_some()
    }

    /// Returns the job with its demand replaced (builder style).
    #[must_use]
    pub fn with_demand(mut self, demand: GpuDemand) -> Self {
        self.demand = demand;
        self
    }

    /// Returns the job with its application topology replaced.
    #[must_use]
    pub fn with_topology(mut self, topology: AppTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Returns the job with its bandwidth-sensitivity annotation replaced.
    #[must_use]
    pub fn with_bandwidth_sensitive(mut self, sensitive: bool) -> Self {
        self.bandwidth_sensitive = sensitive;
        self
    }

    /// Returns the job with its iteration count replaced.
    #[must_use]
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Returns the job with its priority replaced (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Returns the job tagged with a per-request latency SLO.
    #[must_use]
    pub fn with_slo(mut self, target_ms: f64) -> Self {
        self.slo_ms = Some(target_ms);
        self
    }

    /// Returns the job tagged with a tenant identity (builder style).
    #[must_use]
    pub fn with_tenant(mut self, tenant: u64) -> Self {
        self.tenant = Some(tenant);
        self
    }
}

/// Assigns round-robin tenant classes by job id: `priority = id % classes`
/// (so `classes = 1` leaves every job at priority 0). A quick way to turn
/// a flat job file into a multi-class tenant mix for preemption studies —
/// the CLI's `--priorities N` flag calls exactly this.
pub fn assign_priority_classes(jobs: &mut [JobSpec], classes: u8) {
    let classes = classes.max(1);
    for job in jobs {
        job.priority = (job.id % u64::from(classes)) as u8;
    }
}

/// Assigns round-robin tenant identities by job id: `tenant = id % tenants`.
/// With `tenants = 0` every job is untagged instead (quotas never apply).
/// The CLI's `--tenants N` flag calls exactly this.
pub fn assign_tenants(jobs: &mut [JobSpec], tenants: u64) {
    for job in jobs {
        job.tenant = if tenants == 0 {
            None
        } else {
            Some(job.id % tenants)
        };
    }
}

/// Errors from job-file parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFileError {
    /// Wrong number of fields on a line.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
        /// Offending text.
        value: String,
    },
    /// Duplicate job id.
    DuplicateId(u64),
}

impl fmt::Display for JobFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFileError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 6 to 9 fields, found {found}")
            }
            JobFileError::BadField { line, field, value } => {
                write!(f, "line {line}: bad {field}: '{value}'")
            }
            JobFileError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
        }
    }
}

impl std::error::Error for JobFileError {}

/// Serializes jobs into the CSV job-file format (with header).
///
/// When every job requests whole GPUs and carries no SLO or tenant tag,
/// the legacy 7-column format is emitted byte-for-byte; otherwise an 8th
/// `SloMs` column is appended (`-` for untagged jobs), fractional demands
/// are written with the `s` suffix, and — only when some job carries a
/// tenant — a 9th `Tenant` column follows.
#[must_use]
pub fn write_job_file(jobs: &[JobSpec]) -> String {
    let tenanted = jobs.iter().any(JobSpec::has_tenant);
    let extended = tenanted || jobs.iter().any(|j| j.is_fractional() || j.has_slo());
    let mut out =
        String::from("ID, NumGPUs, Topology, BW Sensitive, Workload, Iterations, Priority");
    if extended {
        out.push_str(", SloMs");
    }
    if tenanted {
        out.push_str(", Tenant");
    }
    out.push('\n');
    for j in jobs {
        out.push_str(&format!(
            "{}, {}, {}, {}, {}, {}, {}",
            j.id,
            j.demand,
            j.topology,
            if j.bandwidth_sensitive {
                "True"
            } else {
                "False"
            },
            j.workload,
            j.iterations,
            j.priority
        ));
        if extended {
            match j.slo_ms {
                Some(ms) => out.push_str(&format!(", {ms}")),
                None => out.push_str(", -"),
            }
        }
        if tenanted {
            match j.tenant {
                Some(t) => out.push_str(&format!(", {t}")),
                None => out.push_str(", -"),
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a CSV job file (header optional).
///
/// # Errors
/// Returns the first [`JobFileError`] encountered.
pub fn parse_job_file(input: &str) -> Result<Vec<JobSpec>, JobFileError> {
    let mut jobs = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        // Header detection: first field is not a number.
        if fields[0].parse::<u64>().is_err() && fields[0].eq_ignore_ascii_case("id") {
            continue;
        }
        if !(6..=9).contains(&fields.len()) {
            return Err(JobFileError::FieldCount {
                line,
                found: fields.len(),
            });
        }
        let parse_u64 = |field: &'static str, s: &str| {
            s.parse::<u64>().map_err(|_| JobFileError::BadField {
                line,
                field,
                value: s.to_string(),
            })
        };
        let id = parse_u64("ID", fields[0])?;
        if !seen.insert(id) {
            return Err(JobFileError::DuplicateId(id));
        }
        let demand = GpuDemand::from_name(fields[1]).ok_or_else(|| JobFileError::BadField {
            line,
            field: "NumGPUs",
            value: fields[1].to_string(),
        })?;
        let topology = AppTopology::from_name(fields[2]).ok_or_else(|| JobFileError::BadField {
            line,
            field: "Topology",
            value: fields[2].to_string(),
        })?;
        let bandwidth_sensitive = match fields[3].to_ascii_lowercase().as_str() {
            "true" | "yes" | "1" => true,
            "false" | "no" | "0" => false,
            other => {
                return Err(JobFileError::BadField {
                    line,
                    field: "BW Sensitive",
                    value: other.to_string(),
                })
            }
        };
        let workload = Workload::from_name(fields[4]).ok_or_else(|| JobFileError::BadField {
            line,
            field: "Workload",
            value: fields[4].to_string(),
        })?;
        let iterations = parse_u64("Iterations", fields[5])?;
        let priority = match fields.get(6) {
            Some(s) => s.parse::<u8>().map_err(|_| JobFileError::BadField {
                line,
                field: "Priority",
                value: (*s).to_string(),
            })?,
            None => 0,
        };
        let slo_ms = match fields.get(7) {
            None => None,
            Some(&"-") => None,
            Some(s) => {
                let ms = s.parse::<f64>().map_err(|_| JobFileError::BadField {
                    line,
                    field: "SloMs",
                    value: (*s).to_string(),
                })?;
                if !ms.is_finite() || ms <= 0.0 {
                    return Err(JobFileError::BadField {
                        line,
                        field: "SloMs",
                        value: (*s).to_string(),
                    });
                }
                Some(ms)
            }
        };
        let tenant = match fields.get(8) {
            None => None,
            Some(&"-") => None,
            Some(s) => Some(parse_u64("Tenant", s)?),
        };
        let mut job = JobSpec::new(id, demand, workload)
            .with_topology(topology)
            .with_bandwidth_sensitive(bandwidth_sensitive)
            .with_iterations(iterations)
            .with_priority(priority);
        job.slo_ms = slo_ms;
        job.tenant = tenant;
        jobs.push(job);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::new(1, GpuDemand::Whole(3), Workload::Vgg16),
            JobSpec::new(2, GpuDemand::Whole(5), Workload::GoogleNet)
                .with_topology(AppTopology::Tree)
                .with_priority(2),
        ]
    }

    #[test]
    fn builder_applies_workload_defaults() {
        let j = JobSpec::new(7, GpuDemand::Whole(3), Workload::Vgg16);
        assert_eq!(j.num_gpus(), 3);
        assert_eq!(j.topology, AppTopology::Ring);
        assert!(j.bandwidth_sensitive, "VGG-16 is sensitive");
        assert_eq!(j.iterations, Workload::Vgg16.model().default_iterations);
        assert_eq!(j.priority, 0);
        assert!(!j.is_fractional());
        assert!(!j.has_slo());
    }

    #[test]
    fn builder_overrides() {
        let j = JobSpec::new(1, GpuDemand::Slices(2), Workload::BertServing)
            .with_topology(AppTopology::Tree)
            .with_bandwidth_sensitive(true)
            .with_iterations(500)
            .with_priority(3)
            .with_slo(50.0);
        assert!(j.is_fractional());
        assert_eq!(j.num_gpus(), 2);
        assert_eq!(j.topology, AppTopology::Tree);
        assert!(j.bandwidth_sensitive);
        assert_eq!(j.iterations, 500);
        assert_eq!(j.priority, 3);
        assert_eq!(j.slo_ms, Some(50.0));
    }

    #[test]
    fn demand_spelling_roundtrip() {
        assert_eq!(GpuDemand::from_name("4"), Some(GpuDemand::Whole(4)));
        assert_eq!(GpuDemand::from_name("4s"), Some(GpuDemand::Slices(4)));
        assert_eq!(GpuDemand::from_name("4S"), Some(GpuDemand::Slices(4)));
        assert_eq!(GpuDemand::from_name("x"), None);
        assert_eq!(GpuDemand::from_name("s"), None);
        for d in [GpuDemand::Whole(3), GpuDemand::Slices(7)] {
            assert_eq!(GpuDemand::from_name(&d.to_string()), Some(d));
        }
    }

    #[test]
    fn roundtrip() {
        let jobs = sample_jobs();
        let text = write_job_file(&jobs);
        let parsed = parse_job_file(&text).unwrap();
        assert_eq!(parsed, jobs);
    }

    #[test]
    fn whole_gpu_files_keep_the_legacy_format() {
        let text = write_job_file(&sample_jobs());
        assert!(text
            .starts_with("ID, NumGPUs, Topology, BW Sensitive, Workload, Iterations, Priority\n"));
        assert!(!text.contains("SloMs"));
    }

    #[test]
    fn fractional_and_slo_jobs_roundtrip() {
        let jobs = vec![
            JobSpec::new(1, GpuDemand::Whole(2), Workload::Vgg16),
            JobSpec::new(2, GpuDemand::Slices(3), Workload::BertServing).with_slo(25.0),
        ];
        let text = write_job_file(&jobs);
        assert!(text.contains("SloMs"));
        assert!(text.contains("3s"));
        let parsed = parse_job_file(&text).unwrap();
        assert_eq!(parsed, jobs);
        // The untagged job writes `-` and parses back to no SLO.
        assert_eq!(parsed[0].slo_ms, None);
    }

    #[test]
    fn parses_paper_style_rows() {
        let text = "ID, NumGPUs, Topology, BW Sensitive, Workload, Iterations\n\
                    1, 3, Ring, True, vgg-16, 100\n\
                    # a comment line\n\
                    2, 4, RingTree, False, jacobi, 50\n";
        let jobs = parse_job_file(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].workload, Workload::Vgg16);
        assert_eq!(jobs[1].topology, AppTopology::RingTree);
        assert!(!jobs[1].bandwidth_sensitive);
        // Six-column files (the paper's format) default priority to 0.
        assert_eq!(jobs[0].priority, 0);
        assert_eq!(jobs[1].priority, 0);
    }

    #[test]
    fn priority_column_parses_and_defaults() {
        let text = "1, 2, Ring, True, vgg-16, 100, 3\n2, 2, Ring, True, vgg-16, 100\n";
        let jobs = parse_job_file(text).unwrap();
        assert_eq!(jobs[0].priority, 3);
        assert_eq!(jobs[1].priority, 0);
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16, 100, urgent"),
            Err(JobFileError::BadField {
                field: "Priority",
                ..
            })
        ));
    }

    #[test]
    fn slo_column_parses_and_validates() {
        let jobs = parse_job_file("1, 2s, Ring, False, bert-serving, 100, 0, 40\n").unwrap();
        assert_eq!(jobs[0].demand, GpuDemand::Slices(2));
        assert_eq!(jobs[0].slo_ms, Some(40.0));
        let jobs = parse_job_file("1, 2, Ring, True, vgg-16, 100, 0, -\n").unwrap();
        assert_eq!(jobs[0].slo_ms, None);
        for bad in ["nan", "-5", "0", "soon"] {
            assert!(
                matches!(
                    parse_job_file(&format!("1, 2, Ring, True, vgg-16, 100, 0, {bad}")),
                    Err(JobFileError::BadField { field: "SloMs", .. })
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn tenant_column_roundtrips_and_defaults() {
        let jobs = vec![
            JobSpec::new(1, GpuDemand::Whole(2), Workload::Vgg16).with_tenant(3),
            JobSpec::new(2, GpuDemand::Whole(1), Workload::GoogleNet),
        ];
        let text = write_job_file(&jobs);
        assert!(text.contains("Tenant"));
        let parsed = parse_job_file(&text).unwrap();
        assert_eq!(parsed, jobs);
        assert_eq!(parsed[0].tenant, Some(3));
        assert_eq!(parsed[1].tenant, None);
        // Files without the column parse to untagged jobs.
        let legacy = parse_job_file("1, 2, Ring, True, vgg-16, 100, 0, -\n").unwrap();
        assert_eq!(legacy[0].tenant, None);
    }

    #[test]
    fn tenant_assignment_follows_job_ids() {
        let mut jobs: Vec<JobSpec> = (1..=6)
            .map(|id| JobSpec::new(id, GpuDemand::Whole(1), Workload::Vgg16))
            .collect();
        assign_tenants(&mut jobs, 3);
        let tenants: Vec<Option<u64>> = jobs.iter().map(|j| j.tenant).collect();
        assert_eq!(
            tenants,
            vec![Some(1), Some(2), Some(0), Some(1), Some(2), Some(0)]
        );
        assign_tenants(&mut jobs, 0);
        assert!(jobs.iter().all(|j| j.tenant.is_none()));
    }

    #[test]
    fn priority_classes_follow_job_ids() {
        let mut jobs: Vec<JobSpec> = (1..=6)
            .map(|id| {
                let mut j = sample_jobs()[0].clone().with_priority(9);
                j.id = id;
                j
            })
            .collect();
        assign_priority_classes(&mut jobs, 3);
        let priorities: Vec<u8> = jobs.iter().map(|j| j.priority).collect();
        assert_eq!(priorities, vec![1, 2, 0, 1, 2, 0]);
        // One class flattens everything back to priority 0.
        assign_priority_classes(&mut jobs, 1);
        assert!(jobs.iter().all(|j| j.priority == 0));
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16"),
            Err(JobFileError::FieldCount { line: 1, found: 5 })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16, 5, 0, 50, 1, extra"),
            Err(JobFileError::FieldCount { line: 1, found: 10 })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16, 5, 0, 50, acme"),
            Err(JobFileError::BadField {
                field: "Tenant",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2x, Ring, True, vgg-16, 5"),
            Err(JobFileError::BadField {
                field: "NumGPUs",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Mesh, True, vgg-16, 5"),
            Err(JobFileError::BadField {
                field: "Topology",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, maybe, vgg-16, 5"),
            Err(JobFileError::BadField {
                field: "BW Sensitive",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, bert, 5"),
            Err(JobFileError::BadField {
                field: "Workload",
                ..
            })
        ));
        assert!(matches!(
            parse_job_file("1, 2, Ring, True, vgg-16, 5\n1, 2, Ring, True, vgg-16, 5"),
            Err(JobFileError::DuplicateId(1))
        ));
        assert!(matches!(
            parse_job_file("x, 2, Ring, True, vgg-16, 5"),
            Err(JobFileError::BadField { field: "ID", .. })
        ));
    }

    #[test]
    fn topology_name_roundtrip() {
        for t in [
            AppTopology::Ring,
            AppTopology::Tree,
            AppTopology::RingTree,
            AppTopology::AllToAll,
        ] {
            assert_eq!(AppTopology::from_name(t.name()), Some(t));
        }
        assert_eq!(
            AppTopology::from_name("ring+tree"),
            Some(AppTopology::RingTree)
        );
        assert_eq!(AppTopology::from_name("mesh"), None);
    }

    #[test]
    fn empty_file_is_empty_jobs() {
        assert_eq!(parse_job_file("").unwrap(), vec![]);
        assert_eq!(parse_job_file("\n\n# only comments\n").unwrap(), vec![]);
    }

    proptest::proptest! {
        /// Arbitrary text never panics the parser — it either parses or
        /// reports a structured error.
        #[test]
        fn parser_is_total(input in proptest::prelude::any::<String>()) {
            let _ = parse_job_file(&input);
        }

        /// Every generated job list round-trips through the file format.
        #[test]
        fn roundtrip_for_generated_jobs(
            count in 1usize..20,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let cfg = crate::generator::JobMixConfig {
                job_count: count,
                ..Default::default()
            };
            let jobs = crate::generator::generate_jobs(&cfg, seed);
            let text = write_job_file(&jobs);
            let parsed = parse_job_file(&text).expect("own output parses");
            proptest::prop_assert_eq!(parsed, jobs);
        }

        /// Inference mixes (fractional demands + SLO tags) round-trip too.
        #[test]
        fn roundtrip_for_inference_mixes(
            count in 1usize..20,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let cfg = crate::generator::JobMixConfig {
                job_count: count,
                inference_fraction: 0.5,
                ..Default::default()
            };
            let jobs = crate::generator::generate_jobs(&cfg, seed);
            let text = write_job_file(&jobs);
            let parsed = parse_job_file(&text).expect("own output parses");
            proptest::prop_assert_eq!(parsed, jobs);
        }
    }
}
