//! The execution-time model.
//!
//! `t_iter(allocation) = t_compute + bytes_per_iter / EffBW(allocation, avg_msg)`
//!
//! where EffBW comes from the simulated NCCL microbenchmark evaluated *at
//! the workload's own average message size* — this is what separates
//! bandwidth-sensitive from insensitive workloads: GoogleNet's ~2·10⁴-byte
//! messages sit on the latency-bound part of the Fig. 2a ramp where no link
//! class helps much, while VGG-16's ~10⁶-byte messages exploit the full
//! NVLink differential.

use crate::network::Workload;
use mapa_interconnect::{effbw, rings};
use mapa_topology::Topology;

/// Per-iteration time (seconds) for `workload` running on the physical
/// `gpus` of `topology`.
///
/// Single-GPU allocations pay no communication. Multi-GPU allocations pay
/// `bytes / EffBW(avg_msg)` with EffBW from ring-packing the allocation.
#[must_use]
pub fn iteration_time(workload: Workload, topology: &Topology, gpus: &[usize]) -> f64 {
    let m = workload.model();
    if gpus.len() < 2 {
        return m.compute_seconds;
    }
    let bw = effbw::measure_at_size(topology, gpus, m.avg_message_bytes);
    m.compute_seconds + comm_time(m.comm_bytes_per_iter, bw)
}

/// Per-iteration time given an already-measured effective bandwidth in
/// GB/s (at the workload's message size). Used by the simulator, which
/// scores allocations once and reuses the number.
#[must_use]
pub fn iteration_time_with_effbw(workload: Workload, n_gpus: usize, eff_bw_gbps: f64) -> f64 {
    let m = workload.model();
    if n_gpus < 2 {
        return m.compute_seconds;
    }
    m.compute_seconds + comm_time(m.comm_bytes_per_iter, eff_bw_gbps)
}

/// Total execution time (seconds) for a run of `iterations`.
#[must_use]
pub fn execution_time(
    workload: Workload,
    topology: &Topology,
    gpus: &[usize],
    iterations: u64,
) -> f64 {
    iteration_time(workload, topology, gpus) * iterations as f64
}

/// Effective bandwidth the workload experiences on an allocation — the
/// microbenchmark evaluated at the workload's average message size.
#[must_use]
pub fn workload_effbw(workload: Workload, topology: &Topology, gpus: &[usize]) -> f64 {
    if gpus.len() < 2 {
        return 0.0;
    }
    effbw::measure_at_size(topology, gpus, workload.model().avg_message_bytes)
}

/// Like [`workload_effbw`] but reusing pre-packed rings.
#[must_use]
pub fn workload_effbw_rings(workload: Workload, ringset: &rings::RingSet, n_gpus: usize) -> f64 {
    if n_gpus < 2 {
        return 0.0;
    }
    effbw::measure_rings_at_size(ringset, n_gpus, workload.model().avg_message_bytes)
}

fn comm_time(bytes: f64, eff_bw_gbps: f64) -> f64 {
    if eff_bw_gbps <= 0.0 {
        // No usable fabric measurement — an allocation always has at least
        // the PCIe path, so this only happens for degenerate inputs.
        return f64::INFINITY;
    }
    bytes / (eff_bw_gbps * 1e9)
}

/// The double-NVLink-vs-PCIe speedup of a 2-GPU run — the paper's Fig. 2b
/// metric: `t(PCIe pair) / t(double-NVLink pair)`.
#[must_use]
pub fn fig2b_speedup(workload: Workload, topology: &Topology) -> Fig2bSpeedup {
    // The paper's pairs on DGX-1V (0-indexed): double (0,4), single (0,1),
    // pcie (0,5).
    let t_double = iteration_time(workload, topology, &[0, 4]);
    let t_single = iteration_time(workload, topology, &[0, 1]);
    let t_pcie = iteration_time(workload, topology, &[0, 5]);
    Fig2bSpeedup {
        double_vs_pcie: t_pcie / t_double,
        single_vs_pcie: t_pcie / t_single,
    }
}

/// Speedups of NVLink pairs over the PCIe pair (Fig. 2b normalization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2bSpeedup {
    /// `t(PCIe) / t(double NVLink)`.
    pub double_vs_pcie: f64,
    /// `t(PCIe) / t(single NVLink)`.
    pub single_vs_pcie: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_topology::machines;

    #[test]
    fn fig2b_speedups_match_calibration_targets() {
        let dgx = machines::dgx1_v100();
        let tol = 0.15;
        let cases = [
            (Workload::Vgg16, 3.0),
            (Workload::AlexNet, 2.3),
            (Workload::ResNet50, 1.5),
            (Workload::InceptionV3, 1.5),
            (Workload::GoogleNet, 1.1),
            (Workload::CaffeNet, 1.15),
        ];
        for (w, target) in cases {
            let s = fig2b_speedup(w, &dgx).double_vs_pcie;
            assert!(
                (s - target).abs() < tol,
                "{w}: speedup {s:.3}, target {target}"
            );
        }
    }

    #[test]
    fn speedup_ordering_double_ge_single_ge_one() {
        let dgx = machines::dgx1_v100();
        for w in Workload::all() {
            let s = fig2b_speedup(w, &dgx);
            assert!(s.double_vs_pcie >= s.single_vs_pcie - 1e-9, "{w}");
            assert!(s.single_vs_pcie >= 1.0 - 1e-9, "{w}");
        }
    }

    #[test]
    fn sensitive_workloads_gain_much_more_than_insensitive() {
        // The structural claim behind the Preserve policy.
        let dgx = machines::dgx1_v100();
        let vgg = fig2b_speedup(Workload::Vgg16, &dgx).double_vs_pcie;
        let goog = fig2b_speedup(Workload::GoogleNet, &dgx).double_vs_pcie;
        let jacobi = fig2b_speedup(Workload::Jacobi, &dgx).double_vs_pcie;
        assert!(vgg > 2.0 * goog.min(jacobi));
        // Jacobi: paper reports < 3% improvement.
        assert!(jacobi < 1.05, "jacobi speedup {jacobi}");
    }

    #[test]
    fn single_gpu_jobs_are_placement_independent() {
        let dgx = machines::dgx1_v100();
        for w in Workload::all() {
            let a = iteration_time(w, &dgx, &[0]);
            let b = iteration_time(w, &dgx, &[7]);
            assert_eq!(a, b, "{w}");
            assert_eq!(a, w.model().compute_seconds);
            assert_eq!(workload_effbw(w, &dgx, &[3]), 0.0);
        }
    }

    #[test]
    fn execution_time_is_linear_in_iterations() {
        // Fig. 6: execution time grows linearly with iterations on any
        // fixed allocation.
        let dgx = machines::dgx1_v100();
        let t1 = execution_time(Workload::Vgg16, &dgx, &[0, 1], 1000);
        let t2 = execution_time(Workload::Vgg16, &dgx, &[0, 1], 2000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fragmented_allocation_slows_sensitive_jobs() {
        let dgx = machines::dgx1_v100();
        let ideal = iteration_time(Workload::Vgg16, &dgx, &[0, 2, 3]);
        let frag = iteration_time(Workload::Vgg16, &dgx, &[0, 1, 4]);
        assert!(frag > 1.5 * ideal, "frag {frag} vs ideal {ideal}");
        // Insensitive workload barely notices the same fragmentation.
        let g_ideal = iteration_time(Workload::GoogleNet, &dgx, &[0, 2, 3]);
        let g_frag = iteration_time(Workload::GoogleNet, &dgx, &[0, 1, 4]);
        assert!(g_frag < 1.15 * g_ideal, "{g_frag} vs {g_ideal}");
    }

    #[test]
    fn default_durations_land_in_papers_range() {
        // Fig. 13: execution times roughly 200–1100 s. Check the default
        // job durations on a good 2-GPU allocation.
        let dgx = machines::dgx1_v100();
        for w in Workload::all() {
            let m = w.model();
            let t = execution_time(w, &dgx, &[0, 3], m.default_iterations);
            assert!(
                (150.0..1200.0).contains(&t),
                "{w}: default duration {t:.0}s out of range"
            );
        }
    }

    #[test]
    fn iteration_time_with_effbw_matches_direct_path() {
        let dgx = machines::dgx1_v100();
        let gpus = [0, 1, 2];
        for w in [Workload::Vgg16, Workload::GoogleNet] {
            let direct = iteration_time(w, &dgx, &gpus);
            let bw = workload_effbw(w, &dgx, &gpus);
            let via = iteration_time_with_effbw(w, gpus.len(), bw);
            assert!((direct - via).abs() < 1e-12, "{w}");
        }
    }
}
