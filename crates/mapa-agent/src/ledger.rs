//! Lockfile-coordinated on-disk state: how concurrent agent invocations
//! share one machine without double-booking a GPU.
//!
//! A *state directory* holds two things:
//!
//! * **`agent.lock`** — a classic O_EXCL-style lockfile serializing
//!   every probe→decide→actuate critical section. Acquisition is
//!   atomic: the claimant writes its identity (`pid <pid> nonce <n>`)
//!   to a private temp file and [`std::fs::hard_link`]s it onto the
//!   lock path, so the lock file is never observable half-written.
//!   A lock whose recorded pid is dead (per the injectable liveness
//!   check) is *stale*: reclaiming renames it to a per-pid graveyard
//!   name — the rename succeeds for exactly one contender — verifies
//!   the corpse still names the dead pid (guarding the ABA case where
//!   the owner released and someone else re-acquired between the read
//!   and the rename; a mismatch is renamed straight back), and retries
//!   acquisition. [`StateDir::lock_reclaims`] counts wins, which the
//!   concurrency harness pins to exactly one per crashed agent.
//! * **`agent.ledger`** — the allocation ledger: every live lease
//!   (id, owning pid, GPU set, tag) under a monotonic generation
//!   counter, serialized in a strict line format that ends with an
//!   FNV-1a checksum trailer. Writers replace it atomically
//!   (temp + rename); readers refuse anything truncated, corrupt, or
//!   checksum-mismatched with [`AgentError::LedgerCorrupt`] — the agent
//!   *fails closed*: no lease is ever derived from a ledger it cannot
//!   prove it read back intact.
//!
//! Pid liveness is a [`StateDir::with_liveness`]-injectable function
//! (default: `/proc/<pid>` existence) so the offline harness can model
//! crashed agents deterministically.

use crate::AgentError;
use std::collections::BTreeSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// Injectable pid-liveness check.
pub type LivenessFn = Arc<dyn Fn(u32) -> bool + Send + Sync>;

/// Default liveness: does `/proc/<pid>` exist? On platforms without
/// procfs every pid is presumed alive, which disables stale-lock
/// reclaim rather than risking the theft of a live lock.
#[must_use]
pub fn proc_liveness() -> LivenessFn {
    Arc::new(|pid: u32| {
        if Path::new("/proc").is_dir() {
            Path::new(&format!("/proc/{pid}")).exists()
        } else {
            true
        }
    })
}

const LOCK_FILE: &str = "agent.lock";
const LEDGER_FILE: &str = "agent.ledger";
const LEDGER_MAGIC: &str = "mapa-agent ledger v1";

/// One granted allocation, as recorded in the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Unique lease id (monotonic across the state directory's life —
    /// ids are drawn from the ledger generation and never reused).
    pub id: u64,
    /// Pid of the agent invocation that holds the lease.
    pub pid: u32,
    /// Unix timestamp (seconds) of the claim.
    pub created_unix: u64,
    /// The granted GPU indices, ascending.
    pub gpus: Vec<usize>,
    /// Free-form label (`--tag`); never contains a newline.
    pub tag: String,
}

/// The on-disk allocation ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ledger {
    /// Monotonic write counter; also the lease-id source.
    pub generation: u64,
    /// Live leases, ascending by id.
    pub leases: Vec<Lease>,
}

impl Ledger {
    /// An empty ledger (what a fresh state directory reads).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Every GPU currently under lease.
    #[must_use]
    pub fn leased_gpus(&self) -> BTreeSet<usize> {
        self.leases
            .iter()
            .flat_map(|l| l.gpus.iter().copied())
            .collect()
    }

    /// The lease holding `gpu`, if any.
    #[must_use]
    pub fn lease_of_gpu(&self, gpu: usize) -> Option<&Lease> {
        self.leases.iter().find(|l| l.gpus.contains(&gpu))
    }

    /// Renders the strict line format (see module docs).
    #[must_use]
    pub fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(LEDGER_MAGIC);
        body.push('\n');
        body.push_str(&format!("generation {}\n", self.generation));
        for l in &self.leases {
            let gpus = l
                .gpus
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            body.push_str(&format!(
                "lease {} pid {} created {} gpus {} tag {}\n",
                l.id, l.pid, l.created_unix, gpus, l.tag
            ));
        }
        let checksum = fnv1a(body.as_bytes());
        body.push_str(&format!("checksum {checksum:016x}\n"));
        body
    }

    /// Parses [`Ledger::render`]'s format, refusing anything it cannot
    /// prove intact (bad magic, missing or mismatched checksum trailer,
    /// malformed lease lines, overlapping GPU sets).
    ///
    /// # Errors
    /// [`AgentError::LedgerCorrupt`] naming the first problem found.
    pub fn parse(input: &str, path: &Path) -> Result<Self, AgentError> {
        let corrupt = |reason: String| AgentError::LedgerCorrupt {
            path: path.display().to_string(),
            reason,
        };
        if !input.ends_with('\n') {
            return Err(corrupt("missing trailing newline (truncated write)".into()));
        }
        let Some(trailer_at) = input.trim_end().rfind('\n') else {
            return Err(corrupt("missing checksum trailer".into()));
        };
        let (body, trailer) = input.split_at(trailer_at + 1);
        let trailer = trailer.trim_end();
        let expected = trailer
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt(format!("bad checksum trailer '{trailer}'")))?;
        let actual = fnv1a(body.as_bytes());
        if actual != expected {
            return Err(corrupt(format!(
                "checksum mismatch: trailer {expected:016x}, content {actual:016x} \
                 (truncated or corrupted write)"
            )));
        }

        let mut lines = body.lines();
        if lines.next() != Some(LEDGER_MAGIC) {
            return Err(corrupt("bad magic line".into()));
        }
        let generation = lines
            .next()
            .and_then(|l| l.strip_prefix("generation "))
            .and_then(|g| g.parse().ok())
            .ok_or_else(|| corrupt("bad generation line".into()))?;

        let mut ledger = Ledger {
            generation,
            leases: Vec::new(),
        };
        let mut seen = BTreeSet::new();
        for line in lines {
            let lease = parse_lease_line(line)
                .ok_or_else(|| corrupt(format!("malformed lease line '{line}'")))?;
            if lease.id > generation {
                return Err(corrupt(format!(
                    "lease {} exceeds generation {generation}",
                    lease.id
                )));
            }
            for &g in &lease.gpus {
                if !seen.insert(g) {
                    return Err(corrupt(format!("GPU {g} appears in two leases")));
                }
            }
            ledger.leases.push(lease);
        }
        Ok(ledger)
    }
}

fn parse_lease_line(line: &str) -> Option<Lease> {
    // lease <id> pid <pid> created <unix> gpus <a,b,c> tag <free text>
    let rest = line.strip_prefix("lease ")?;
    let (id, rest) = rest.split_once(" pid ")?;
    let (pid, rest) = rest.split_once(" created ")?;
    let (created, rest) = rest.split_once(" gpus ")?;
    let (gpus, tag) = rest.split_once(" tag ")?;
    let gpus: Vec<usize> = gpus
        .split(',')
        .map(|g| g.parse().ok())
        .collect::<Option<Vec<_>>>()?;
    if gpus.is_empty() || gpus.windows(2).any(|w| w[0] >= w[1]) {
        return None;
    }
    Some(Lease {
        id: id.parse().ok()?,
        pid: pid.parse().ok()?,
        created_unix: created.parse().ok()?,
        gpus,
        tag: tag.to_string(),
    })
}

/// 64-bit FNV-1a over raw bytes (stable across platforms and releases —
/// what an on-disk checksum needs; same constants as the engine's
/// schedule digests).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Handle on one coordination directory (lock + ledger).
///
/// Cheap to construct per invocation; all cross-invocation state lives
/// on disk. The pid and liveness function are injectable so the offline
/// harness can run many "agents" (with synthetic pids, some of them
/// "crashed") inside one test process.
pub struct StateDir {
    root: PathBuf,
    pid: u32,
    liveness: LivenessFn,
    lock_timeout: Duration,
    poll_interval: Duration,
    reclaims: AtomicU64,
    nonce: AtomicU64,
}

impl std::fmt::Debug for StateDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateDir")
            .field("root", &self.root)
            .field("pid", &self.pid)
            .field("lock_timeout", &self.lock_timeout)
            .finish_non_exhaustive()
    }
}

impl StateDir {
    /// Opens (creating if needed) the state directory at `root`.
    ///
    /// # Errors
    /// [`AgentError::StateIo`] if the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, AgentError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| AgentError::StateIo {
            path: root.display().to_string(),
            message: format!("creating state directory: {e}"),
        })?;
        Ok(Self {
            root,
            pid: std::process::id(),
            liveness: proc_liveness(),
            lock_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(2),
            reclaims: AtomicU64::new(0),
            nonce: AtomicU64::new(0),
        })
    }

    /// Overrides the pid recorded in locks and leases (testing).
    #[must_use]
    pub fn with_pid(mut self, pid: u32) -> Self {
        self.pid = pid;
        self
    }

    /// Overrides the pid-liveness check (testing).
    #[must_use]
    pub fn with_liveness(mut self, liveness: LivenessFn) -> Self {
        self.liveness = liveness;
        self
    }

    /// Overrides how long [`StateDir::lock`] waits before giving up.
    #[must_use]
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// The directory path.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This agent's recorded pid.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Path of the lockfile.
    #[must_use]
    pub fn lock_path(&self) -> PathBuf {
        self.root.join(LOCK_FILE)
    }

    /// Path of the ledger.
    #[must_use]
    pub fn ledger_path(&self) -> PathBuf {
        self.root.join(LEDGER_FILE)
    }

    /// How many stale locks this handle has reclaimed.
    #[must_use]
    pub fn lock_reclaims(&self) -> u64 {
        self.reclaims.load(Ordering::SeqCst)
    }

    /// Whether `pid` is alive per this handle's liveness check.
    #[must_use]
    pub fn pid_alive(&self, pid: u32) -> bool {
        (self.liveness)(pid)
    }

    fn next_nonce(&self) -> u64 {
        self.nonce.fetch_add(1, Ordering::SeqCst)
    }

    fn io_err(&self, what: &str, e: &std::io::Error) -> AgentError {
        AgentError::StateIo {
            path: self.root.display().to_string(),
            message: format!("{what}: {e}"),
        }
    }

    /// Acquires the exclusive agent lock, reclaiming stale (dead-pid)
    /// locks along the way.
    ///
    /// # Errors
    /// [`AgentError::LockTimeout`] if a live holder keeps the lock past
    /// the configured timeout; [`AgentError::StateIo`] on filesystem
    /// failures.
    pub fn lock(&self) -> Result<LockGuard, AgentError> {
        let lock = self.lock_path();
        let deadline = Instant::now() + self.lock_timeout;
        loop {
            // Stage identity in a private file, then link it onto the
            // lock path: atomic acquire, content complete at link time.
            let nonce = self.next_nonce();
            let tmp = self.root.join(format!(".lock.{}.{}", self.pid, nonce));
            let claim = format!("pid {} nonce {}\n", self.pid, nonce);
            fs::write(&tmp, &claim).map_err(|e| self.io_err("staging lock claim", &e))?;
            let linked = fs::hard_link(&tmp, &lock);
            let _ = fs::remove_file(&tmp);
            match linked {
                Ok(()) => {
                    return Ok(LockGuard {
                        path: lock,
                        armed: true,
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {}
                Err(e) => return Err(self.io_err("acquiring lock", &e)),
            }

            // Held. Read the holder; a vanished file means it was just
            // released — retry immediately.
            let content = match fs::read_to_string(&lock) {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(self.io_err("reading lock holder", &e)),
            };
            let holder = parse_lock_pid(&content);
            match holder {
                Some(pid) if !(self.liveness)(pid) => {
                    if self.try_reclaim(&lock, &content, pid)? {
                        self.reclaims.fetch_add(1, Ordering::SeqCst);
                    }
                    // Either way the stale lock is gone (we removed it,
                    // a contender did, or it turned out live again) —
                    // retry without sleeping.
                    continue;
                }
                // Live holder, or a claim we cannot attribute (possibly
                // a foreign writer): wait politely.
                _ => {}
            }
            if Instant::now() >= deadline {
                return Err(AgentError::LockTimeout {
                    path: lock.display().to_string(),
                    holder,
                });
            }
            std::thread::sleep(self.poll_interval);
        }
    }

    /// Moves a stale lock out of the way. Returns `true` when *this*
    /// contender retired it (exactly one contender can: the graveyard
    /// rename races on the shared source path and the loser sees
    /// `NotFound`).
    fn try_reclaim(&self, lock: &Path, observed: &str, dead_pid: u32) -> Result<bool, AgentError> {
        let grave = self
            .root
            .join(format!(".lock.stale.{}.{}", self.pid, self.next_nonce()));
        match fs::rename(lock, &grave) {
            Ok(()) => {}
            // Someone else reclaimed (or the owner released) first.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(self.io_err("reclaiming stale lock", &e)),
        }
        // ABA guard: between our read and the rename, the dead holder's
        // lock could have been released by a reclaim and re-acquired by
        // a *live* agent. Verify the corpse is the claim we observed;
        // if not, put it straight back and treat this as no reclaim.
        let corpse = fs::read_to_string(&grave).unwrap_or_default();
        if corpse == observed && parse_lock_pid(&corpse) == Some(dead_pid) {
            let _ = fs::remove_file(&grave);
            Ok(true)
        } else {
            fs::rename(&grave, lock).map_err(|e| self.io_err("restoring stolen lock", &e))?;
            Ok(false)
        }
    }

    /// Reads the ledger. A missing file is an empty ledger; anything
    /// unparseable or checksum-mismatched fails closed. The `_guard`
    /// parameter is a witness: callers must hold the lock.
    ///
    /// # Errors
    /// [`AgentError::LedgerCorrupt`] / [`AgentError::StateIo`].
    pub fn read_ledger(&self, _guard: &LockGuard) -> Result<Ledger, AgentError> {
        let path = self.ledger_path();
        match fs::read_to_string(&path) {
            Ok(text) => Ledger::parse(&text, &path),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Ledger::empty()),
            Err(e) => Err(self.io_err("reading ledger", &e)),
        }
    }

    /// Atomically replaces the ledger (temp file + rename), fsyncing
    /// the temp so a torn write cannot survive a crash as a valid file.
    ///
    /// # Errors
    /// [`AgentError::StateIo`].
    pub fn write_ledger(&self, _guard: &LockGuard, ledger: &Ledger) -> Result<(), AgentError> {
        let tmp = self
            .root
            .join(format!(".ledger.{}.{}", self.pid, self.next_nonce()));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(ledger.render().as_bytes())?;
            f.sync_all()?;
            Ok(())
        };
        if let Err(e) = write() {
            let _ = fs::remove_file(&tmp);
            return Err(self.io_err("writing ledger", &e));
        }
        fs::rename(&tmp, self.ledger_path()).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            self.io_err("publishing ledger", &e)
        })
    }

    /// Unix timestamp for new leases.
    pub(crate) fn now_unix() -> u64 {
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

fn parse_lock_pid(content: &str) -> Option<u32> {
    content
        .strip_prefix("pid ")?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// RAII guard for the agent lock: dropping it releases the lock.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
    armed: bool,
}

impl LockGuard {
    /// Releases explicitly (drop does the same).
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        if self.armed {
            self.armed = false;
            let _ = fs::remove_file(&self.path);
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.release_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mapa-agent-ledger-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn lease(id: u64, pid: u32, gpus: &[usize]) -> Lease {
        Lease {
            id,
            pid,
            created_unix: 1_700_000_000,
            gpus: gpus.to_vec(),
            tag: format!("job-{id}"),
        }
    }

    #[test]
    fn ledger_render_parse_round_trip() {
        let ledger = Ledger {
            generation: 7,
            leases: vec![lease(3, 100, &[0, 1, 4]), lease(7, 200, &[5])],
        };
        let text = ledger.render();
        let back = Ledger::parse(&text, Path::new("x")).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(
            ledger.leased_gpus().into_iter().collect::<Vec<_>>(),
            vec![0, 1, 4, 5]
        );
        assert_eq!(ledger.lease_of_gpu(5).unwrap().id, 7);
        assert!(ledger.lease_of_gpu(2).is_none());
    }

    #[test]
    fn truncated_or_corrupt_ledgers_fail_closed() {
        let ledger = Ledger {
            generation: 2,
            leases: vec![lease(2, 100, &[0, 1])],
        };
        let text = ledger.render();
        // Truncation anywhere — including mid-checksum — is detected.
        for cut in 1..text.len() {
            let truncated = &text[..cut];
            assert!(
                Ledger::parse(truncated, Path::new("x")).is_err(),
                "truncation at byte {cut} must fail closed"
            );
        }
        // Single-byte corruption in the body flips the checksum.
        let mut corrupted = text.clone().into_bytes();
        corrupted[25] ^= 0x20;
        let corrupted = String::from_utf8(corrupted).unwrap();
        let err = Ledger::parse(&corrupted, Path::new("x")).unwrap_err();
        assert!(matches!(err, AgentError::LedgerCorrupt { .. }), "{err}");
        // Overlapping GPU sets are structural corruption even when the
        // checksum is freshly computed over them.
        let overlapping = Ledger {
            generation: 9,
            leases: vec![lease(1, 1, &[0, 1]), lease(2, 2, &[1, 2])],
        };
        assert!(Ledger::parse(&overlapping.render(), Path::new("x")).is_err());
    }

    #[test]
    fn missing_ledger_reads_empty_and_writes_are_atomic() {
        let dir = tmpdir("atomic");
        let state = StateDir::new(&dir).unwrap();
        let guard = state.lock().unwrap();
        assert_eq!(state.read_ledger(&guard).unwrap(), Ledger::empty());
        let ledger = Ledger {
            generation: 1,
            leases: vec![lease(1, state.pid(), &[2, 3])],
        };
        state.write_ledger(&guard, &ledger).unwrap();
        assert_eq!(state.read_ledger(&guard).unwrap(), ledger);
        // No temp droppings left behind.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".ledger") || n.starts_with(".lock."))
            .collect();
        assert!(stray.is_empty(), "stray temp files: {stray:?}");
        drop(guard);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let dir = tmpdir("excl");
        let a = StateDir::new(&dir)
            .unwrap()
            .with_lock_timeout(Duration::from_millis(40));
        let guard = a.lock().unwrap();
        let err = a.lock().unwrap_err();
        match err {
            AgentError::LockTimeout { holder, .. } => assert_eq!(holder, Some(a.pid())),
            other => panic!("expected LockTimeout, got {other}"),
        }
        drop(guard);
        let again = a.lock().unwrap();
        drop(again);
        assert!(!a.lock_path().exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_reclaimed_live_lock_is_not() {
        let dir = tmpdir("stale");
        // Liveness registry: pid 1000 alive, everything else dead.
        let alive: LivenessFn = Arc::new(|pid| pid == 1000);
        let state = StateDir::new(&dir)
            .unwrap()
            .with_pid(1000)
            .with_liveness(alive)
            .with_lock_timeout(Duration::from_millis(40));
        // A crashed agent (pid 666) left its lock behind.
        fs::write(state.lock_path(), "pid 666 nonce 0\n").unwrap();
        let guard = state.lock().expect("stale lock must be reclaimed");
        assert_eq!(state.lock_reclaims(), 1);
        drop(guard);
        // A live holder's lock is respected until timeout.
        fs::write(state.lock_path(), "pid 1000 nonce 1\n").unwrap();
        assert!(state.lock().is_err());
        assert_eq!(state.lock_reclaims(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unattributable_lock_content_is_respected_not_reclaimed() {
        let dir = tmpdir("foreign");
        let state = StateDir::new(&dir)
            .unwrap()
            .with_liveness(Arc::new(|_| false))
            .with_lock_timeout(Duration::from_millis(40));
        fs::write(state.lock_path(), "something else entirely\n").unwrap();
        assert!(
            state.lock().is_err(),
            "foreign lock content must not be stolen"
        );
        assert_eq!(state.lock_reclaims(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
