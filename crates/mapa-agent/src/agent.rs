//! The agent: probe → map → decide → actuate, under the state lock.
//!
//! [`Agent`] closes the sim-to-production loop. Each operation takes
//! the exclusive [`crate::StateDir`] lock, probes the machine through
//! the injected [`GpuProbe`], maps the snapshot onto a machine
//! description ([`crate::machine_from_snapshot`]), replays the on-disk
//! ledger *and* the probe-observed occupancy into a fresh
//! [`MapaAllocator`], and only then decides. Actuation is nothing more
//! than an atomic ledger write plus a `CUDA_VISIBLE_DEVICES` string —
//! the agent never touches driver state, so every failure path (probe
//! fault, corrupt ledger, unplaceable request) rolls back to exactly
//! the pre-call state by releasing the lock and writing nothing.
//!
//! Idle detection is threshold-based ([`IdlePolicy`]) and deliberately
//! conservative about processes: a *live* pid resident on a GPU keeps
//! it occupied even at 0% utilization (a ghost — think a wedged trainer
//! holding its arena), while a *dead* pid in the probe's process list
//! (a stale accounting entry) is disregarded and its memory discounted.

use crate::ledger::{Lease, Ledger, StateDir};
use crate::map::{machine_from_snapshot, MachineDescription};
use crate::probe::{GpuInfo, GpuProbe, ProbeError};
use mapa_core::scoring::MatchScore;
use mapa_core::{allocation_policy_by_name, AllocatorError, MapaAllocator};
use mapa_workloads::{GpuDemand, JobSpec, Workload};
use std::collections::BTreeSet;
use std::fmt;

/// Synthetic job-id base for GPUs occupied by workloads the ledger does
/// not know about (probe-observed busy devices). Far above any lease id
/// a ledger generation counter will ever reach.
const EXTERNAL_BLOCKER_BASE: u64 = 1 << 62;

/// Agent failures. Every variant leaves the state directory exactly as
/// the failing call found it.
#[derive(Debug)]
pub enum AgentError {
    /// Filesystem trouble inside the state directory.
    StateIo {
        /// State directory path.
        path: String,
        /// What failed.
        message: String,
    },
    /// The ledger exists but cannot be proven intact — truncated,
    /// corrupted, or structurally inconsistent. The agent fails closed.
    LedgerCorrupt {
        /// Ledger path.
        path: String,
        /// What the parser refused.
        reason: String,
    },
    /// The agent lock stayed held by a live process past the timeout.
    LockTimeout {
        /// Lock path.
        path: String,
        /// Holder pid, when the lockfile named one.
        holder: Option<u32>,
    },
    /// The probe failed.
    Probe(ProbeError),
    /// The allocator rejected the request outright (impossible demand).
    Allocator(String),
    /// The machine cannot host the request right now.
    Unplaceable {
        /// GPUs requested.
        requested: usize,
        /// GPUs currently free (unleased and probe-idle).
        free: usize,
    },
    /// No lease with this id exists in the ledger.
    UnknownLease(u64),
    /// No allocation policy with this name exists.
    UnknownPolicy(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::StateIo { path, message } => {
                write!(f, "state directory {path}: {message}")
            }
            AgentError::LedgerCorrupt { path, reason } => write!(
                f,
                "ledger {path} is corrupt ({reason}); refusing to act on it — \
                 repair or remove the file to reset agent state"
            ),
            AgentError::LockTimeout { path, holder } => match holder {
                Some(pid) => write!(f, "agent lock {path} held by live pid {pid}"),
                None => write!(f, "agent lock {path} held past timeout"),
            },
            AgentError::Probe(e) => write!(f, "{e}"),
            AgentError::Allocator(m) => write!(f, "allocator rejected request: {m}"),
            AgentError::Unplaceable { requested, free } => write!(
                f,
                "cannot place {requested} GPU(s) now: {free} free on this machine"
            ),
            AgentError::UnknownLease(id) => write!(f, "no lease {id} in the ledger"),
            AgentError::UnknownPolicy(name) => write!(
                f,
                "unknown allocation policy '{name}' \
                 (try: baseline, topo-aware, greedy, preserve, effbw-greedy)"
            ),
        }
    }
}

impl std::error::Error for AgentError {}

impl From<ProbeError> for AgentError {
    fn from(e: ProbeError) -> Self {
        AgentError::Probe(e)
    }
}

impl From<AllocatorError> for AgentError {
    fn from(e: AllocatorError) -> Self {
        AgentError::Allocator(e.to_string())
    }
}

/// Thresholds below which a GPU counts as idle (allocatable).
///
/// Real drivers hold a little memory and report occasional utilization
/// blips on completely free devices, so exact zero is the wrong test.
/// Processes are handled separately and more strictly — see
/// [`assess_occupancy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdlePolicy {
    /// Utilization at or below this percentage is idle noise.
    pub max_utilization_pct: u32,
    /// Unattributed used memory at or below this many MiB is idle noise
    /// (driver reservations, display buffers).
    pub max_memory_mib: u64,
}

impl Default for IdlePolicy {
    fn default() -> Self {
        Self {
            max_utilization_pct: 5,
            max_memory_mib: 256,
        }
    }
}

/// Why a GPU is (or is not) allocatable, from the probe's evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Occupancy {
    /// Allocatable: nothing live on the device beyond idle noise.
    Idle,
    /// Compute utilization above the idle threshold.
    Utilized {
        /// Observed utilization, percent.
        pct: u32,
    },
    /// A live process is resident — even at 0% utilization the device
    /// is occupied (the ghost-process case).
    GhostProcess {
        /// The resident live pid.
        pid: u32,
        /// Memory it holds, MiB.
        memory_mib: u64,
    },
    /// No live process, utilization idle, but unattributed memory above
    /// the threshold — something opaque holds the device.
    MemoryHeld {
        /// Unattributed used memory, MiB.
        mib: u64,
    },
}

impl Occupancy {
    /// Whether the device is allocatable.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        matches!(self, Occupancy::Idle)
    }
}

/// Classifies one GPU's occupancy from probe evidence (see the
/// [module docs](self) for the ghost/stale distinction). `alive`
/// decides pid liveness; dead residents are discounted entirely.
pub fn assess_occupancy(
    gpu: &GpuInfo,
    policy: &IdlePolicy,
    alive: impl Fn(u32) -> bool,
) -> Occupancy {
    if gpu.utilization_pct > policy.max_utilization_pct {
        return Occupancy::Utilized {
            pct: gpu.utilization_pct,
        };
    }
    let mut dead_mib = 0;
    let mut ghost = None;
    for p in &gpu.processes {
        if alive(p.pid) {
            let g = ghost.get_or_insert((p.pid, 0));
            g.1 += p.memory_mib;
        } else {
            dead_mib += p.memory_mib;
        }
    }
    if let Some((pid, memory_mib)) = ghost {
        return Occupancy::GhostProcess { pid, memory_mib };
    }
    let unattributed = gpu.memory_used_mib.saturating_sub(dead_mib);
    if unattributed > policy.max_memory_mib {
        return Occupancy::MemoryHeld { mib: unattributed };
    }
    Occupancy::Idle
}

/// One allocation request: how many whole GPUs, under which workload
/// annotation (the policies read its bandwidth sensitivity), tagged how.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocateRequest {
    /// Whole GPUs requested.
    pub gpus: usize,
    /// Workload annotation carried into the [`JobSpec`].
    pub workload: Workload,
    /// Free-form lease tag (newlines are replaced on write).
    pub tag: String,
}

impl AllocateRequest {
    /// A request for `gpus` whole GPUs with the paper's most
    /// bandwidth-sensitive workload annotation and an empty tag.
    #[must_use]
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            workload: Workload::Vgg16,
            tag: String::new(),
        }
    }

    /// Sets the lease tag (builder style).
    #[must_use]
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Sets the workload annotation (builder style).
    #[must_use]
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// The exact [`JobSpec`] the agent hands the allocator for this
    /// request under lease id `id`. Public so differential tests can
    /// drive a reference [`MapaAllocator`] with the identical job.
    #[must_use]
    pub fn to_job(&self, id: u64) -> JobSpec {
        JobSpec::new(id, GpuDemand::Whole(self.gpus), self.workload)
    }
}

/// A granted placement: the lease plus everything needed to actuate.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Lease id recorded in the ledger (release with it).
    pub lease_id: u64,
    /// Granted GPU indices, ascending.
    pub gpus: Vec<usize>,
    /// Ready-to-export device mask, e.g. `"0,2,3"`.
    pub cuda_visible_devices: String,
    /// Allocation policy that chose the set.
    pub policy: String,
    /// The machine description the decision was made against.
    pub machine: MachineDescription,
    /// The paper's match scores for the chosen set.
    pub score: MatchScore,
}

/// Per-GPU line of a [`StatusReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpuStatus {
    /// Device index.
    pub index: usize,
    /// Lease holding this device, if any.
    pub leased_by: Option<u64>,
    /// Probe-evidence occupancy classification.
    pub occupancy: Occupancy,
}

impl GpuStatus {
    /// Allocatable: unleased and probe-idle.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.leased_by.is_none() && self.occupancy.is_idle()
    }
}

/// What [`Agent::status`] reports.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    /// Probe backend name.
    pub source: String,
    /// Probed hostname.
    pub hostname: String,
    /// Machine description (matched or synthesized).
    pub machine: MachineDescription,
    /// Per-GPU state, ascending by index.
    pub gpus: Vec<GpuStatus>,
    /// Live leases from the ledger.
    pub leases: Vec<Lease>,
}

impl StatusReport {
    /// Indices of allocatable GPUs.
    #[must_use]
    pub fn free_gpus(&self) -> Vec<usize> {
        self.gpus
            .iter()
            .filter(|g| g.is_free())
            .map(|g| g.index)
            .collect()
    }
}

/// The actuation front end: one probe, one state directory, one policy.
pub struct Agent<P: GpuProbe> {
    probe: P,
    state: StateDir,
    policy: String,
    idle: IdlePolicy,
}

impl<P: GpuProbe> Agent<P> {
    /// An agent over `probe` coordinating through `state`, with the
    /// effbw-greedy policy (the paper's strongest) and default idle
    /// thresholds.
    #[must_use]
    pub fn new(probe: P, state: StateDir) -> Self {
        Self {
            probe,
            state,
            policy: "effbw-greedy".to_string(),
            idle: IdlePolicy::default(),
        }
    }

    /// Selects the allocation policy by name (builder style).
    ///
    /// # Errors
    /// [`AgentError::UnknownPolicy`] for names
    /// [`allocation_policy_by_name`] rejects.
    pub fn with_policy(mut self, name: &str) -> Result<Self, AgentError> {
        if allocation_policy_by_name(name).is_none() {
            return Err(AgentError::UnknownPolicy(name.to_string()));
        }
        self.policy = name.to_string();
        Ok(self)
    }

    /// Overrides the idle thresholds (builder style).
    #[must_use]
    pub fn with_idle_policy(mut self, idle: IdlePolicy) -> Self {
        self.idle = idle;
        self
    }

    /// The coordination directory (reclaim counters live here).
    #[must_use]
    pub fn state_dir(&self) -> &StateDir {
        &self.state
    }

    /// The active policy name.
    #[must_use]
    pub fn policy_name(&self) -> &str {
        &self.policy
    }

    fn fresh_allocator(&self, machine: &MachineDescription) -> MapaAllocator {
        let policy =
            allocation_policy_by_name(&self.policy).expect("policy name validated in with_policy");
        MapaAllocator::new(machine.topology.clone(), policy)
    }

    /// Probes the machine and maps it, without locking or reading the
    /// ledger (the `probe` subcommand).
    ///
    /// # Errors
    /// Probe and mapping failures.
    pub fn probe_machine(
        &mut self,
    ) -> Result<(crate::probe::ProbeSnapshot, MachineDescription), AgentError> {
        let snapshot = self.probe.snapshot()?;
        let machine = machine_from_snapshot(&snapshot)?;
        Ok((snapshot, machine))
    }

    /// Replays ledger leases (dead-pid leases pruned) and probe-observed
    /// busy GPUs into a fresh allocator. Returns the allocator and the
    /// pruned ledger.
    fn occupancy_view(
        &self,
        machine: &MachineDescription,
        snapshot: &crate::probe::ProbeSnapshot,
        mut ledger: Ledger,
    ) -> Result<(MapaAllocator, Ledger), AgentError> {
        ledger.leases.retain(|l| self.state.pid_alive(l.pid));
        let mut allocator = self.fresh_allocator(machine);
        let n = machine.topology.gpu_count();
        let mut leased = BTreeSet::new();
        for lease in &ledger.leases {
            // Leases can outlive a machine reshape (e.g. a GPU drained
            // out); drop any that no longer fit instead of failing the
            // whole view.
            if lease.gpus.iter().any(|&g| g >= n) {
                continue;
            }
            allocator.adopt(lease.id, &lease.gpus)?;
            leased.extend(lease.gpus.iter().copied());
        }
        for gpu in &snapshot.gpus {
            if gpu.index >= n || leased.contains(&gpu.index) {
                continue;
            }
            let occ = assess_occupancy(gpu, &self.idle, |pid| self.state.pid_alive(pid));
            if !occ.is_idle() {
                allocator.adopt(EXTERNAL_BLOCKER_BASE + gpu.index as u64, &[gpu.index])?;
            }
        }
        Ok((allocator, ledger))
    }

    /// Probes, decides, and (on success) records a lease — the
    /// `allocate` subcommand. Any failure before the final atomic
    /// ledger write leaves the state directory untouched and the lock
    /// released.
    ///
    /// # Errors
    /// Lock, probe, ledger, and placement failures; see [`AgentError`].
    pub fn allocate(&mut self, request: &AllocateRequest) -> Result<Placement, AgentError> {
        let guard = self.state.lock()?;
        // The guard's Drop releases the lock on every early return
        // below — a probe fault mid-allocate must not wedge the dir.
        let snapshot = self.probe.snapshot()?;
        let machine = machine_from_snapshot(&snapshot)?;
        let ledger = self.state.read_ledger(&guard)?;
        let (mut allocator, mut ledger) = self.occupancy_view(&machine, &snapshot, ledger)?;

        let lease_id = ledger.generation + 1;
        let job = request.to_job(lease_id);
        let outcome = allocator
            .try_allocate(&job)?
            .ok_or_else(|| AgentError::Unplaceable {
                requested: request.gpus,
                free: allocator.state().free_count(),
            })?;

        ledger.generation = lease_id;
        ledger.leases.push(Lease {
            id: lease_id,
            pid: self.state.pid(),
            created_unix: StateDir::now_unix(),
            gpus: outcome.gpus.clone(),
            tag: request.tag.replace(['\n', '\r'], " "),
        });
        self.state.write_ledger(&guard, &ledger)?;
        drop(guard);

        let cuda_visible_devices = outcome
            .gpus
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        Ok(Placement {
            lease_id,
            gpus: outcome.gpus,
            cuda_visible_devices,
            policy: self.policy.clone(),
            machine,
            score: outcome.score,
        })
    }

    /// Reports machine, ledger, and per-GPU occupancy — the `status`
    /// subcommand. Read-only: the ledger on disk is not modified (dead
    /// leases are *reported* with their recorded pids, not pruned).
    ///
    /// # Errors
    /// Lock, probe, and ledger failures.
    pub fn status(&mut self) -> Result<StatusReport, AgentError> {
        let guard = self.state.lock()?;
        let snapshot = self.probe.snapshot()?;
        let machine = machine_from_snapshot(&snapshot)?;
        let ledger = self.state.read_ledger(&guard)?;
        drop(guard);

        let gpus = snapshot
            .gpus
            .iter()
            .map(|g| GpuStatus {
                index: g.index,
                leased_by: ledger.lease_of_gpu(g.index).map(|l| l.id),
                occupancy: assess_occupancy(g, &self.idle, |pid| self.state.pid_alive(pid)),
            })
            .collect();
        Ok(StatusReport {
            source: self.probe.source(),
            hostname: snapshot.hostname,
            machine,
            gpus,
            leases: ledger.leases,
        })
    }

    /// Drops lease `lease_id` from the ledger, returning its GPUs — the
    /// `release` subcommand.
    ///
    /// # Errors
    /// [`AgentError::UnknownLease`] when no such lease exists; lock and
    /// ledger failures.
    pub fn release(&mut self, lease_id: u64) -> Result<Vec<usize>, AgentError> {
        let guard = self.state.lock()?;
        let mut ledger = self.state.read_ledger(&guard)?;
        let at = ledger
            .leases
            .iter()
            .position(|l| l.id == lease_id)
            .ok_or(AgentError::UnknownLease(lease_id))?;
        let lease = ledger.leases.remove(at);
        ledger.generation += 1;
        self.state.write_ledger(&guard, &ledger)?;
        Ok(lease.gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake::FakeProbe;
    use crate::probe::ProcessInfo;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mapa-agent-agent-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn gpu_with(util: u32, used_mib: u64, processes: Vec<ProcessInfo>) -> GpuInfo {
        GpuInfo {
            index: 0,
            model: "Tesla V100-SXM2-16GB".into(),
            memory_total_mib: 16_160,
            memory_used_mib: used_mib,
            utilization_pct: util,
            numa_node: Some(0),
            processes,
        }
    }

    #[test]
    fn occupancy_classification_covers_the_ghost_and_stale_cases() {
        let policy = IdlePolicy::default();
        let alive = |pid: u32| pid == 42;

        // Clean device: idle.
        assert!(assess_occupancy(&gpu_with(0, 0, vec![]), &policy, alive).is_idle());
        // Driver noise under thresholds: still idle.
        assert!(assess_occupancy(&gpu_with(3, 200, vec![]), &policy, alive).is_idle());
        // Busy compute: utilized.
        assert_eq!(
            assess_occupancy(&gpu_with(90, 4000, vec![]), &policy, alive),
            Occupancy::Utilized { pct: 90 }
        );
        // Ghost: live pid holding memory at 0% utilization — occupied.
        let ghost = gpu_with(
            0,
            4000,
            vec![ProcessInfo {
                pid: 42,
                memory_mib: 4000,
            }],
        );
        assert_eq!(
            assess_occupancy(&ghost, &policy, alive),
            Occupancy::GhostProcess {
                pid: 42,
                memory_mib: 4000
            }
        );
        // Stale accounting entry: dead pid, memory discounted — idle.
        let stale = gpu_with(
            0,
            4000,
            vec![ProcessInfo {
                pid: 666,
                memory_mib: 4000,
            }],
        );
        assert!(assess_occupancy(&stale, &policy, alive).is_idle());
        // Unattributed memory above threshold: held.
        assert_eq!(
            assess_occupancy(&gpu_with(0, 9000, vec![]), &policy, alive),
            Occupancy::MemoryHeld { mib: 9000 }
        );
    }

    #[test]
    fn allocate_status_release_round_trip() {
        let dir = tmpdir("round-trip");
        let state = StateDir::new(&dir).unwrap();
        let mut agent = Agent::new(FakeProbe::dgx1_v100(), state);

        let placement = agent
            .allocate(&AllocateRequest::new(2).with_tag("train"))
            .unwrap();
        assert_eq!(placement.gpus.len(), 2);
        assert_eq!(
            placement.machine.matched_profile.as_deref(),
            Some("DGX-1 V100")
        );
        assert_eq!(
            placement.cuda_visible_devices,
            placement
                .gpus
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );

        let status = agent.status().unwrap();
        assert_eq!(status.leases.len(), 1);
        assert_eq!(status.leases[0].tag, "train");
        assert_eq!(status.free_gpus().len(), 6);
        for g in &placement.gpus {
            assert_eq!(status.gpus[*g].leased_by, Some(placement.lease_id));
        }

        let released = agent.release(placement.lease_id).unwrap();
        assert_eq!(released, placement.gpus);
        assert_eq!(agent.status().unwrap().free_gpus().len(), 8);
        assert!(matches!(
            agent.release(placement.lease_id),
            Err(AgentError::UnknownLease(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_observed_busy_gpus_are_not_allocated() {
        let dir = tmpdir("busy");
        // GPUs 0 and 1 busy (one utilized, one ghost): a 7-GPU request
        // cannot fit; a 6-GPU one lands on the remaining devices.
        let probe = FakeProbe::dgx1_v100()
            .with_utilization(0, 80)
            .with_process(1, 4242, 2000);
        let alive: crate::ledger::LivenessFn = Arc::new(|pid| pid == 4242 || pid == 7777);
        let state = StateDir::new(&dir)
            .unwrap()
            .with_pid(7777)
            .with_liveness(alive);
        let mut agent = Agent::new(probe, state);

        match agent.allocate(&AllocateRequest::new(7)) {
            Err(AgentError::Unplaceable {
                requested: 7,
                free: 6,
            }) => {}
            other => panic!("expected Unplaceable, got {other:?}"),
        }
        let placement = agent.allocate(&AllocateRequest::new(6)).unwrap();
        assert!(!placement.gpus.contains(&0));
        assert!(!placement.gpus.contains(&1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_fault_mid_allocate_rolls_back_the_lock_and_ledger() {
        let dir = tmpdir("fault");
        let state = StateDir::new(&dir).unwrap();
        let probe = FakeProbe::dgx1_v100().fail_on_snapshot(2);
        let mut agent = Agent::new(probe, state);

        let first = agent.allocate(&AllocateRequest::new(1)).unwrap();
        let err = agent.allocate(&AllocateRequest::new(1)).unwrap_err();
        assert!(
            matches!(err, AgentError::Probe(ProbeError::Injected(_))),
            "{err}"
        );
        // Lock released, ledger unchanged: the next call proceeds and
        // sees exactly one prior lease.
        let status = agent.status().unwrap();
        assert_eq!(status.leases.len(), 1);
        assert_eq!(status.leases[0].id, first.lease_id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_pid_leases_are_pruned_from_the_allocation_view() {
        let dir = tmpdir("dead-lease");
        let alive: crate::ledger::LivenessFn = Arc::new(|pid| pid == 1000);
        let mk_state = |pid: u32| {
            StateDir::new(&dir)
                .unwrap()
                .with_pid(pid)
                .with_liveness(alive.clone())
        };
        // A "crashed" agent (pid 600, dead per the registry) leased 4.
        let mut crashed = Agent::new(FakeProbe::dgx1_v100(), mk_state(600));
        let p = crashed.allocate(&AllocateRequest::new(4)).unwrap();
        // A live agent can still place 8: the dead lease is pruned.
        let mut live = Agent::new(FakeProbe::dgx1_v100(), mk_state(1000));
        let placement = live.allocate(&AllocateRequest::new(8)).unwrap();
        assert_eq!(placement.gpus, (0..8).collect::<Vec<_>>());
        // The written ledger no longer carries the dead lease.
        let status = live.status().unwrap();
        assert_eq!(status.leases.len(), 1);
        assert!(status.leases.iter().all(|l| l.id != p.lease_id));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
