//! # mapa-agent — the real-hardware actuation front end
//!
//! Everything else in this workspace *simulates* the paper's
//! multi-accelerator pattern allocation; this crate *actuates* it on a
//! physical box. The loop it closes:
//!
//! 1. **Probe** — a [`GpuProbe`] enumerates the machine: device count,
//!    models, memory, NVLink brick matrix, per-GPU utilization and
//!    resident pids. Production uses [`SmiProbe`] (parses `nvidia-smi`
//!    output); every test and CI path uses the deterministic,
//!    fault-injectable [`FakeProbe`]. Nothing downstream can tell them
//!    apart — that seam is the whole design.
//! 2. **Map** — [`machine_from_snapshot`] turns the snapshot into a
//!    `mapa-topology` machine description, matching known profiles
//!    structurally (a real DGX-1 V100 gets *exactly* the description
//!    the simulator and the paper's evaluation use) and synthesizing
//!    one otherwise.
//! 3. **Decide** — the description plus current occupancy (on-disk
//!    leases and probe-observed busy GPUs) is replayed into a fresh
//!    `MapaAllocator`, so placements on hardware are the same
//!    placements the simulator would make. No allocator semantics are
//!    duplicated here.
//! 4. **Actuate** — the decision is recorded in a lockfile-coordinated
//!    on-disk ledger ([`StateDir`]) and handed back as a
//!    `CUDA_VISIBLE_DEVICES` string. Concurrent agents on one machine
//!    serialize through the lock, reclaim stale (dead-pid) locks
//!    exactly once, and fail closed on any ledger they cannot prove
//!    intact — no double-booking, no partial actuation.
//!
//! The CLI lives in the workspace root (`mapa-agent` binary); this
//! crate is the library underneath it and under the offline test
//! harness (`tests/agent_*.rs` at the workspace root).

#![warn(missing_docs)]

pub mod agent;
pub mod fake;
pub mod ledger;
pub mod map;
pub mod probe;
pub mod smi;

pub use agent::{
    assess_occupancy, Agent, AgentError, AllocateRequest, GpuStatus, IdlePolicy, Occupancy,
    Placement, StatusReport,
};
pub use fake::FakeProbe;
pub use ledger::{proc_liveness, Lease, Ledger, LivenessFn, LockGuard, StateDir};
pub use map::{machine_from_snapshot, structurally_equal, MachineDescription};
pub use probe::{GpuInfo, GpuProbe, ProbeError, ProbeSnapshot, ProcessInfo};
pub use smi::SmiProbe;
