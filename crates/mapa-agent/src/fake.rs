//! A deterministic, fault-injectable [`GpuProbe`] for tests and CI.
//!
//! [`FakeProbe`] renders the snapshot a healthy `nvidia-smi` would
//! produce for any [`Topology`] (brick counts from the link classes,
//! NUMA nodes from the socket map), then lets tests perturb it:
//! busy GPUs, ghost processes, stale process entries, and snapshot
//! calls that fail on demand. Every agent behavior — including the
//! failure modes — is pinned offline through this type.

use crate::probe::{GpuInfo, GpuProbe, ProbeError, ProbeSnapshot, ProcessInfo};
use mapa_topology::{machines, LinkType, Topology};

/// Deterministic probe that replays a configurable snapshot.
#[derive(Debug, Clone)]
pub struct FakeProbe {
    label: String,
    snapshot: ProbeSnapshot,
    calls: u64,
    fail_on_calls: Vec<u64>,
}

impl FakeProbe {
    /// A probe that reports `machine` with every GPU idle: brick counts
    /// derived from the machine's link classes (double ⇒ 2, single ⇒ 1,
    /// PCIe ⇒ 0) and NUMA nodes from its socket map.
    #[must_use]
    pub fn from_machine(machine: &Topology, model: &str, memory_total_mib: u64) -> Self {
        let n = machine.gpu_count();
        let gpus = (0..n)
            .map(|i| GpuInfo {
                index: i,
                model: model.to_string(),
                memory_total_mib,
                memory_used_mib: 0,
                utilization_pct: 0,
                numa_node: Some(machine.socket_of(i)),
                processes: Vec::new(),
            })
            .collect();
        let mut bricks = vec![vec![0u8; n]; n];
        for (a, row) in bricks.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                if a == b {
                    continue;
                }
                *cell = match machine.link_type(a, b) {
                    LinkType::DoubleNvLink2 => 2,
                    LinkType::SingleNvLink2 | LinkType::SingleNvLink1 => 1,
                    LinkType::Pcie => 0,
                };
            }
        }
        Self {
            label: machine.name().to_string(),
            snapshot: ProbeSnapshot {
                hostname: format!("fake-{}", slug(machine.name())),
                gpus,
                nvlink_bricks: bricks,
            },
            calls: 0,
            fail_on_calls: Vec::new(),
        }
    }

    /// The paper's testbed: a healthy 8-GPU DGX-1 V100.
    #[must_use]
    pub fn dgx1_v100() -> Self {
        Self::from_machine(&machines::dgx1_v100(), "Tesla V100-SXM2-16GB", 16_160)
    }

    /// Replays an arbitrary snapshot verbatim (escape hatch for
    /// synthesized-machine and malformed-snapshot tests).
    #[must_use]
    pub fn from_snapshot(label: impl Into<String>, snapshot: ProbeSnapshot) -> Self {
        Self {
            label: label.into(),
            snapshot,
            calls: 0,
            fail_on_calls: Vec::new(),
        }
    }

    /// Sets GPU `gpu`'s compute utilization (a busy device).
    ///
    /// # Panics
    /// Panics if `gpu` is out of range.
    #[must_use]
    pub fn with_utilization(mut self, gpu: usize, pct: u32) -> Self {
        self.snapshot.gpus[gpu].utilization_pct = pct;
        self
    }

    /// Sets GPU `gpu`'s used memory without attributing it to a process
    /// (driver-held memory).
    ///
    /// # Panics
    /// Panics if `gpu` is out of range.
    #[must_use]
    pub fn with_memory_used(mut self, gpu: usize, mib: u64) -> Self {
        self.snapshot.gpus[gpu].memory_used_mib = mib;
        self
    }

    /// Adds a resident compute process on GPU `gpu` and charges its
    /// memory to the device. Combine with [`FakeProbe::with_utilization`]
    /// for an actively-computing tenant; without it, the process is a
    /// *ghost* — memory held at 0% utilization — which the agent must
    /// still treat as occupying the GPU.
    ///
    /// # Panics
    /// Panics if `gpu` is out of range.
    #[must_use]
    pub fn with_process(mut self, gpu: usize, pid: u32, memory_mib: u64) -> Self {
        let g = &mut self.snapshot.gpus[gpu];
        g.processes.push(ProcessInfo { pid, memory_mib });
        g.memory_used_mib += memory_mib;
        self
    }

    /// Makes the `nth` call to [`GpuProbe::snapshot`] (1-based) fail
    /// with [`ProbeError::Injected`]. May be called repeatedly to fail
    /// several calls; other calls succeed.
    #[must_use]
    pub fn fail_on_snapshot(mut self, nth: u64) -> Self {
        self.fail_on_calls.push(nth);
        self
    }

    /// How many times [`GpuProbe::snapshot`] has been called.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl GpuProbe for FakeProbe {
    fn source(&self) -> String {
        format!("fake:{}", self.label)
    }

    fn snapshot(&mut self) -> Result<ProbeSnapshot, ProbeError> {
        self.calls += 1;
        if self.fail_on_calls.contains(&self.calls) {
            return Err(ProbeError::Injected(format!(
                "snapshot call {} configured to fail",
                self.calls
            )));
        }
        Ok(self.snapshot.clone())
    }
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx_fake_renders_the_testbed_brick_matrix() {
        let mut probe = FakeProbe::dgx1_v100();
        let snap = probe.snapshot().unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.gpu_count(), 8);
        // Fig. 1c worked pairs: 0-3 double, 0-1 single, 0-5 PCIe.
        assert_eq!(snap.nvlink_bricks[0][3], 2);
        assert_eq!(snap.nvlink_bricks[0][1], 1);
        assert_eq!(snap.nvlink_bricks[0][5], 0);
        // NUMA split mirrors the two quads.
        assert_eq!(snap.gpus[0].numa_node, Some(0));
        assert_eq!(snap.gpus[7].numa_node, Some(1));
    }

    #[test]
    fn fault_injection_fails_exactly_the_configured_calls() {
        let mut probe = FakeProbe::dgx1_v100().fail_on_snapshot(2);
        assert!(probe.snapshot().is_ok());
        assert!(matches!(probe.snapshot(), Err(ProbeError::Injected(_))));
        assert!(probe.snapshot().is_ok());
        assert_eq!(probe.calls(), 3);
    }

    #[test]
    fn perturbations_accumulate() {
        let mut probe = FakeProbe::dgx1_v100()
            .with_utilization(1, 85)
            .with_process(1, 4242, 2000)
            .with_process(3, 99, 512)
            .with_memory_used(5, 300);
        let snap = probe.snapshot().unwrap();
        assert_eq!(snap.gpus[1].utilization_pct, 85);
        assert_eq!(snap.gpus[1].memory_used_mib, 2000);
        assert_eq!(snap.gpus[1].processes.len(), 1);
        // GPU 3: ghost shape — memory held, zero utilization.
        assert_eq!(snap.gpus[3].utilization_pct, 0);
        assert_eq!(snap.gpus[3].memory_used_mib, 512);
        assert_eq!(snap.gpus[5].memory_used_mib, 300);
        assert!(snap.gpus[5].processes.is_empty());
    }
}
