//! Best-effort production probe: shells out to `nvidia-smi`.
//!
//! Three invocations build one [`ProbeSnapshot`]:
//!
//! ```text
//! nvidia-smi --query-gpu=index,uuid,name,memory.total,memory.used,utilization.gpu \
//!            --format=csv,noheader,nounits
//! nvidia-smi --query-compute-apps=gpu_uuid,pid,used_gpu_memory \
//!            --format=csv,noheader,nounits
//! nvidia-smi topo -m
//! ```
//!
//! All parsing is in pure functions unit-tested against canned outputs,
//! so the only untested surface on a GPU-less host is the `Command`
//! spawn itself. A missing binary degrades to
//! [`ProbeError::Unavailable`] with a hint to use the fake probe.

use crate::probe::{GpuInfo, GpuProbe, ProbeError, ProbeSnapshot, ProcessInfo};
use std::collections::HashMap;
use std::process::Command;

/// `nvidia-smi`-backed probe.
#[derive(Debug, Clone)]
pub struct SmiProbe {
    binary: String,
}

impl Default for SmiProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl SmiProbe {
    /// A probe invoking `nvidia-smi` from `$PATH`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            binary: "nvidia-smi".to_string(),
        }
    }

    /// Overrides the binary path (tests point this at a stub script).
    #[must_use]
    pub fn with_binary(mut self, path: impl Into<String>) -> Self {
        self.binary = path.into();
        self
    }

    fn run(&self, args: &[&str]) -> Result<String, ProbeError> {
        let out = Command::new(&self.binary)
            .args(args)
            .output()
            .map_err(|e| {
                ProbeError::Unavailable(format!(
                    "could not run '{}': {e}; on a host without NVIDIA tooling use \
                 the fake probe (e.g. --probe fake:dgx-1-v100)",
                    self.binary
                ))
            })?;
        if !out.status.success() {
            return Err(ProbeError::Unavailable(format!(
                "'{} {}' exited with {}",
                self.binary,
                args.join(" "),
                out.status
            )));
        }
        String::from_utf8(out.stdout)
            .map_err(|_| ProbeError::Malformed("nvidia-smi emitted non-UTF-8 output".into()))
    }
}

impl GpuProbe for SmiProbe {
    fn source(&self) -> String {
        self.binary.clone()
    }

    fn snapshot(&mut self) -> Result<ProbeSnapshot, ProbeError> {
        let gpu_csv = self.run(&[
            "--query-gpu=index,uuid,name,memory.total,memory.used,utilization.gpu",
            "--format=csv,noheader,nounits",
        ])?;
        // Compute-apps can legitimately be empty; a failure here (some
        // driver/MIG combinations reject the query) degrades to "no
        // process details" rather than failing the probe.
        let apps_csv = self
            .run(&[
                "--query-compute-apps=gpu_uuid,pid,used_gpu_memory",
                "--format=csv,noheader,nounits",
            ])
            .unwrap_or_default();
        let topo = self.run(&["topo", "-m"])?;
        build_snapshot(hostname(), &gpu_csv, &apps_csv, &topo)
    }
}

fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown-host".to_string())
}

/// Assembles a snapshot from the three raw `nvidia-smi` outputs.
///
/// # Errors
/// [`ProbeError::Malformed`] if any of the outputs cannot be parsed or
/// they disagree on the device count.
pub fn build_snapshot(
    hostname: String,
    gpu_csv: &str,
    apps_csv: &str,
    topo_matrix: &str,
) -> Result<ProbeSnapshot, ProbeError> {
    let mut rows = parse_gpu_csv(gpu_csv)?;
    let apps = parse_apps_csv(apps_csv)?;
    let (bricks, sockets) = parse_topo_matrix(topo_matrix)?;
    if bricks.len() != rows.len() {
        return Err(ProbeError::Malformed(format!(
            "query-gpu lists {} GPUs but 'topo -m' lists {}",
            rows.len(),
            bricks.len()
        )));
    }
    let uuid_to_index: HashMap<String, usize> =
        rows.iter().map(|r| (r.uuid.clone(), r.index)).collect();
    let mut processes: Vec<Vec<ProcessInfo>> = vec![Vec::new(); rows.len()];
    for (uuid, pid, memory_mib) in apps {
        // Apps on devices we did not enumerate (e.g. MIG child devices)
        // are dropped rather than failing the probe.
        if let Some(&i) = uuid_to_index.get(&uuid) {
            processes[i].push(ProcessInfo { pid, memory_mib });
        }
    }
    rows.sort_by_key(|r| r.index);
    let gpus = rows
        .into_iter()
        .map(|r| GpuInfo {
            numa_node: sockets.get(r.index).copied(),
            processes: std::mem::take(&mut processes[r.index]),
            index: r.index,
            model: r.model,
            memory_total_mib: r.memory_total_mib,
            memory_used_mib: r.memory_used_mib,
            utilization_pct: r.utilization_pct,
        })
        .collect();
    let snap = ProbeSnapshot {
        hostname,
        gpus,
        nvlink_bricks: bricks,
    };
    snap.validate()?;
    Ok(snap)
}

struct GpuRow {
    index: usize,
    uuid: String,
    model: String,
    memory_total_mib: u64,
    memory_used_mib: u64,
    utilization_pct: u32,
}

fn field<'a>(parts: &[&'a str], i: usize, line: &str, what: &str) -> Result<&'a str, ProbeError> {
    parts.get(i).map(|s| s.trim()).ok_or_else(|| {
        ProbeError::Malformed(format!("query row '{line}' is missing the {what} field"))
    })
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, ProbeError> {
    // `nounits` leaves bare numbers; tolerate "[N/A]" for utilization-less
    // devices by mapping it to 0 upstream, not here.
    tok.trim()
        .parse()
        .map_err(|_| ProbeError::Malformed(format!("bad {what} '{tok}'")))
}

/// Parses `--query-gpu=index,uuid,name,memory.total,memory.used,utilization.gpu`.
fn parse_gpu_csv(input: &str) -> Result<Vec<GpuRow>, ProbeError> {
    let mut rows = Vec::new();
    for line in input.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let parts: Vec<&str> = line.split(',').collect();
        let util_tok = field(&parts, 5, line, "utilization")?;
        rows.push(GpuRow {
            index: parse_num(field(&parts, 0, line, "index")?, "GPU index")?,
            uuid: field(&parts, 1, line, "uuid")?.to_string(),
            model: field(&parts, 2, line, "name")?.to_string(),
            memory_total_mib: parse_num(field(&parts, 3, line, "memory.total")?, "total memory")?,
            memory_used_mib: parse_num(field(&parts, 4, line, "memory.used")?, "used memory")?,
            utilization_pct: if util_tok.contains("N/A") {
                0
            } else {
                parse_num(util_tok, "utilization")?
            },
        });
    }
    if rows.is_empty() {
        return Err(ProbeError::Malformed(
            "query-gpu output listed no devices".into(),
        ));
    }
    Ok(rows)
}

/// Parses `--query-compute-apps=gpu_uuid,pid,used_gpu_memory` into
/// `(uuid, pid, memory_mib)` triples.
fn parse_apps_csv(input: &str) -> Result<Vec<(String, u32, u64)>, ProbeError> {
    let mut apps = Vec::new();
    for line in input.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let parts: Vec<&str> = line.split(',').collect();
        apps.push((
            field(&parts, 0, line, "gpu_uuid")?.to_string(),
            parse_num(field(&parts, 1, line, "pid")?, "pid")?,
            parse_num(field(&parts, 2, line, "used_gpu_memory")?, "used memory")?,
        ));
    }
    Ok(apps)
}

/// Parses the GPU-to-GPU corner of `nvidia-smi topo -m` into a brick
/// matrix and a socket assignment (GPUs separated by `SYS` are on
/// different sockets — the same inference `mapa-topology`'s matrix
/// parser makes).
fn parse_topo_matrix(input: &str) -> Result<(Vec<Vec<u8>>, Vec<usize>), ProbeError> {
    // Data rows start with a "GPUn" *label* followed by link cells;
    // the header row instead follows its first "GPU0" with more GPU
    // column names. Everything after the GPU columns (CPU affinity,
    // NIC columns, the legend) is ignored.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for line in input.lines() {
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        match tokens.first() {
            Some(first)
                if first.starts_with("GPU")
                    && tokens.len() > 1
                    && !tokens[1].starts_with("GPU") =>
            {
                rows.push(tokens[1..].to_vec());
            }
            _ => {}
        }
    }
    let n = rows.len();
    if n == 0 {
        return Err(ProbeError::Malformed(
            "'topo -m' output listed no GPU rows".into(),
        ));
    }
    let mut bricks = vec![vec![0u8; n]; n];
    // `sys[i][j]` marks pairs the tool reports as crossing sockets.
    let mut sys = vec![vec![false; n]; n];
    for (i, row) in rows.iter().enumerate() {
        if row.len() < n {
            return Err(ProbeError::Malformed(format!(
                "'topo -m' GPU row {i} has {} cells for {n} GPUs",
                row.len()
            )));
        }
        for (j, tok) in row.iter().take(n).enumerate() {
            let t = tok.to_ascii_uppercase();
            if i == j {
                if t != "X" {
                    return Err(ProbeError::Malformed(format!(
                        "'topo -m' diagonal [{i}] is '{tok}', expected X"
                    )));
                }
                continue;
            }
            if let Some(k) = t.strip_prefix("NV") {
                let k: u8 = k.parse().map_err(|_| {
                    ProbeError::Malformed(format!("bad NVLink cell '{tok}' at [{i}][{j}]"))
                })?;
                bricks[i][j] = k;
            } else if matches!(t.as_str(), "SYS" | "QPI") {
                sys[i][j] = true;
            } else if !matches!(t.as_str(), "PHB" | "PXB" | "PIX" | "NODE") {
                return Err(ProbeError::Malformed(format!(
                    "unrecognized 'topo -m' cell '{tok}' at [{i}][{j}]"
                )));
            }
        }
    }
    for (i, row) in bricks.iter().enumerate() {
        for (j, &cell) in row.iter().enumerate().skip(i + 1) {
            if cell != bricks[j][i] {
                return Err(ProbeError::Malformed(format!(
                    "'topo -m' NVLink cells asymmetric at [{i}][{j}]"
                )));
            }
        }
    }
    // Socket inference: GPUs not separated by SYS share a socket with
    // their lowest such peer.
    let mut socket = vec![usize::MAX; n];
    let mut next = 0;
    for i in 0..n {
        if socket[i] != usize::MAX {
            continue;
        }
        socket[i] = next;
        for j in (i + 1)..n {
            if socket[j] == usize::MAX && !sys[i][j] {
                socket[j] = next;
            }
        }
        next += 1;
    }
    Ok((bricks, socket))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GPU_CSV: &str = "\
0, GPU-aaaa, Tesla V100-SXM2-16GB, 16160, 0, 0
1, GPU-bbbb, Tesla V100-SXM2-16GB, 16160, 3270, 97
2, GPU-cccc, Tesla V100-SXM2-16GB, 16160, 510, [N/A]
";

    const APPS_CSV: &str = "\
GPU-bbbb, 31337, 3270
GPU-cccc, 4242, 510
GPU-zzzz, 7, 100
";

    const TOPO: &str = "\
\tGPU0\tGPU1\tGPU2\tCPU Affinity
GPU0\t X \tNV2\tSYS\t0-19
GPU1\tNV2\t X \tNV1\t0-19
GPU2\tSYS\tNV1\t X \t20-39

Legend:
  X    = Self
  SYS  = Connection traversing PCIe as well as the SMP interconnect
";

    #[test]
    fn gpu_csv_parses_including_na_utilization() {
        let rows = parse_gpu_csv(GPU_CSV).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].uuid, "GPU-bbbb");
        assert_eq!(rows[1].memory_used_mib, 3270);
        assert_eq!(rows[1].utilization_pct, 97);
        assert_eq!(rows[2].utilization_pct, 0, "[N/A] maps to 0");
    }

    #[test]
    fn apps_csv_parses_and_snapshot_drops_unknown_uuids() {
        let snap = build_snapshot("h".into(), GPU_CSV, APPS_CSV, TOPO).unwrap();
        assert_eq!(
            snap.gpus[1].processes,
            vec![ProcessInfo {
                pid: 31337,
                memory_mib: 3270
            }]
        );
        assert_eq!(snap.gpus[2].processes.len(), 1);
        assert!(snap.gpus[0].processes.is_empty(), "GPU-zzzz row dropped");
    }

    #[test]
    fn topo_matrix_parses_bricks_and_sockets() {
        let (bricks, sockets) = parse_topo_matrix(TOPO).unwrap();
        assert_eq!(bricks[0][1], 2);
        assert_eq!(bricks[1][2], 1);
        assert_eq!(bricks[0][2], 0);
        // GPU2 sits across SYS from GPU0 but shares NVLink with GPU1, so
        // the lowest-peer union puts all three in socket 0 except where
        // SYS separates the *seed* — mirroring mapa-topology's parser.
        assert_eq!(sockets, vec![0, 0, 1]);
    }

    #[test]
    fn malformed_outputs_are_rejected() {
        assert!(parse_gpu_csv("").is_err());
        assert!(parse_gpu_csv("0, uuid-only").is_err());
        assert!(parse_apps_csv("uuid, not-a-pid, 3").is_err());
        assert!(parse_topo_matrix("no gpu rows here").is_err());
        let asym = "GPU0\tX\tNV2\nGPU1\tNV1\tX\n";
        assert!(parse_topo_matrix(asym).is_err());
        let counts_disagree = build_snapshot("h".into(), "0, GPU-aaaa, T, 1, 0, 0\n", "", TOPO);
        assert!(counts_disagree.is_err());
    }

    #[test]
    fn missing_binary_degrades_to_unavailable() {
        let mut probe = SmiProbe::new().with_binary("/nonexistent/nvidia-smi-stub");
        match probe.snapshot() {
            Err(ProbeError::Unavailable(msg)) => {
                assert!(msg.contains("fake:dgx-1-v100"), "hint present: {msg}");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }
}
