//! Probe snapshot → `mapa-topology` machine description.
//!
//! The mapper turns the NVLink brick matrix of a [`ProbeSnapshot`] into
//! a [`Topology`] the allocator can mine. Brick counts map onto the
//! paper's link classes (1 brick ⇒ single, ≥2 ⇒ double; generation from
//! the GPU model string: `P100` ⇒ NVLink-v1, anything newer ⇒ v2 — the
//! two generations the link-bandwidth table distinguishes), sockets come
//! from the probed NUMA nodes, and the result is matched structurally
//! against every built-in machine profile. A match adopts the built-in
//! description wholesale (name, sockets, links), so an agent on a real
//! DGX-1 V100 places jobs with *exactly* the machine description the
//! simulator and the paper's evaluation use; anything else gets a
//! synthesized description named after the host.

use crate::probe::{ProbeError, ProbeSnapshot};
use mapa_graph::Graph;
use mapa_topology::{machines, LinkType, Topology};

/// A machine description derived from one probe snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDescription {
    /// The machine the allocator will mine.
    pub topology: Topology,
    /// Name of the built-in profile this machine matched structurally,
    /// if any (e.g. `"DGX-1 V100"`); `None` for synthesized machines.
    pub matched_profile: Option<String>,
}

impl MachineDescription {
    /// Whether the description was synthesized (no profile matched).
    #[must_use]
    pub fn is_synthesized(&self) -> bool {
        self.matched_profile.is_none()
    }
}

/// Maps a snapshot onto a machine description (see module docs).
///
/// # Errors
/// [`ProbeError::Malformed`] when the snapshot fails
/// [`ProbeSnapshot::validate`].
pub fn machine_from_snapshot(snapshot: &ProbeSnapshot) -> Result<MachineDescription, ProbeError> {
    snapshot.validate()?;
    let n = snapshot.gpu_count();
    let pascal = snapshot
        .gpus
        .iter()
        .all(|g| g.model.to_ascii_uppercase().contains("P100"));
    let single = if pascal {
        LinkType::SingleNvLink1
    } else {
        LinkType::SingleNvLink2
    };

    let mut links = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let link = match snapshot.nvlink_bricks[a][b] {
                0 => continue,
                1 => single,
                _ => LinkType::DoubleNvLink2,
            };
            links.add_edge(a, b, link).expect("validated matrix edges");
        }
    }

    // Sockets: probed NUMA nodes, renumbered densely in first-seen
    // order; unknown affinity collapses to one socket.
    let sockets = if snapshot.gpus.iter().all(|g| g.numa_node.is_some()) {
        dense_ranks(
            &snapshot
                .gpus
                .iter()
                .map(|g| g.numa_node.expect("checked above"))
                .collect::<Vec<_>>(),
        )
    } else {
        vec![0; n]
    };

    let probed = Topology::new(format!("{}-{}gpu", snapshot.hostname, n), links, sockets);
    for profile in machines::all_machines() {
        if structurally_equal(&probed, &profile) {
            return Ok(MachineDescription {
                matched_profile: Some(profile.name().to_string()),
                topology: profile,
            });
        }
    }
    Ok(MachineDescription {
        topology: probed,
        matched_profile: None,
    })
}

/// Structural identity under the identity vertex labeling: same device
/// count, identical link class for every pair, and the same socket
/// partition (up to socket renaming).
#[must_use]
pub fn structurally_equal(a: &Topology, b: &Topology) -> bool {
    let n = a.gpu_count();
    if n != b.gpu_count() {
        return false;
    }
    for x in 0..n {
        for y in (x + 1)..n {
            if a.link_type(x, y) != b.link_type(x, y) {
                return false;
            }
        }
    }
    let sa = dense_ranks(&(0..n).map(|g| a.socket_of(g)).collect::<Vec<_>>());
    let sb = dense_ranks(&(0..n).map(|g| b.socket_of(g)).collect::<Vec<_>>());
    sa == sb
}

/// Renumbers values densely in first-seen order: `[7, 7, 3, 7]` → `[0, 0, 1, 0]`.
fn dense_ranks(values: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = Vec::new();
    values
        .iter()
        .map(|&v| {
            if let Some(r) = order.iter().position(|&o| o == v) {
                r
            } else {
                order.push(v);
                order.len() - 1
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake::FakeProbe;
    use crate::probe::GpuProbe;

    #[test]
    fn every_builtin_profile_round_trips_through_its_fake() {
        for machine in machines::all_machines() {
            let model = if machine.name().contains("P100") {
                "Tesla P100-SXM2-16GB"
            } else {
                "Tesla V100-SXM2-16GB"
            };
            let mut probe = FakeProbe::from_machine(&machine, model, 16_160);
            let desc = machine_from_snapshot(&probe.snapshot().unwrap()).unwrap();
            assert_eq!(
                desc.matched_profile.as_deref(),
                Some(machine.name()),
                "profile {} must match itself",
                machine.name()
            );
            assert_eq!(desc.topology, machine);
        }
    }

    #[test]
    fn unknown_fabrics_synthesize_with_probed_structure() {
        // A 4-GPU ring is none of the paper's machines.
        let mut links = Graph::new(4);
        for i in 0..4 {
            links
                .add_edge(i, (i + 1) % 4, LinkType::DoubleNvLink2)
                .unwrap();
        }
        let ring = Topology::new("ring4", links, vec![0, 0, 1, 1]);
        let mut probe = FakeProbe::from_machine(&ring, "Custom GPU", 8_000);
        let desc = machine_from_snapshot(&probe.snapshot().unwrap()).unwrap();
        assert!(desc.is_synthesized());
        assert_eq!(desc.topology.gpu_count(), 4);
        assert_eq!(desc.topology.link_type(0, 1), LinkType::DoubleNvLink2);
        assert_eq!(desc.topology.link_type(0, 2), LinkType::Pcie);
        assert_eq!(desc.topology.socket_of(2), 1);
        assert!(desc.topology.name().starts_with("fake-ring4-"));
    }

    #[test]
    fn pascal_models_map_single_bricks_to_nvlink_v1() {
        let mut probe =
            FakeProbe::from_machine(&machines::dgx1_p100(), "Tesla P100-SXM2-16GB", 16_280);
        let desc = machine_from_snapshot(&probe.snapshot().unwrap()).unwrap();
        assert_eq!(desc.matched_profile.as_deref(), Some("DGX-1 P100"));
        assert_eq!(desc.topology.link_type(0, 1), LinkType::SingleNvLink1);
    }

    #[test]
    fn socket_partition_compares_up_to_renaming() {
        let base = machines::summit();
        let renamed = Topology::new(
            "Summit-renamed",
            base.link_graph().clone(),
            vec![5, 5, 5, 2, 2, 2],
        );
        assert!(structurally_equal(&base, &renamed));
        let split = Topology::new(
            "Summit-split",
            base.link_graph().clone(),
            vec![0, 0, 1, 1, 2, 2],
        );
        assert!(!structurally_equal(&base, &split));
    }
}
