//! The hardware probe seam: what the agent knows about a physical box.
//!
//! Everything downstream of the agent — topology mapping, idle
//! detection, allocation, actuation — consumes one [`ProbeSnapshot`]
//! produced by a [`GpuProbe`] implementation. The trait is the whole
//! point: the production probe shells out to `nvidia-smi`
//! ([`crate::SmiProbe`]) while tests and CI drive the identical code
//! path through the deterministic, fault-injectable
//! [`crate::FakeProbe`]. No behavior of the agent is reachable only
//! with real hardware.

use std::fmt;

/// One process resident on a GPU, as NVML-style accounting reports it.
///
/// The probe reports *residency* (the process holds GPU memory), not
/// health: the pid may be long dead (a stale accounting entry the agent
/// must disregard) or alive but idle (a *ghost* — memory held at 0%
/// utilization — which must keep the GPU non-idle). The
/// [`crate::IdlePolicy`] draws that line, with pid liveness injected so
/// tests can model crashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessInfo {
    /// Process id on the host.
    pub pid: u32,
    /// GPU memory the process holds, MiB.
    pub memory_mib: u64,
}

/// Everything the probe learned about one GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuInfo {
    /// Device index, as `nvidia-smi` numbers it (PCI bus order).
    pub index: usize,
    /// Marketing model string, e.g. `Tesla V100-SXM2-16GB`. The mapper
    /// uses it to pick the NVLink generation (`P100` ⇒ v1, else v2).
    pub model: String,
    /// Total device memory, MiB.
    pub memory_total_mib: u64,
    /// Device memory in use, MiB (all residents combined).
    pub memory_used_mib: u64,
    /// Instantaneous compute utilization, percent.
    pub utilization_pct: u32,
    /// NUMA node / CPU socket affinity when the probe knows it.
    pub numa_node: Option<usize>,
    /// Compute processes resident on the device.
    pub processes: Vec<ProcessInfo>,
}

/// One probe pass over a machine: per-GPU details plus the inter-GPU
/// NVLink brick matrix (`bricks[a][b]` = bonded NVLink bricks between
/// devices `a` and `b`; 0 = PCIe-class path only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSnapshot {
    /// Hostname the snapshot was taken on (diagnostic only).
    pub hostname: String,
    /// Per-device details, ascending by [`GpuInfo::index`].
    pub gpus: Vec<GpuInfo>,
    /// Symmetric NVLink brick-count matrix with a zero diagonal.
    pub nvlink_bricks: Vec<Vec<u8>>,
}

impl ProbeSnapshot {
    /// Number of devices in the snapshot.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Structural sanity of a snapshot: devices indexed `0..n` in
    /// order, and a square, symmetric, zero-diagonal brick matrix.
    /// The mapper refuses malformed snapshots instead of guessing.
    ///
    /// # Errors
    /// [`ProbeError::Malformed`] naming the first problem found.
    pub fn validate(&self) -> Result<(), ProbeError> {
        let n = self.gpus.len();
        if n == 0 {
            return Err(ProbeError::Malformed("snapshot has no GPUs".into()));
        }
        for (i, gpu) in self.gpus.iter().enumerate() {
            if gpu.index != i {
                return Err(ProbeError::Malformed(format!(
                    "GPU at position {i} reports index {}",
                    gpu.index
                )));
            }
        }
        if self.nvlink_bricks.len() != n {
            return Err(ProbeError::Malformed(format!(
                "brick matrix has {} rows for {n} GPUs",
                self.nvlink_bricks.len()
            )));
        }
        for (i, row) in self.nvlink_bricks.iter().enumerate() {
            if row.len() != n {
                return Err(ProbeError::Malformed(format!(
                    "brick matrix row {i} has {} cells for {n} GPUs",
                    row.len()
                )));
            }
            if row[i] != 0 {
                return Err(ProbeError::Malformed(format!(
                    "brick matrix diagonal [{i}][{i}] is {}, expected 0",
                    row[i]
                )));
            }
            for (j, &b) in row.iter().enumerate().skip(i + 1) {
                if b != self.nvlink_bricks[j][i] {
                    return Err(ProbeError::Malformed(format!(
                        "brick matrix asymmetric at [{i}][{j}]"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Probe failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// No probe backend on this host (e.g. `nvidia-smi` not installed).
    /// The message says what was tried and suggests the fake probe.
    Unavailable(String),
    /// The backend answered but its output could not be understood.
    Malformed(String),
    /// A fault injected by [`crate::FakeProbe`] for testing.
    Injected(String),
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Unavailable(m) => write!(f, "probe unavailable: {m}"),
            ProbeError::Malformed(m) => write!(f, "probe output malformed: {m}"),
            ProbeError::Injected(m) => write!(f, "injected probe fault: {m}"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// A source of [`ProbeSnapshot`]s.
///
/// `snapshot` takes `&mut self` so implementations can count calls
/// (fault injection) or cache handles (a future NVML binding).
pub trait GpuProbe {
    /// Short backend name for reports (`"fake:DGX-1 V100"`, `"nvidia-smi"`).
    fn source(&self) -> String;

    /// Takes one probe pass over the machine.
    ///
    /// # Errors
    /// Any [`ProbeError`]; the agent treats a failure mid-operation as
    /// grounds to roll back (locks released, no ledger mutation).
    fn snapshot(&mut self) -> Result<ProbeSnapshot, ProbeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(i: usize) -> GpuInfo {
        GpuInfo {
            index: i,
            model: "Test GPU".into(),
            memory_total_mib: 16000,
            memory_used_mib: 0,
            utilization_pct: 0,
            numa_node: None,
            processes: Vec::new(),
        }
    }

    #[test]
    fn validate_accepts_well_formed_snapshots() {
        let snap = ProbeSnapshot {
            hostname: "host".into(),
            gpus: vec![gpu(0), gpu(1)],
            nvlink_bricks: vec![vec![0, 2], vec![2, 0]],
        };
        assert!(snap.validate().is_ok());
    }

    #[test]
    fn validate_rejects_structural_problems() {
        let empty = ProbeSnapshot {
            hostname: "h".into(),
            gpus: vec![],
            nvlink_bricks: vec![],
        };
        assert!(matches!(empty.validate(), Err(ProbeError::Malformed(_))));

        let misindexed = ProbeSnapshot {
            hostname: "h".into(),
            gpus: vec![gpu(0), gpu(2)],
            nvlink_bricks: vec![vec![0, 1], vec![1, 0]],
        };
        assert!(misindexed.validate().is_err());

        let ragged = ProbeSnapshot {
            hostname: "h".into(),
            gpus: vec![gpu(0), gpu(1)],
            nvlink_bricks: vec![vec![0, 1], vec![1]],
        };
        assert!(ragged.validate().is_err());

        let asymmetric = ProbeSnapshot {
            hostname: "h".into(),
            gpus: vec![gpu(0), gpu(1)],
            nvlink_bricks: vec![vec![0, 1], vec![2, 0]],
        };
        assert!(asymmetric.validate().is_err());

        let diagonal = ProbeSnapshot {
            hostname: "h".into(),
            gpus: vec![gpu(0), gpu(1)],
            nvlink_bricks: vec![vec![1, 1], vec![1, 0]],
        };
        assert!(diagonal.validate().is_err());
    }
}
