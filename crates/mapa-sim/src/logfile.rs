//! The simulator log-file format (paper Fig. 14).
//!
//! "Log File: ID, Allocation, Topology, Effective BW (GBps)
//!  1, (1,2,3), Ring, 45
//!  2, (5,6,7,8), Ring, 48"
//!
//! We write the paper's columns plus the extra fields the evaluation
//! figures need (workload, execution time, queue wait, quality). The
//! parser accepts both the extended format and the paper's minimal one.

use crate::engine::SimReport;
use std::fmt;

/// Header of the extended log format.
pub const LOG_HEADER: &str =
    "ID, Allocation, Topology, Effective BW (GBps), Workload, Exec (s), Wait (s), Quality, Sched (ms), Server";

/// Serializes a report into the Fig. 14 log format (extended columns).
/// Each record carries its per-job scheduling latency (§5.4) and the
/// server that ran it; the trailer comments carry the run's
/// allocation-cache counters, per-shard utilization, and dispatcher-queue
/// statistics — the same numbers [`SimReport::scheduling_stats`] and
/// [`SimReport::shards`] report, so log files and in-memory reports share
/// one reporting path.
#[must_use]
pub fn write_log(report: &SimReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# machine: {} | policy: {}\n",
        report.topology_name, report.policy_name
    ));
    out.push_str(LOG_HEADER);
    out.push('\n');
    for r in &report.records {
        let gpus: Vec<String> = r.gpus.iter().map(usize::to_string).collect();
        out.push_str(&format!(
            "{}, ({}), {}, {:.2}, {}, {:.2}, {:.2}, {:.4}, {:.3}, {}\n",
            r.job.id,
            gpus.join(","),
            r.job.topology,
            r.predicted_eff_bw,
            r.job.workload,
            r.execution_seconds,
            r.queue_wait_seconds,
            r.allocation_quality,
            r.scheduling_overhead.as_secs_f64() * 1e3,
            r.server,
        ));
    }
    if let Some(cache) = report.cache {
        out.push_str(&format!(
            "# cache: hits={} misses={} evictions={} hit_rate={:.4}\n",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.hit_rate(),
        ));
    }
    for s in &report.shards {
        out.push_str(&format!(
            "# shard {}: machine={} gpus={} jobs={} util={:.4}\n",
            s.server, s.machine, s.gpu_count, s.jobs_completed, s.utilization,
        ));
    }
    out.push_str(&format!(
        "# queue: max_depth={} mean_depth={:.2} blocks={} frag_blocks={}\n",
        report.queue.max_depth,
        report.queue.mean_depth,
        report.queue.dispatch_blocks,
        report.queue.fragmentation_blocks,
    ));
    if let Some(d) = &report.dispatch {
        let depths: Vec<String> = d.max_queue_depths.iter().map(usize::to_string).collect();
        out.push_str(&format!(
            "# dispatch: mode={} migration={} queue_depth={} stolen={} rebalanced={} max_depths=({})\n",
            d.mode,
            d.migration,
            d.shard_queue_depth,
            d.jobs_stolen,
            d.jobs_rebalanced,
            depths.join(","),
        ));
    }
    if report.preemption.jobs_preempted > 0 {
        out.push_str(&format!(
            "# preemption: jobs={} gpu_seconds_lost={:.2} penalty_seconds={:.2}\n",
            report.preemption.jobs_preempted,
            report.preemption.gpu_seconds_lost,
            report.preemption.penalty_seconds_charged,
        ));
    }
    if report.gangs.gangs_dispatched > 0 {
        out.push_str(&format!(
            "# gangs: dispatched={} members={} total_wait={:.2} max_wait={:.2}\n",
            report.gangs.gangs_dispatched,
            report.gangs.members_dispatched,
            report.gangs.total_wait_seconds,
            report.gangs.max_wait_seconds,
        ));
    }
    if report.slo.jobs > 0 {
        out.push_str(&format!(
            "# slo: jobs={} met={} missed={} attainment={:.4} p95_latency_ms={:.3} p95_target_ms={:.3}\n",
            report.slo.jobs,
            report.slo.met,
            report.slo.missed,
            report.slo.attainment().expect("jobs > 0"),
            report.slo.p95_latency_ms,
            report.slo.p95_target_ms,
        ));
    }
    if let Some(fed) = &report.federation {
        out.push_str(&format!(
            "# federation: policy={} clusters={} spillovers={} quota_holds={} gangs_pinned={} gangs_spanned={}\n",
            fed.policy,
            fed.clusters.len(),
            fed.spillovers,
            fed.quota_holds,
            fed.gangs_pinned,
            fed.gangs_spanned,
        ));
        for c in &fed.clusters {
            out.push_str(&format!(
                "# cluster {}: machine={} servers={} gpus={} routed={} spill_ins={} jobs={} gpu_seconds={:.2}\n",
                c.cluster,
                c.label,
                c.servers,
                c.gpu_count,
                c.jobs_routed,
                c.spill_ins,
                c.jobs_completed,
                c.gpu_seconds,
            ));
        }
        for t in &fed.tenants {
            let quota = t
                .quota_gpus
                .map_or_else(|| "-".to_string(), |q| q.to_string());
            out.push_str(&format!(
                "# tenant {}: quota_gpus={} peak_gpus={} quota_holds={} jobs={} gpu_seconds={:.2}\n",
                t.tenant, quota, t.peak_gpus, t.quota_holds, t.jobs_completed, t.gpu_seconds,
            ));
        }
    }
    out
}

/// One parsed log line (the fields every format variant carries).
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Job id.
    pub id: u64,
    /// Allocated GPU ids.
    pub gpus: Vec<usize>,
    /// Application topology name as written.
    pub topology: String,
    /// Logged effective bandwidth (GB/s).
    pub eff_bw_gbps: f64,
}

/// Errors from log parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum LogParseError {
    /// A line had fewer than the 4 mandatory fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field description.
        field: &'static str,
    },
}

impl fmt::Display for LogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogParseError::FieldCount { line } => {
                write!(f, "line {line}: expected at least 4 comma-separated fields")
            }
            LogParseError::BadField { line, field } => write!(f, "line {line}: bad {field}"),
        }
    }
}

impl std::error::Error for LogParseError {}

/// Parses a log file (paper-minimal or extended format). Comment lines
/// (`#`) and the header are skipped.
///
/// # Errors
/// Returns the first [`LogParseError`] encountered.
pub fn parse_log(input: &str) -> Result<Vec<LogEntry>, LogParseError> {
    let mut out = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("ID") {
            continue;
        }
        // The allocation field contains commas inside parentheses; split
        // on the parenthesized group first.
        let open = trimmed
            .find('(')
            .ok_or(LogParseError::FieldCount { line })?;
        let close = trimmed
            .find(')')
            .ok_or(LogParseError::FieldCount { line })?;
        if close < open {
            return Err(LogParseError::FieldCount { line });
        }
        let id: u64 = trimmed[..open]
            .trim()
            .trim_end_matches(',')
            .trim()
            .parse()
            .map_err(|_| LogParseError::BadField { line, field: "ID" })?;
        let gpus: Vec<usize> = trimmed[open + 1..close]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| LogParseError::BadField {
                line,
                field: "Allocation",
            })?;
        let rest: Vec<&str> = trimmed[close + 1..]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if rest.len() < 2 {
            return Err(LogParseError::FieldCount { line });
        }
        let topology = rest[0].to_string();
        let eff_bw_gbps: f64 = rest[1].parse().map_err(|_| LogParseError::BadField {
            line,
            field: "Effective BW",
        })?;
        out.push(LogEntry {
            id,
            gpus,
            topology,
            eff_bw_gbps,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stats, Simulation};
    use mapa_core::policy::PreservePolicy;
    use mapa_topology::machines;
    use mapa_workloads::generator;

    #[test]
    fn parses_the_papers_own_example() {
        // Verbatim from Fig. 14.
        let text = "ID, Allocation, Topology, Effective BW (GBps)\n\
                    1, (1,2,3), Ring, 45\n\
                    2, (5,6,7,8), Ring, 48\n";
        let entries = parse_log(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, 1);
        assert_eq!(entries[0].gpus, vec![1, 2, 3]);
        assert_eq!(entries[0].topology, "Ring");
        assert_eq!(entries[1].eff_bw_gbps, 48.0);
    }

    #[test]
    fn roundtrip_through_simulation() {
        let jobs = generator::paper_job_mix(6);
        let report =
            Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&jobs[..30]);
        let text = write_log(&report);
        let entries = parse_log(&text).unwrap();
        assert_eq!(entries.len(), 30);
        for (entry, record) in entries.iter().zip(&report.records) {
            assert_eq!(entry.id, record.job.id);
            assert_eq!(entry.gpus, record.gpus);
            assert!((entry.eff_bw_gbps - record.predicted_eff_bw).abs() < 0.01);
        }
        // The logged EffBW distribution matches the in-memory one.
        let from_log: Vec<f64> = entries.iter().map(|e| e.eff_bw_gbps).collect();
        let direct: Vec<f64> = report.records.iter().map(|r| r.predicted_eff_bw).collect();
        assert!((stats::summarize(&from_log).p50 - stats::summarize(&direct).p50).abs() < 0.01);
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            parse_log("1, 2, 3, 4"),
            Err(LogParseError::FieldCount { line: 1 })
        ));
        assert!(matches!(
            parse_log("x, (1,2), Ring, 45"),
            Err(LogParseError::BadField { field: "ID", .. })
        ));
        assert!(matches!(
            parse_log("1, (a,b), Ring, 45"),
            Err(LogParseError::BadField {
                field: "Allocation",
                ..
            })
        ));
        assert!(matches!(
            parse_log("1, (1,2), Ring, fast"),
            Err(LogParseError::BadField {
                field: "Effective BW",
                ..
            })
        ));
        assert!(matches!(
            parse_log("1, (1,2), Ring"),
            Err(LogParseError::FieldCount { line: 1 })
        ));
    }

    #[test]
    fn log_carries_scheduling_latency_and_cache_counters() {
        let jobs = generator::paper_job_mix(4);
        let report =
            Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&jobs[..40]);
        let text = write_log(&report);
        assert!(text.contains("Sched (ms)"), "header gained the column");
        let cache = report.cache.expect("default run is cached");
        assert!(
            text.contains(&format!("# cache: hits={}", cache.hits)),
            "cache counters recorded in the log trailer"
        );
        assert!(
            text.contains("# shard 0: machine=DGX-1 V100"),
            "per-shard trailer recorded"
        );
        assert!(text.contains("# queue: max_depth="), "queue trailer");
        // Each record line carries latency and server: 10 fields.
        let record_line = text
            .lines()
            .find(|l| !l.starts_with('#') && !l.starts_with("ID"))
            .unwrap();
        assert_eq!(record_line.split(", ").count(), 10, "{record_line}");
        assert!(record_line.ends_with(", 0"), "single server logs shard 0");
        // Still parseable by the tolerant reader.
        assert_eq!(parse_log(&text).unwrap().len(), 40);
    }

    #[test]
    fn log_carries_the_dispatch_trailer_for_queued_clusters() {
        // Single-server reports have no dispatch layer — no trailer.
        let jobs = generator::paper_job_mix(7);
        let single =
            Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&jobs[..10]);
        assert!(!write_log(&single).contains("# dispatch:"));
        // A report carrying dispatch statistics writes them.
        let mut report = single;
        report.dispatch = Some(crate::DispatchReport {
            mode: "parallel",
            migration: "steal-on-idle",
            shard_queue_depth: 8,
            jobs_stolen: 3,
            jobs_rebalanced: 0,
            max_queue_depths: vec![5, 2],
            dispatch_blocks: 4,
            fragmentation_blocks: 1,
        });
        let text = write_log(&report);
        assert!(
            text.contains(
                "# dispatch: mode=parallel migration=steal-on-idle queue_depth=8 \
                 stolen=3 rebalanced=0 max_depths=(5,2)"
            ),
            "{text}"
        );
        // Trailer stays invisible to the tolerant reader.
        assert_eq!(parse_log(&text).unwrap().len(), 10);
    }

    #[test]
    fn log_carries_preemption_and_gang_trailers_only_when_they_fired() {
        let jobs = generator::paper_job_mix(8);
        let report =
            Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&jobs[..10]);
        let quiet = write_log(&report);
        assert!(!quiet.contains("# preemption:"), "no evictions, no line");
        assert!(!quiet.contains("# gangs:"), "no gangs, no line");
        let mut loud = report;
        loud.preemption = crate::PreemptionStats {
            jobs_preempted: 2,
            gpu_seconds_lost: 123.456,
            penalty_seconds_charged: 60.0,
        };
        loud.gangs = crate::GangStats {
            gangs_dispatched: 3,
            members_dispatched: 9,
            total_wait_seconds: 42.0,
            max_wait_seconds: 20.5,
        };
        let text = write_log(&loud);
        assert!(
            text.contains("# preemption: jobs=2 gpu_seconds_lost=123.46 penalty_seconds=60.00"),
            "{text}"
        );
        assert!(
            text.contains("# gangs: dispatched=3 members=9 total_wait=42.00 max_wait=20.50"),
            "{text}"
        );
        // Trailers stay invisible to the tolerant reader.
        assert_eq!(parse_log(&text).unwrap().len(), 10);
    }

    #[test]
    fn log_carries_the_slo_trailer_only_for_inference_mixes() {
        let training = generator::paper_job_mix(9);
        let quiet =
            Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&training[..10]);
        assert!(!write_log(&quiet).contains("# slo:"), "no tenants, no line");
        let mix = generator::generate_jobs(
            &generator::JobMixConfig {
                job_count: 20,
                inference_fraction: 0.5,
                ..Default::default()
            },
            9,
        );
        let report = Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&mix);
        let text = write_log(&report);
        assert!(
            text.contains(&format!(
                "# slo: jobs={} met={} missed={}",
                report.slo.jobs, report.slo.met, report.slo.missed
            )),
            "{text}"
        );
        assert!(text.contains("p95_latency_ms="), "{text}");
        // Trailer stays invisible to the tolerant reader.
        assert_eq!(parse_log(&text).unwrap().len(), 20);
    }

    #[test]
    fn log_carries_the_federation_trailer_only_for_federated_runs() {
        let jobs = generator::paper_job_mix(10);
        let report =
            Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&jobs[..10]);
        assert!(
            !write_log(&report).contains("# federation:"),
            "bare backends log no federation trailer"
        );
        let mut fed = report;
        fed.federation = Some(crate::FederationReport {
            policy: "spillover",
            spillovers: 4,
            quota_holds: 2,
            gangs_pinned: 1,
            gangs_spanned: 0,
            clusters: vec![crate::FedClusterStats {
                cluster: 0,
                label: "2× DGX-1 V100".to_string(),
                first_server: 0,
                servers: 2,
                gpu_count: 16,
                jobs_routed: 10,
                spill_ins: 0,
                jobs_completed: 10,
                gpu_seconds: 1234.5,
            }],
            tenants: vec![crate::FedTenantStats {
                tenant: 7,
                quota_gpus: Some(8),
                peak_gpus: 6,
                quota_holds: 2,
                jobs_completed: 10,
                gpu_seconds: 1234.5,
            }],
        });
        let text = write_log(&fed);
        assert!(
            text.contains(
                "# federation: policy=spillover clusters=1 spillovers=4 quota_holds=2 \
                 gangs_pinned=1 gangs_spanned=0"
            ),
            "{text}"
        );
        assert!(
            text.contains("# cluster 0: machine=2× DGX-1 V100 servers=2 gpus=16 routed=10"),
            "{text}"
        );
        assert!(
            text.contains("# tenant 7: quota_gpus=8 peak_gpus=6 quota_holds=2 jobs=10"),
            "{text}"
        );
        // Trailers stay invisible to the tolerant reader.
        assert_eq!(parse_log(&text).unwrap().len(), 10);
    }

    #[test]
    fn comments_and_empty_lines_skipped() {
        let text = "# a comment\n\n1, (0,1), Tree, 25.5\n";
        let entries = parse_log(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].topology, "Tree");
    }
}
