//! Stable schedule digests for golden-replay tests.
//!
//! A digest is a 64-bit FNV-1a hash over every *semantic* field of a
//! [`SimReport`]'s records — job ids, servers, GPU sets, the exact bit
//! patterns of submission/start/finish times, preemption and gang
//! ledgers — in completion order. Two runs produce the same digest if
//! and only if they produced the same schedule; wall-clock fields
//! (`scheduling_overhead`) are excluded because they legitimately vary
//! run to run.
//!
//! The replay harness (`tests/dispatch_equivalence.rs`,
//! `tests/preemption_invariants.rs`, `tests/gang_scheduling.rs`) checks
//! digests of fixed scenarios against golden values recorded **before**
//! the PR 6 event-core overhaul (`tests/golden/*.txt`), so "the new
//! engine replays the old engine bit-identically" is pinned forever,
//! not just argued. Regenerate goldens with `MAPA_BLESS=1` only when a
//! schedule change is *intended* and documented.

use crate::engine::SimReport;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher (64-bit). FNV is stable across platforms,
/// releases, and `std` versions — unlike `DefaultHasher`, which
/// documents no such guarantee — which is what a checked-in golden
/// value needs.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by exact bit pattern — bit-identical schedules
    /// hash identically, and *any* numeric drift changes the digest.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of a report's schedule: every semantic per-record field, in
/// completion order, plus the record count. Excludes wall-clock
/// scheduling overhead and cache counters (neither is part of the
/// schedule).
#[must_use]
pub fn schedule_digest(report: &SimReport) -> u64 {
    let mut h = Fnv1a::default();
    h.write_u64(report.records.len() as u64);
    for r in &report.records {
        h.write_u64(r.job.id);
        h.write_u64(r.server as u64);
        h.write_u64(r.gpus.len() as u64);
        for &g in &r.gpus {
            h.write_u64(g as u64);
        }
        h.write_f64(r.submitted_at);
        h.write_f64(r.started_at);
        h.write_f64(r.finished_at);
        h.write_f64(r.execution_seconds);
        h.write_f64(r.queue_wait_seconds);
        h.write_u64(u64::from(r.preemptions));
        h.write_f64(r.preempted_seconds);
        h.write_u64(r.gang.map_or(u64::MAX, |g| g));
        h.write_f64(r.predicted_eff_bw);
        h.write_f64(r.measured_eff_bw);
        h.write_f64(r.workload_eff_bw);
        h.write_f64(r.aggregated_bw);
        h.write_f64(r.allocation_quality);
    }
    // The ledgers and queue accounting are part of the semantics too: a
    // refactor that keeps placements but drops a preemption or a
    // dispatch-block count must not slip through.
    h.write_f64(report.makespan_seconds);
    h.write_u64(report.preemption.jobs_preempted);
    h.write_f64(report.preemption.gpu_seconds_lost);
    h.write_f64(report.preemption.penalty_seconds_charged);
    h.write_u64(report.gangs.gangs_dispatched);
    h.write_u64(report.gangs.members_dispatched);
    h.write_f64(report.gangs.total_wait_seconds);
    h.write_f64(report.gangs.max_wait_seconds);
    h.write_u64(report.queue.max_depth as u64);
    h.write_f64(report.queue.mean_depth);
    h.write_u64(report.queue.dispatch_blocks);
    h.write_u64(report.queue.fragmentation_blocks);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        let mut h = Fnv1a::default();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        use mapa_core::policy::PreservePolicy;
        use mapa_topology::machines;
        use mapa_workloads::generator;

        let jobs = generator::paper_job_mix(3);
        let run = || {
            crate::Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&jobs[..20])
        };
        let a = schedule_digest(&run());
        let b = schedule_digest(&run());
        assert_eq!(a, b, "same schedule, same digest");

        let fewer = crate::Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .run(&jobs[..19]);
        assert_ne!(a, schedule_digest(&fewer), "different schedule differs");
    }
}
