//! Event-queue implementations for the discrete-event engine.
//!
//! Two queues with one contract — events pop in ascending `(time, seq)`
//! order, ties FIFO-stable by push order:
//!
//! * [`ReferenceQueue`] is the pre-PR 6 engine queue: one
//!   `BinaryHeap` with a reversed `(time, seq)` ordering. O(log n) per
//!   operation, kept as the differential-test oracle
//!   (`tests/event_queue_equivalence.rs`) and the benchmark baseline
//!   (`bench_throughput`).
//! * [`CalendarQueue`] is the engine's production queue: a paged
//!   calendar of `buckets` × `width`-second buckets over the window
//!   `[origin, origin + buckets × width)`, with a heap fallback for
//!   far-future events beyond the horizon. Tuned for homogeneous
//!   finish-event traffic: pushes are O(1) appends, a bucket is sorted
//!   only when the drain cursor works on it, same-tick batches pop as
//!   one contiguous slice ([`CalendarQueue::pop_batch`]), and
//!   lazily-cancelled entries are compacted in bulk
//!   ([`CalendarQueue::maybe_compact`]) instead of paying a heap pop
//!   each.
//!
//! The calendar queue requires *monotone* pushes — every push's time is
//! ≥ the last popped time — which discrete-event simulation guarantees
//! by construction (an event scheduled at `now + delay`, `delay ≥ 0`,
//! never precedes `now`). Violations panic in debug builds.
//!
//! # Ordering invariant
//!
//! Bucket time ranges are disjoint and ascending, the cursor bucket
//! holds the earliest stored events (pushes behind the cursor are
//! clamped into it), and the overflow heap only holds events at or
//! beyond the window horizon — so the earliest un-popped event is
//! always in the first non-empty bucket at or after the cursor (or the
//! window is empty and the queue re-anchors at the overflow minimum).
//! Equal-time events always land in the same bucket — the bucket index
//! is a pure function of the time for one window position, and the
//! window only moves while the wheel is empty — so a same-tick batch is
//! always contiguous in one sorted bucket.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a time, a FIFO tie-breaker, and a payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent<T> {
    /// Simulated time in seconds.
    pub time: f64,
    /// Monotonic per-queue sequence number; simultaneous events pop in
    /// push order.
    pub seq: u64,
    /// What happens.
    pub payload: T,
}

fn event_order<T>(a: &TimedEvent<T>, b: &TimedEvent<T>) -> Ordering {
    a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq))
}

/// Wrapper giving `BinaryHeap` min-heap behaviour on `(time, seq)`
/// while ignoring the payload (which need not be `Ord`).
#[derive(Debug, Clone)]
struct Rev<T>(TimedEvent<T>);

impl<T> PartialEq for Rev<T> {
    fn eq(&self, other: &Self) -> bool {
        event_order(&self.0, &other.0) == Ordering::Equal
    }
}
impl<T> Eq for Rev<T> {}
impl<T> Ord for Rev<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        event_order(&other.0, &self.0)
    }
}
impl<T> PartialOrd for Rev<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pre-PR 6 engine queue: one binary heap, O(log n) per operation.
/// Kept as the oracle the calendar queue is differentially tested
/// against, and as the baseline the throughput benchmark re-measures on
/// every run.
#[derive(Debug, Default)]
pub struct ReferenceQueue<T> {
    heap: BinaryHeap<Rev<T>>,
    next_seq: u64,
}

impl<T> ReferenceQueue<T> {
    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: f64, payload: T) {
        debug_assert!(time.is_finite() && time >= 0.0, "event time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Rev(TimedEvent { time, seq, payload }));
    }

    /// Pops the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<TimedEvent<T>> {
        self.heap.pop().map(|r| r.0)
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Default bucket width in simulated seconds.
pub const DEFAULT_BUCKET_WIDTH: f64 = 1.0;
/// Default bucket count (window = width × count seconds).
pub const DEFAULT_BUCKET_COUNT: usize = 1024;

/// Compact lazily-cancelled entries once more than this many have
/// accumulated *and* they outnumber live entries (see
/// [`CalendarQueue::maybe_compact`]). Public so the boundedness tests
/// can phrase their O(live) pin in terms of the policy's actual slack.
pub const COMPACT_MIN_CANCELLED: usize = 32;

/// A paged calendar queue with a far-future overflow heap. See the
/// module docs for the design and its ordering invariant.
///
/// Buckets are plain `Vec`s kept sorted *descending* by `(time, seq)`
/// while being drained, so a pop is `Vec::pop` — O(1), no heap
/// rebalancing — and a same-tick batch is a contiguous tail slice.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<TimedEvent<T>>>,
    width: f64,
    /// Start time of bucket 0 of the current page.
    origin: f64,
    /// Bucket currently being drained.
    cursor: usize,
    /// Whether `buckets[cursor]` is currently sorted descending (pushes
    /// into it clear this; the next pop re-sorts).
    cursor_sorted: bool,
    /// One bit per bucket: set iff the bucket is non-empty. Positioning
    /// finds the next occupied bucket with a word scan instead of
    /// touching up to `count` empty `Vec`s — that walk, not the pops,
    /// dominates when events are sparse across the window.
    occupied: Vec<u64>,
    /// Events currently stored in buckets.
    wheel_len: usize,
    /// Events at or beyond the window horizon.
    overflow: BinaryHeap<Rev<T>>,
    next_seq: u64,
    /// Entries the owner has marked stale via [`Self::note_cancelled`]
    /// but that still occupy a slot.
    cancelled: usize,
    /// Largest time popped so far (monotone-push check).
    floor: f64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_WIDTH, DEFAULT_BUCKET_COUNT)
    }
}

impl<T> CalendarQueue<T> {
    /// A queue with `count` buckets of `width` simulated seconds each.
    ///
    /// # Panics
    /// Panics on a non-positive width or a zero bucket count.
    #[must_use]
    pub fn with_geometry(width: f64, count: usize) -> Self {
        assert!(width > 0.0 && width.is_finite(), "bucket width {width}");
        assert!(count > 0, "need at least one bucket");
        Self {
            buckets: std::iter::repeat_with(Vec::new).take(count).collect(),
            width,
            origin: 0.0,
            cursor: 0,
            cursor_sorted: false,
            occupied: vec![0; count.div_ceil(64)],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            cancelled: 0,
            floor: 0.0,
        }
    }

    /// End of the current window: events at or beyond it overflow.
    fn horizon(&self) -> f64 {
        self.origin + self.width * self.buckets.len() as f64
    }

    /// Schedules `payload` at `time`. Must be ≥ the last popped time
    /// (checked in debug builds) — the discrete-event monotone-push
    /// contract the calendar layout relies on.
    pub fn push(&mut self, time: f64, payload: T) {
        debug_assert!(time.is_finite() && time >= 0.0, "event time {time}");
        debug_assert!(
            time >= self.floor,
            "monotone-push violation: push at {time} after popping {}",
            self.floor
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = TimedEvent { time, seq, payload };
        if time >= self.horizon() {
            self.overflow.push(Rev(event));
            return;
        }
        // A push earlier than the cursor bucket's range can only happen
        // right after a re-anchor jumped the window forward; clamp it
        // into the cursor bucket, where (time, seq) sorting still pops
        // it first.
        let idx = (((time - self.origin) / self.width) as usize)
            .clamp(self.cursor, self.buckets.len() - 1);
        if idx == self.cursor && self.cursor_sorted {
            // The drain bucket is already sorted descending; splice the
            // event in at its position instead of invalidating the sort
            // (which would re-sort the whole bucket on the next pop).
            // The new event carries the largest seq, so among equal
            // times it lands before its older ties — and those ties sit
            // at the tail (everything earlier was already popped), so
            // the memmove is short for the common same-tick push.
            let bucket = &mut self.buckets[idx];
            let at = bucket.partition_point(|e| event_order(e, &event) == Ordering::Greater);
            bucket.insert(at, event);
        } else {
            self.buckets[idx].push(event);
            if idx == self.cursor {
                self.cursor_sorted = false;
            }
        }
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.wheel_len += 1;
    }

    /// Pops the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<TimedEvent<T>> {
        if !self.position_at_min() {
            return None;
        }
        let event = self.buckets[self.cursor].pop().expect("positioned");
        self.wheel_len -= 1;
        if self.buckets[self.cursor].is_empty() {
            self.occupied[self.cursor / 64] &= !(1 << (self.cursor % 64));
        }
        self.floor = event.time;
        Some(event)
    }

    /// Drains the entire same-tick batch at the queue's minimum time
    /// into `out` (cleared first): the earliest event plus every stored
    /// event scheduled for the exact same time, in FIFO order. Returns
    /// the batch size (0 when empty). One call replaces N heap pops; the
    /// engine still processes batch members one by one, so scheduling
    /// semantics are unchanged.
    pub fn pop_batch(&mut self, out: &mut Vec<TimedEvent<T>>) -> usize {
        out.clear();
        if !self.position_at_min() {
            return 0;
        }
        let bucket = &mut self.buckets[self.cursor];
        let tick = bucket.last().expect("positioned").time;
        while let Some(last) = bucket.last() {
            if last.time.total_cmp(&tick) != Ordering::Equal {
                break;
            }
            out.push(bucket.pop().expect("peeked"));
        }
        let emptied = bucket.is_empty();
        if emptied {
            self.occupied[self.cursor / 64] &= !(1 << (self.cursor % 64));
        }
        self.wheel_len -= out.len();
        self.floor = tick;
        out.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wheel_len == 0 && self.overflow.is_empty()
    }

    /// Pending event count (live + not-yet-compacted cancelled).
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Records that one stored entry went stale (lazily cancelled by
    /// the owner). Drives the [`Self::maybe_compact`] policy.
    pub fn note_cancelled(&mut self) {
        self.cancelled += 1;
    }

    /// Records that a popped entry turned out to be one of the stale
    /// ones — the owner dropped it on drain, so it no longer counts
    /// toward the compaction debt. Without this, the cancelled counter
    /// only ever resets on compaction and lazily-drained entries keep
    /// inflating it, triggering full-wheel compactions that do no work.
    pub fn note_drained_stale(&mut self) {
        self.cancelled = self.cancelled.saturating_sub(1);
    }

    /// Entries reported stale and not yet compacted away.
    #[must_use]
    pub fn cancelled_hint(&self) -> usize {
        self.cancelled
    }

    /// Drops every stored event for which `live` returns false, in bulk
    /// — one O(n) sweep, no per-entry heap pops — when enough
    /// cancellations have accumulated to be worth it (more than
    /// `COMPACT_MIN_CANCELLED` and outnumbering live entries). Returns
    /// how many entries were dropped. This is what keeps queue length
    /// O(running jobs) under heavy preemption.
    pub fn maybe_compact(&mut self, live: impl Fn(&T) -> bool) -> usize {
        if self.cancelled <= COMPACT_MIN_CANCELLED || 2 * self.cancelled < self.len() {
            return 0;
        }
        self.compact(live)
    }

    /// Unconditional bulk compaction (see [`Self::maybe_compact`]).
    /// Dropping entries never reorders survivors, so pop order is
    /// unaffected.
    pub fn compact(&mut self, live: impl Fn(&T) -> bool) -> usize {
        let before = self.len();
        for (idx, bucket) in self.buckets.iter_mut().enumerate() {
            bucket.retain(|e| live(&e.payload));
            if bucket.is_empty() {
                self.occupied[idx / 64] &= !(1 << (idx % 64));
            }
        }
        self.wheel_len = self.buckets.iter().map(Vec::len).sum();
        let kept: Vec<Rev<T>> = std::mem::take(&mut self.overflow)
            .into_iter()
            .filter(|r| live(&r.0.payload))
            .collect();
        self.overflow = kept.into_iter().collect();
        self.cancelled = 0;
        before - self.len()
    }

    /// First occupied bucket at or after `from`, by scanning the
    /// occupancy bitmap a word (64 buckets) at a time.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.occupied.len() {
            return None;
        }
        let mut word = self.occupied[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.occupied.len() {
                return None;
            }
            word = self.occupied[w];
        }
    }

    /// Advances cursor/page state until `buckets[cursor]` is non-empty,
    /// sorted descending, and holds the globally-earliest stored event
    /// at its end. Returns false when the queue is empty.
    ///
    /// Every stored wheel event sits at a bucket index ≥ cursor (pushes
    /// clamp there, and earlier buckets were drained before the cursor
    /// left them), so when the wheel is non-empty the bitmap scan always
    /// finds the bucket; when it is empty, the window jumps straight to
    /// the overflow minimum's page — there is no page-by-page stepping.
    fn position_at_min(&mut self) -> bool {
        if self.wheel_len == 0 {
            if self.overflow.is_empty() {
                return false;
            }
            self.reanchor_at_overflow_min();
        }
        let idx = self
            .next_occupied(self.cursor)
            .expect("non-empty wheel has an occupied bucket at or after the cursor");
        if idx != self.cursor {
            self.cursor = idx;
            self.cursor_sorted = false;
        }
        if !self.cursor_sorted {
            self.buckets[self.cursor].sort_unstable_by(|a, b| event_order(b, a));
            self.cursor_sorted = true;
        }
        true
    }

    /// The wheel is empty: jump the window straight to the overflow
    /// minimum's page (no page-by-page stepping across a gap — this is
    /// what makes far-future outliers cheap).
    fn reanchor_at_overflow_min(&mut self) {
        let min_time = self.overflow.peek().expect("caller checked").0.time;
        let window = self.width * self.buckets.len() as f64;
        let pages = ((min_time - self.origin) / window).floor().max(0.0);
        self.origin += window * pages;
        // Float rounding at a page boundary may still leave the minimum
        // beyond the horizon; nudge until it is inside.
        while min_time >= self.horizon() {
            self.origin += window;
        }
        self.cursor = 0;
        self.cursor_sorted = false;
        self.drain_overflow_into_window();
    }

    fn drain_overflow_into_window(&mut self) {
        while let Some(peek) = self.overflow.peek() {
            if peek.0.time >= self.horizon() {
                break;
            }
            let event = self.overflow.pop().expect("peeked").0;
            let idx =
                (((event.time - self.origin) / self.width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx].push(event);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
            if idx == self.cursor {
                self.cursor_sorted = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(f64, u32)> {
        std::iter::from_fn(|| q.pop().map(|e| (e.time, e.payload))).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::default();
        q.push(5.0, 1);
        q.push(1.0, 2);
        q.push(3.0, 3);
        assert_eq!(drain(&mut q), vec![(1.0, 2), (3.0, 3), (5.0, 1)]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = CalendarQueue::default();
        for id in 10..13 {
            q.push(2.0, id);
        }
        assert_eq!(drain(&mut q), vec![(2.0, 10), (2.0, 11), (2.0, 12)]);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut q = CalendarQueue::with_geometry(1.0, 8);
        q.push(3.0, 1);
        q.push(1_000_000.5, 2); // far beyond the 8-second window
        q.push(500.0, 3);
        assert_eq!(drain(&mut q), vec![(3.0, 1), (500.0, 3), (1_000_000.5, 2)]);
    }

    #[test]
    fn push_exactly_at_the_horizon_overflows_not_wraps() {
        // horizon() = origin + width × buckets: with origin 0, width 1.0,
        // 8 buckets, a push at exactly t = 8.0 is the first instant
        // *outside* the window. The floating-point bucket index would be
        // 8 — one past the last bucket — so the `time >= horizon()`
        // guard must route it to the overflow heap, never clamp it into
        // bucket 7 (which would deliver it before a t = 7.5 event ties
        // were broken against).
        let mut q = CalendarQueue::with_geometry(1.0, 8);
        q.push(8.0, 1); // exactly horizon → overflow
        q.push(7.5, 2); // inside the last bucket
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![(7.5, 2), (8.0, 1)]);
    }

    #[test]
    fn push_just_below_the_horizon_lands_in_the_last_bucket() {
        let mut q = CalendarQueue::with_geometry(1.0, 8);
        // The largest representable f64 below 8.0: still inside the
        // window, so it must take the wheel path (last bucket), and the
        // index computation must not round up past `buckets.len() - 1`.
        let just_below = f64::from_bits(8.0f64.to_bits() - 1);
        assert!(just_below < 8.0);
        q.push(just_below, 1);
        q.push(0.5, 2);
        assert_eq!(drain(&mut q), vec![(0.5, 2), (just_below, 1)]);
    }

    #[test]
    fn horizon_boundary_round_trips_after_reanchor() {
        // Overflowed events re-enter the wheel once the window advances:
        // draining past the original horizon must preserve global order
        // across the wheel/overflow boundary, including new pushes that
        // land exactly on the *new* window's edge.
        let mut q = CalendarQueue::with_geometry(1.0, 4);
        q.push(4.0, 1); // exactly the first horizon → overflow
        q.push(1.0, 2);
        assert_eq!(q.pop().map(|e| e.payload), Some(2));
        // Popping 1.0 then draining to the overflow min re-anchors the
        // window at 4.0; the event comes back out of the wheel.
        assert_eq!(q.pop().map(|e| (e.time, e.payload)), Some((4.0, 1)));
        q.push(8.0, 3); // beyond the re-anchored window too
        q.push(5.0, 4);
        assert_eq!(drain(&mut q), vec![(5.0, 4), (8.0, 3)]);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::with_geometry(0.5, 4);
        q.push(0.0, 0);
        assert_eq!(q.pop().unwrap().payload, 0);
        // Same-tick push after popping at that tick: still delivered.
        q.push(0.0, 1);
        q.push(0.25, 2);
        q.push(7.75, 3);
        assert_eq!(drain(&mut q), vec![(0.0, 1), (0.25, 2), (7.75, 3)]);
    }

    #[test]
    fn pop_batch_returns_whole_ties() {
        let mut q = CalendarQueue::default();
        q.push(1.0, 1);
        q.push(2.0, 2);
        q.push(1.0, 3);
        q.push(1.0, 4);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), 3);
        assert_eq!(
            batch.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![1, 3, 4],
            "ties pop FIFO in one batch"
        );
        assert_eq!(q.pop_batch(&mut batch), 1);
        assert_eq!(batch[0].payload, 2);
        assert_eq!(q.pop_batch(&mut batch), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn mid_batch_same_tick_pushes_form_the_next_batch() {
        let mut q = CalendarQueue::default();
        q.push(1.0, 1);
        let mut batch = Vec::new();
        q.pop_batch(&mut batch);
        // The engine may schedule new work at the tick it is processing;
        // those form a *subsequent* batch at the same time.
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop_batch(&mut batch), 2);
        assert_eq!(
            batch.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn compaction_drops_stale_entries_in_bulk() {
        let mut q = CalendarQueue::with_geometry(1.0, 16);
        for i in 0..100u32 {
            q.push(f64::from(i) * 0.5, i);
        }
        // Everything odd goes stale.
        for _ in 0..50 {
            q.note_cancelled();
        }
        assert_eq!(q.len(), 100);
        let dropped = q.maybe_compact(|payload| payload % 2 == 0);
        assert_eq!(dropped, 50);
        assert_eq!(q.len(), 50);
        assert_eq!(q.cancelled_hint(), 0);
        let popped = drain(&mut q);
        assert_eq!(popped.len(), 50);
        assert!(popped.iter().all(|(_, p)| p % 2 == 0));
    }

    #[test]
    fn compaction_policy_waits_for_enough_cancellations() {
        let mut q = CalendarQueue::<u32>::default();
        for i in 0..40u32 {
            q.push(f64::from(i), i);
        }
        for _ in 0..10 {
            q.note_cancelled();
        }
        // 10 ≤ 32: not worth a pass yet.
        assert_eq!(q.maybe_compact(|p| p % 4 != 0), 0);
        assert_eq!(q.len(), 40);
    }

    #[test]
    fn queue_length_stays_bounded_under_heavy_cancellation() {
        // The satellite-3 regression: the old heap accumulated every
        // stale finish event until popped. With note_cancelled +
        // maybe_compact after each cancellation wave, stored length must
        // stay O(live), never O(total cancelled) — by wave 200 the old
        // behaviour would hold ~1800 stale entries.
        let mut q = CalendarQueue::with_geometry(1.0, 64);
        let mut next_id = 0u32;
        let mut live: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for wave in 0..200u32 {
            let t = f64::from(wave) * 0.25;
            for _ in 0..10 {
                q.push(t + 100.0, next_id);
                live.insert(next_id);
                next_id += 1;
            }
            // Cancel 9 of the 10 — heavy preemption.
            for victim in (next_id - 10)..(next_id - 1) {
                live.remove(&victim);
                q.note_cancelled();
            }
            q.maybe_compact(|id| live.contains(id));
            let bound = 2 * live.len() + 4 * COMPACT_MIN_CANCELLED;
            assert!(
                q.len() <= bound,
                "wave {wave}: stored {} > bound {bound} ({} live) — stale \
                 events accumulate",
                q.len(),
                live.len()
            );
        }
    }

    #[test]
    fn page_boundaries_and_gaps_are_crossed_correctly() {
        let mut q = CalendarQueue::with_geometry(1.0, 4);
        q.push(0.5, 0);
        q.push(5.5, 1); // next page (window is 4 s)
        q.push(17.25, 2); // several pages later
        q.push(17.25, 3);
        assert_eq!(
            drain(&mut q),
            vec![(0.5, 0), (5.5, 1), (17.25, 2), (17.25, 3)]
        );
        // After draining far ahead, near-term pushes relative to the new
        // floor still order correctly.
        q.push(18.0, 4);
        q.push(17.5, 5);
        assert_eq!(drain(&mut q), vec![(17.5, 5), (18.0, 4)]);
    }

    #[test]
    fn reference_queue_matches_old_engine_contract() {
        let mut q = ReferenceQueue::default();
        q.push(2.0, 1u32);
        q.push(2.0, 2);
        q.push(1.0, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![3, 1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone-push violation")]
    fn non_monotone_push_panics_in_debug() {
        let mut q = CalendarQueue::default();
        q.push(10.0, 1u32);
        q.pop();
        q.push(5.0, 2);
    }
}
