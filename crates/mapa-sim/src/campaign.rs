//! Parallel experiment campaigns: grids of simulation configurations
//! ("cells"), each replicated N times under **common random numbers**
//! (CRN), fanned out across a worker pool and folded into streaming
//! summary statistics.
//!
//! MAPA's claim is comparative — pattern-aware placement beats baseline
//! policies — so the interesting output is never one run but a *grid*:
//! policy × load × fleet shape, with enough seeded replications per cell
//! to put a confidence interval on each number. This module is that
//! instrument:
//!
//! * **Common random numbers.** Replication `r` of *every* cell draws its
//!   randomness from [`crn_seed`]`(base_seed, r)` — derived from the base
//!   seed and the replication index **only**, never from the cell's
//!   configuration. Paired cells therefore replay bit-identical arrival
//!   streams, so a policy A vs. policy B difference is pure policy signal
//!   and the paired-difference variance collapses (the classic CRN
//!   variance-reduction win — see `examples/design_space.rs`).
//! * **Deterministic fan-out.** Cells are scattered over a
//!   [`WorkerPool`]; results come back in cell submission order and each
//!   cell's replications run sequentially in index order, so the output
//!   table is bit-identical at any worker-thread count.
//! * **Streaming aggregation.** Each replication's [`SimReport`] is
//!   folded into a fixed-size [`CellAccumulator`] (Welford moments +
//!   bounded quantile state) and dropped — campaign memory is O(cells),
//!   not O(cells × jobs).

use crate::digest::{schedule_digest, Fnv1a};
use crate::engine::SimReport;
use crate::stats;
use mapa_isomorph::WorkerPool;
use std::sync::Arc;

/// Exact-quantile buffer bound of [`StreamingQuantiles`]: up to this many
/// observations quantiles are computed exactly from a sorted copy; beyond
/// it the state collapses to fixed-size P² estimators. Keeps a cell's
/// aggregation state O(1) regardless of jobs × replications.
pub const EXACT_QUANTILE_CAP: usize = 4096;

/// Derives replication `replication`'s RNG seed from the campaign base
/// seed — and from **nothing else**. This is the CRN contract: the seed
/// must not depend on the cell's configuration, so every cell's
/// replication `r` observes the identical random stream. The mix is a
/// splitmix64 finalizer over a Weyl-sequence step, so nearby
/// `(base_seed, replication)` pairs land far apart.
#[must_use]
pub fn crn_seed(base_seed: u64, replication: u64) -> u64 {
    let mut z = base_seed.wrapping_add(replication.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming mean/variance accumulator (Welford's algorithm): one pass,
/// O(1) state, no catastrophic cancellation.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 before any observation).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n−1 denominator; 0.0 below two
    /// observations).
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval on the mean under the
    /// normal approximation (`1.96·s/√n`; 0.0 below two observations).
    /// With the handful of replications campaigns typically run, the
    /// t-distribution correction would widen this somewhat — treat it as
    /// a dispersion indicator, not an exact coverage guarantee.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.sample_std() / (self.n as f64).sqrt()
        }
    }
}

/// One P² (Jain & Chlamtac) quantile estimator: five markers tracking a
/// single probability in O(1) state. Used by [`StreamingQuantiles`] only
/// past [`EXACT_QUANTILE_CAP`] observations.
#[derive(Debug, Clone)]
struct P2Quantile {
    p: f64,
    /// Marker heights (the five tracked order statistics).
    q: [f64; 5],
    /// Actual marker positions, 1-based.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    count: usize,
    /// First five observations, buffered until initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    fn new(p: f64) -> Self {
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.init.push(x);
            if self.count == 5 {
                self.init.sort_by(f64::total_cmp);
                for (slot, &v) in self.q.iter_mut().zip(&self.init) {
                    *slot = v;
                }
                self.init.clear();
            }
            return;
        }
        // Locate the cell x falls into and bump marker positions.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers toward their desired positions with the
        // piecewise-parabolic (P²) update, falling back to linear when the
        // parabola would leave the bracket.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, qi, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, ni, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        qi + d / (np - nm)
            * ((ni - nm + d) * (qp - qi) / (np - ni) + (np - ni - d) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    fn quantile(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 || !self.init.is_empty() {
            // Still in (or never left) the exact buffer regime.
            let mut sorted = if self.init.is_empty() {
                self.q[..self.count.min(5)].to_vec()
            } else {
                self.init.clone()
            };
            sorted.sort_by(f64::total_cmp);
            return stats::percentile(&sorted, self.p * 100.0);
        }
        self.q[2]
    }
}

/// Streaming p50/p95/p99 of one metric. Exact (buffered, computed via
/// [`stats::percentile`] on a sorted copy) up to [`EXACT_QUANTILE_CAP`]
/// observations; past the cap the buffer is replayed into three P²
/// estimators and dropped, capping the state at O(1). The estimates past
/// the cap are approximate — documented, deterministic in insertion
/// order, and within a few percent on unimodal latency-shaped data.
#[derive(Debug, Clone)]
pub struct StreamingQuantiles {
    exact: Option<Vec<f64>>,
    sketch: [P2Quantile; 3],
    count: u64,
}

/// The probabilities [`StreamingQuantiles`] tracks, in output order.
const QUANTILE_PROBS: [f64; 3] = [0.50, 0.95, 0.99];

impl Default for StreamingQuantiles {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingQuantiles {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            exact: Some(Vec::new()),
            sketch: QUANTILE_PROBS.map(P2Quantile::new),
            count: 0,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if let Some(buf) = self.exact.as_mut() {
            buf.push(x);
            if buf.len() > EXACT_QUANTILE_CAP {
                // Graduate to the fixed-size sketch: replay the buffer in
                // arrival order (deterministic), then drop it.
                let buf = self.exact.take().expect("checked above");
                for v in buf {
                    for q in &mut self.sketch {
                        q.push(v);
                    }
                }
            }
        } else {
            for q in &mut self.sketch {
                q.push(x);
            }
        }
    }

    /// Observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether quantiles are still computed exactly (at or below
    /// [`EXACT_QUANTILE_CAP`] observations).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.exact.is_some()
    }

    /// `(p50, p95, p99)`; zeros when no observation has been folded.
    #[must_use]
    pub fn quantiles(&self) -> (f64, f64, f64) {
        if self.count == 0 {
            return (0.0, 0.0, 0.0);
        }
        match self.exact.as_ref() {
            Some(buf) => {
                let mut sorted = buf.clone();
                sorted.sort_by(f64::total_cmp);
                (
                    stats::percentile(&sorted, 50.0),
                    stats::percentile(&sorted, 95.0),
                    stats::percentile(&sorted, 99.0),
                )
            }
            None => (
                self.sketch[0].quantile(),
                self.sketch[1].quantile(),
                self.sketch[2].quantile(),
            ),
        }
    }
}

/// Mean and 95% CI half-width of one metric across a cell's replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Mean across replications.
    pub mean: f64,
    /// 95% confidence-interval half-width (normal approximation).
    pub ci95: f64,
}

/// The aggregated result of one campaign cell: summary statistics over
/// its replications, with no per-replication report retained.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell's display label (policy/load/fleet description).
    pub label: String,
    /// Replications folded in.
    pub replications: u64,
    /// Total jobs observed across replications.
    pub jobs: u64,
    /// Makespan across replications.
    pub makespan_seconds: MetricSummary,
    /// Throughput across replications.
    pub throughput_jobs_per_hour: MetricSummary,
    /// Per-replication mean job queue wait.
    pub queue_wait_mean_seconds: MetricSummary,
    /// Median per-job queue wait, pooled across replications.
    pub queue_wait_p50_seconds: f64,
    /// 95th-percentile per-job queue wait, pooled across replications.
    pub queue_wait_p95_seconds: f64,
    /// 99th-percentile per-job queue wait, pooled across replications.
    pub queue_wait_p99_seconds: f64,
    /// SLO attainment across the replications that had SLO-tagged jobs;
    /// `None` when no replication did. Replications without tagged jobs
    /// have no attainment and are skipped — not folded in as a vacuous
    /// 1.0, which used to inflate mixed campaign grids.
    pub slo_attainment: Option<MetricSummary>,
    /// Replications that carried at least one SLO-tagged job (the sample
    /// size behind `slo_attainment`).
    pub slo_replications: u64,
    /// FNV-1a chain over the per-replication schedule digests, in
    /// replication order — a fingerprint of every placement decision the
    /// cell made, used to prove bit-identical results across worker-pool
    /// thread counts.
    pub schedule_digest: u64,
}

/// Streaming per-cell fold: accepts one [`SimReport`] per replication,
/// keeps O(1) state (Welford moments, bounded quantile buffers, a digest
/// chain), and emits a [`CellSummary`]. The report is dropped after
/// [`CellAccumulator::observe`] returns — this is what makes campaign
/// memory O(cells) instead of O(cells × jobs).
#[derive(Debug, Clone, Default)]
pub struct CellAccumulator {
    replications: u64,
    jobs: u64,
    makespan: Welford,
    throughput: Welford,
    queue_wait_mean: Welford,
    queue_waits: StreamingQuantiles,
    slo_attainment: Welford,
    digest: Fnv1a,
}

impl CellAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one replication's report in.
    pub fn observe(&mut self, report: &SimReport) {
        self.replications += 1;
        self.jobs += report.records.len() as u64;
        self.makespan.push(report.makespan_seconds);
        self.throughput.push(report.throughput_jobs_per_hour);
        let waits: Vec<f64> = report
            .records
            .iter()
            .map(|r| r.queue_wait_seconds)
            .collect();
        if !waits.is_empty() {
            self.queue_wait_mean
                .push(waits.iter().sum::<f64>() / waits.len() as f64);
        }
        for w in waits {
            self.queue_waits.push(w);
        }
        // Replications without SLO-tagged jobs have no attainment to
        // fold in — skipping them keeps mixed grids honest.
        if let Some(attainment) = report.slo.attainment() {
            self.slo_attainment.push(attainment);
        }
        self.digest.write_u64(schedule_digest(report));
    }

    /// Finishes the fold into a [`CellSummary`] labelled `label`.
    #[must_use]
    pub fn finish(self, label: String) -> CellSummary {
        let summary = |w: &Welford| MetricSummary {
            mean: w.mean(),
            ci95: w.ci95_half_width(),
        };
        let (p50, p95, p99) = self.queue_waits.quantiles();
        CellSummary {
            label,
            replications: self.replications,
            jobs: self.jobs,
            makespan_seconds: summary(&self.makespan),
            throughput_jobs_per_hour: summary(&self.throughput),
            queue_wait_mean_seconds: summary(&self.queue_wait_mean),
            queue_wait_p50_seconds: p50,
            queue_wait_p95_seconds: p95,
            queue_wait_p99_seconds: p99,
            slo_attainment: if self.slo_attainment.count() > 0 {
                Some(summary(&self.slo_attainment))
            } else {
                None
            },
            slo_replications: self.slo_attainment.count(),
            schedule_digest: self.digest.finish(),
        }
    }
}

/// A campaign: a list of cells (one simulation configuration each), a
/// replication count, and the CRN base seed. The cell type is anything
/// the caller likes — the runner never inspects it beyond handing it to
/// the caller's closures.
#[derive(Debug, Clone)]
pub struct CampaignSpec<C> {
    /// The grid, flattened — one entry per cell, in output order.
    pub cells: Vec<C>,
    /// Seeded replications per cell (clamped to at least 1 by
    /// [`run_campaign`]).
    pub replications: usize,
    /// CRN base seed: replication `r` of every cell runs with
    /// [`crn_seed`]`(base_seed, r)`.
    pub base_seed: u64,
}

/// Runs a campaign: every cell becomes one pool task that builds its
/// context once via `setup` (the expensive immutable state — fitted
/// models, topologies, matcher pools — is paid per *cell*, not per
/// replication), then runs `replications` simulations sequentially in
/// replication order, folding each report into a [`CellAccumulator`] and
/// dropping it. `label` names the cell in its summary row.
///
/// Results return in `spec.cells` order regardless of pool size or
/// scheduling, and every cell's replication `r` receives the CRN seed
/// [`crn_seed`]`(spec.base_seed, r)` — together these make the output
/// table bit-identical at any worker-thread count. Cells may themselves
/// use `pool` internally (e.g. parallel pattern matchers): [`WorkerPool`]
/// scatter calls are re-entrant, so nested use runs inline on the worker
/// instead of deadlocking.
pub fn run_campaign<C, Ctx, L, S, R>(
    spec: CampaignSpec<C>,
    pool: &Arc<WorkerPool>,
    label: L,
    setup: S,
    run: R,
) -> Vec<CellSummary>
where
    C: Send + 'static,
    L: Fn(&C) -> String + Send + Sync + 'static,
    S: Fn(&C) -> Ctx + Send + Sync + 'static,
    R: Fn(&mut Ctx, u64) -> SimReport + Send + Sync + 'static,
{
    let replications = spec.replications.max(1);
    let base_seed = spec.base_seed;
    let label = Arc::new(label);
    let setup = Arc::new(setup);
    let run = Arc::new(run);
    let tasks: Vec<_> = spec
        .cells
        .into_iter()
        .map(|cell| {
            let (label, setup, run) = (Arc::clone(&label), Arc::clone(&setup), Arc::clone(&run));
            move || {
                let name = label(&cell);
                let mut ctx = setup(&cell);
                let mut acc = CellAccumulator::new();
                for r in 0..replications {
                    let report = run(&mut ctx, crn_seed(base_seed, r as u64));
                    acc.observe(&report);
                }
                acc.finish(name)
            }
        })
        .collect();
    pool.scatter(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use mapa_core::policy::PreservePolicy;
    use mapa_topology::machines;
    use mapa_workloads::generator::{self, JobMixConfig};

    #[test]
    fn crn_seed_depends_only_on_base_and_replication() {
        assert_eq!(crn_seed(7, 3), crn_seed(7, 3));
        assert_ne!(crn_seed(7, 3), crn_seed(7, 4));
        assert_ne!(crn_seed(7, 3), crn_seed(8, 3));
        // Replication 0 is not the identity on the base seed.
        assert_ne!(crn_seed(7, 0), 7);
    }

    #[test]
    fn welford_matches_naive_mean_and_std() {
        let xs = [3.0, 1.5, -2.0, 8.25, 0.0, 4.5];
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_std() - var.sqrt()).abs() < 1e-12);
        assert!((w.ci95_half_width() - 1.96 * var.sqrt() / (xs.len() as f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_exact_below_cap() {
        let mut q = StreamingQuantiles::new();
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        for &x in &xs {
            q.push(x);
        }
        assert!(q.is_exact());
        let mut sorted = xs;
        sorted.sort_by(f64::total_cmp);
        let (p50, p95, p99) = q.quantiles();
        assert_eq!(p50, stats::percentile(&sorted, 50.0));
        assert_eq!(p95, stats::percentile(&sorted, 95.0));
        assert_eq!(p99, stats::percentile(&sorted, 99.0));
    }

    #[test]
    fn quantiles_approximate_beyond_cap() {
        let mut q = StreamingQuantiles::new();
        let n = EXACT_QUANTILE_CAP * 4;
        for i in 0..n {
            // A deterministic permutation of 0..n (n is a power of two, so
            // any odd multiplier is a bijection mod n).
            q.push(((i * 40503) % n) as f64);
        }
        assert!(!q.is_exact());
        let (p50, p95, p99) = q.quantiles();
        let n = n as f64;
        assert!((p50 - 0.50 * n).abs() / n < 0.05, "p50 {p50}");
        assert!((p95 - 0.95 * n).abs() / n < 0.05, "p95 {p95}");
        assert!((p99 - 0.99 * n).abs() / n < 0.05, "p99 {p99}");
    }

    #[test]
    fn attainment_aggregation_skips_untagged_replications() {
        use crate::engine::{SloStats, Submission};
        use mapa_workloads::{GpuDemand, JobSpec, Workload};
        // One tagged replication with a known attainment, one untagged.
        let tagged: Vec<Submission> = (0..4)
            .map(|id| {
                Submission::Job(
                    JobSpec::new(id, GpuDemand::Whole(1), Workload::BertServing)
                        .with_iterations(100)
                        // Half generous targets (met), half impossible.
                        .with_slo(if id % 2 == 0 { 1e9 } else { 1e-9 }),
                )
            })
            .collect();
        let tagged_report = Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .run_submissions(tagged);
        assert_eq!(tagged_report.slo.attainment(), Some(0.5));
        let untagged_report = Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy))
            .run(&generator::paper_job_mix(3)[..5]);
        assert_eq!(untagged_report.slo, SloStats::default());

        let mut acc = CellAccumulator::new();
        acc.observe(&tagged_report);
        acc.observe(&untagged_report);
        let cell = acc.finish("mixed".to_string());
        assert_eq!(cell.replications, 2);
        assert_eq!(cell.slo_replications, 1, "only the tagged replication");
        let attainment = cell.slo_attainment.expect("one tagged replication");
        // The old vacuous-1.0 fold would have reported (0.5 + 1.0)/2.
        assert!((attainment.mean - 0.5).abs() < 1e-12, "{}", attainment.mean);

        // An all-untagged cell reports no attainment at all.
        let mut acc = CellAccumulator::new();
        acc.observe(&untagged_report);
        let cell = acc.finish("untagged".to_string());
        assert_eq!(cell.slo_attainment, None);
        assert_eq!(cell.slo_replications, 0);
    }

    #[test]
    fn campaign_results_arrive_in_cell_order_with_context_reuse() {
        let pool = Arc::new(WorkerPool::new(3));
        let spec = CampaignSpec {
            cells: vec![40usize, 10, 25],
            replications: 2,
            base_seed: 99,
        };
        let summaries = run_campaign(
            spec,
            &pool,
            |&jobs: &usize| format!("jobs={jobs}"),
            // The context (a fitted-model-bearing simulation input) is
            // built once per cell.
            |&jobs: &usize| (machines::dgx1_v100(), jobs),
            |(machine, jobs), seed| {
                let mix = JobMixConfig {
                    job_count: *jobs,
                    ..JobMixConfig::default()
                };
                let jobs = generator::generate_jobs(&mix, seed);
                Simulation::new(machine.clone(), Box::new(PreservePolicy))
                    .with_config(SimConfig::default())
                    .run(&jobs)
            },
        );
        let labels: Vec<&str> = summaries.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["jobs=40", "jobs=10", "jobs=25"]);
        assert_eq!(summaries[0].replications, 2);
        assert_eq!(summaries[0].jobs, 80);
        assert_eq!(summaries[1].jobs, 20);
        for s in &summaries {
            assert!(s.makespan_seconds.mean > 0.0);
            assert!(s.throughput_jobs_per_hour.mean > 0.0);
        }
    }
}
