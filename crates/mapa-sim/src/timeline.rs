//! GPU-occupancy timelines and utilization from a simulation report.
//!
//! The paper argues MAPA's throughput win comes from "better utilization of
//! available high-speed communication links, which results in higher GPU
//! utilization" (§4.1). This module computes exactly those quantities from
//! a [`SimReport`]: per-GPU busy fractions, machine utilization over time,
//! and an ASCII Gantt chart for eyeballing schedules in the CLI/examples.

use crate::engine::SimReport;

/// Per-GPU and aggregate utilization over the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Busy fraction of each GPU over `[0, makespan]`, in GPU-id order.
    pub per_gpu: Vec<f64>,
    /// Mean of `per_gpu` — the machine's overall utilization.
    pub overall: f64,
    /// GPU-seconds of work executed (Σ job GPUs × duration).
    pub gpu_seconds: f64,
    /// Makespan in seconds.
    pub makespan: f64,
}

/// Computes utilization for a report over a `gpu_count`-GPU machine.
///
/// # Panics
/// Panics if any record references a GPU `>= gpu_count` or the report is
/// empty (no makespan to normalize by).
#[must_use]
pub fn utilization(report: &SimReport, gpu_count: usize) -> Utilization {
    assert!(!report.records.is_empty(), "utilization of an empty report");
    let makespan = report.makespan_seconds;
    let mut busy = vec![0.0_f64; gpu_count];
    let mut gpu_seconds = 0.0;
    for r in &report.records {
        for &g in &r.gpus {
            assert!(g < gpu_count, "record references GPU {g} >= {gpu_count}");
            busy[g] += r.execution_seconds;
        }
        gpu_seconds += r.execution_seconds * r.gpus.len() as f64;
    }
    let per_gpu: Vec<f64> = busy
        .iter()
        .map(|&b| if makespan > 0.0 { b / makespan } else { 0.0 })
        .collect();
    let overall = per_gpu.iter().sum::<f64>() / gpu_count as f64;
    Utilization {
        per_gpu,
        overall,
        gpu_seconds,
        makespan,
    }
}

/// Renders an ASCII Gantt chart: one row per GPU, `width` time buckets;
/// a cell shows the last digit of the job id occupying that GPU in that
/// bucket (`.` = idle, `#` = more than one job touched the bucket — an artifact of
/// bucket granularity, never true overlap).
///
/// # Panics
/// Panics on an empty report or `width == 0`.
#[must_use]
pub fn gantt(report: &SimReport, gpu_count: usize, width: usize) -> String {
    assert!(width > 0, "gantt needs at least one column");
    assert!(!report.records.is_empty(), "gantt of an empty report");
    let makespan = report.makespan_seconds.max(f64::MIN_POSITIVE);
    let bucket = makespan / width as f64;
    let mut grid = vec![vec![b'.'; width]; gpu_count];
    for r in &report.records {
        let start = ((r.started_at / bucket).floor() as usize).min(width - 1);
        let end = ((r.finished_at / bucket).ceil() as usize).clamp(start + 1, width);
        let digit = b'0' + (r.job.id % 10) as u8;
        for &g in &r.gpus {
            for cell in &mut grid[g][start..end] {
                *cell = if *cell == b'.' || *cell == digit {
                    digit
                } else {
                    b'#'
                };
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "time 0 .. {:.0} s ({} buckets of {:.0} s)\n",
        makespan, width, bucket
    ));
    for (g, row) in grid.iter().enumerate() {
        out.push_str(&format!("GPU{g:<2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use mapa_core::policy::BaselinePolicy;
    use mapa_topology::machines;
    use mapa_workloads::{GpuDemand, JobSpec, Workload};

    fn jobs(specs: &[(u64, usize, u64)]) -> Vec<JobSpec> {
        specs
            .iter()
            .map(|&(id, n, iters)| {
                JobSpec::new(id, GpuDemand::Whole(n), Workload::Gmm)
                    .with_bandwidth_sensitive(false)
                    .with_iterations(iters)
            })
            .collect()
    }

    fn run(specs: &[(u64, usize, u64)]) -> SimReport {
        Simulation::new(machines::dgx1_v100(), Box::new(BaselinePolicy)).run(&jobs(specs))
    }

    #[test]
    fn single_job_utilization() {
        // One 4-GPU job: exactly half the 8 GPUs busy for the whole run.
        let report = run(&[(1, 4, 100)]);
        let u = utilization(&report, 8);
        assert!((u.overall - 0.5).abs() < 1e-9, "{u:?}");
        assert_eq!(u.per_gpu.iter().filter(|&&f| f > 0.99).count(), 4);
        assert_eq!(u.per_gpu.iter().filter(|&&f| f == 0.0).count(), 4);
        assert!((u.gpu_seconds - 4.0 * report.makespan_seconds).abs() < 1e-6);
    }

    #[test]
    fn sequential_jobs_halve_utilization() {
        // Two 8-GPU jobs run back to back: full utilization throughout.
        let report = run(&[(1, 8, 50), (2, 8, 50)]);
        let u = utilization(&report, 8);
        assert!((u.overall - 1.0).abs() < 1e-9, "{u:?}");
    }

    #[test]
    fn gantt_shape_and_occupancy() {
        let report = run(&[(1, 8, 50), (2, 8, 50)]);
        let chart = gantt(&report, 8, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 9, "header + 8 GPU rows");
        assert!(lines[1].starts_with("GPU0"), "{}", lines[1]);
        // Fully busy machine: no idle cells.
        for row in &lines[1..] {
            let cells = row.split('|').nth(1).unwrap();
            assert_eq!(cells.len(), 20);
            assert!(!cells.contains('.'), "{row}");
            assert!(cells.contains('1') && cells.contains('2'), "{row}");
        }
    }

    #[test]
    fn gantt_shows_idle_gpus() {
        let report = run(&[(1, 2, 100)]);
        let chart = gantt(&report, 8, 10);
        // GPUs 2..7 never run anything.
        for line in chart.lines().skip(3) {
            let cells = line.split('|').nth(1).unwrap();
            assert!(cells.chars().all(|c| c == '.'), "{line}");
        }
    }

    #[test]
    #[should_panic(expected = "empty report")]
    fn empty_report_panics() {
        let report = SimReport {
            topology_name: "x".into(),
            policy_name: "y".into(),
            records: vec![],
            makespan_seconds: 0.0,
            throughput_jobs_per_hour: 0.0,
            cache: None,
            shards: vec![],
            queue: crate::QueueStats::default(),
            dispatch: None,
            preemption: crate::PreemptionStats::default(),
            gangs: crate::GangStats::default(),
            slo: crate::SloStats::default(),
            federation: None,
        };
        let _ = utilization(&report, 8);
    }

    #[test]
    fn preserve_utilization_at_least_baseline() {
        // §4.1's throughput argument, measured directly: Preserve should
        // not utilize the machine worse than baseline on the same mix.
        use mapa_core::policy::PreservePolicy;
        let mix = mapa_workloads::generator::paper_job_mix(4);
        let base = Simulation::new(machines::dgx1_v100(), Box::new(BaselinePolicy)).run(&mix[..80]);
        let pres = Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy)).run(&mix[..80]);
        let ub = utilization(&base, 8);
        let up = utilization(&pres, 8);
        // GPU-seconds of work shrink when allocations are faster, so
        // compare throughput-normalized utilization loosely.
        assert!(up.overall > 0.5 * ub.overall, "{up:?} vs {ub:?}");
    }
}
