//! Experiment runners: the policy-comparison studies of §4 and §5.

use crate::engine::{JobRecord, SimConfig, SimReport, Simulation};
use crate::stats::{self, Summary};
use mapa_core::policy;
use mapa_isomorph::{MatchOptions, Matcher, WorkerPool};
use mapa_topology::Topology;
use mapa_workloads::JobSpec;
use std::sync::Arc;

/// Reports of all four paper policies over the same job list and machine —
/// the data behind Fig. 13, Table 3 and Fig. 18.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// One report per policy, in §4 order (baseline, Topo-aware, Greedy,
    /// Preserve).
    pub reports: Vec<SimReport>,
}

/// Runs the four paper policies on `jobs` against `topology`. All four
/// simulations share one matcher worker pool (sized by the machine's
/// available parallelism), so thread start-up is paid once for the whole
/// comparison.
#[must_use]
pub fn compare_policies(topology: &Topology, jobs: &[JobSpec]) -> PolicyComparison {
    let pool = Arc::new(WorkerPool::with_default_threads());
    let reports = policy::paper_policies()
        .into_iter()
        .map(|p| {
            Simulation::new(topology.clone(), p)
                .with_config(SimConfig {
                    matcher: Some(Matcher::with_pool(
                        MatchOptions::parallel(),
                        Arc::clone(&pool),
                    )),
                    ..SimConfig::default()
                })
                .run(jobs)
        })
        .collect();
    PolicyComparison { reports }
}

/// One row of the Table 3 summary.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Policy name.
    pub policy: String,
    /// Speedup at {min, p25, p50, p75, max}, normalized to baseline.
    pub speedup: stats::SpeedupRow,
    /// Throughput normalized to baseline.
    pub normalized_throughput: f64,
}

impl PolicyComparison {
    /// The report for a policy by name.
    #[must_use]
    pub fn report(&self, policy: &str) -> Option<&SimReport> {
        self.reports.iter().find(|r| r.policy_name == policy)
    }

    /// Table 3: per-policy execution-time speedup quantiles and
    /// throughput, normalized to the baseline policy. Only multi-GPU jobs
    /// enter the execution-time distributions (1-GPU jobs are placement-
    /// independent noise).
    ///
    /// # Panics
    /// Panics if the comparison does not include a "baseline" report.
    #[must_use]
    pub fn table3(&self) -> Vec<Table3Row> {
        self.table3_filtered(|r| r.job.num_gpus() >= 2)
    }

    /// Table 3 restricted to bandwidth-sensitive multi-GPU jobs — the
    /// population where placement quality shows (the paper's Fig. 13
    /// likewise separates sensitive from insensitive workloads).
    ///
    /// # Panics
    /// Panics if the comparison does not include a "baseline" report.
    #[must_use]
    pub fn table3_sensitive(&self) -> Vec<Table3Row> {
        self.table3_filtered(|r| r.job.bandwidth_sensitive && r.job.num_gpus() >= 2)
    }

    /// Table 3 over an arbitrary job filter.
    ///
    /// # Panics
    /// Panics if the comparison does not include a "baseline" report.
    #[must_use]
    pub fn table3_filtered(&self, filter: impl Fn(&JobRecord) -> bool + Copy) -> Vec<Table3Row> {
        let baseline = self.report("baseline").expect("baseline run present");
        let base_summary = stats::summarize(&baseline.execution_times(filter));
        self.reports
            .iter()
            .map(|rep| {
                let s = stats::summarize(&rep.execution_times(filter));
                Table3Row {
                    policy: rep.policy_name.clone(),
                    speedup: base_summary.speedup_over(&s),
                    normalized_throughput: rep.throughput_jobs_per_hour
                        / baseline.throughput_jobs_per_hour,
                }
            })
            .collect()
    }

    /// Fig. 13(a/c)-style per-workload summaries for one policy:
    /// `(workload name, execution-time summary, predicted-EffBW summary)`.
    #[must_use]
    pub fn per_workload_summaries(&self, policy: &str) -> Vec<(String, Summary, Summary)> {
        let Some(rep) = self.report(policy) else {
            return vec![];
        };
        let mut workloads: Vec<String> = rep
            .records
            .iter()
            .filter(|r| r.job.num_gpus() >= 2)
            .map(|r| r.job.workload.name().to_string())
            .collect();
        workloads.sort();
        workloads.dedup();
        workloads
            .into_iter()
            .map(|w| {
                let times =
                    rep.execution_times(|r| r.job.workload.name() == w && r.job.num_gpus() >= 2);
                let bws =
                    rep.predicted_eff_bws(|r| r.job.workload.name() == w && r.job.num_gpus() >= 2);
                (w, stats::summarize(&times), stats::summarize(&bws))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapa_topology::machines;
    use mapa_workloads::generator;

    fn small_mix() -> Vec<JobSpec> {
        let cfg = generator::JobMixConfig {
            job_count: 60,
            ..Default::default()
        };
        generator::generate_jobs(&cfg, 21)
    }

    #[test]
    fn comparison_runs_all_four_policies() {
        let cmp = compare_policies(&machines::dgx1_v100(), &small_mix());
        let names: Vec<&str> = cmp.reports.iter().map(|r| r.policy_name.as_str()).collect();
        assert_eq!(names, vec!["baseline", "Topo-aware", "Greedy", "Preserve"]);
        assert!(cmp.report("Preserve").is_some());
        assert!(cmp.report("nope").is_none());
    }

    #[test]
    fn table3_baseline_row_is_unity() {
        let cmp = compare_policies(&machines::dgx1_v100(), &small_mix());
        let t3 = cmp.table3();
        let base = &t3[0];
        assert_eq!(base.policy, "baseline");
        for v in [
            base.speedup.min,
            base.speedup.p25,
            base.speedup.p50,
            base.speedup.p75,
            base.speedup.max,
        ] {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!((base.normalized_throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mapa_policies_do_not_lose_at_the_tail() {
        let cmp = compare_policies(&machines::dgx1_v100(), &small_mix());
        let t3 = cmp.table3();
        let preserve = t3.iter().find(|r| r.policy == "Preserve").unwrap();
        assert!(
            preserve.speedup.p75 >= 0.99,
            "Preserve p75 speedup {} should not regress",
            preserve.speedup.p75
        );
    }

    #[test]
    fn per_workload_summaries_cover_multigpu_workloads() {
        let cmp = compare_policies(&machines::dgx1_v100(), &small_mix());
        let rows = cmp.per_workload_summaries("Preserve");
        assert!(!rows.is_empty());
        for (name, times, bws) in rows {
            assert!(times.count > 0, "{name}");
            assert!(times.min > 0.0);
            assert!(bws.min >= 0.0);
        }
        assert!(cmp.per_workload_summaries("unknown").is_empty());
    }
}
