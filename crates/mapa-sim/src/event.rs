//! Discrete-event queue for the execution engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending simulation event.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Event {
    /// Simulated time in seconds.
    pub time: f64,
    /// Monotonic tie-breaker so simultaneous events process FIFO.
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A submission arrives at the dispatcher (index into the stream).
    JobArrival(usize),
    /// A running job completes and frees its GPUs. `epoch` is the job's
    /// run generation: preempting a job bumps its epoch, turning the
    /// already-scheduled finish event stale — the engine drops finish
    /// events whose epoch no longer matches (lazy cancellation; a binary
    /// heap cannot delete).
    JobFinished {
        /// Job id.
        job: u64,
        /// Run generation the event was scheduled for.
        epoch: u32,
    },
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour in BinaryHeap (earliest first).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn push(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite() && time >= 0.0, "event time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(5.0, EventKind::JobFinished { job: 1, epoch: 0 });
        q.push(1.0, EventKind::JobFinished { job: 2, epoch: 0 });
        q.push(3.0, EventKind::JobFinished { job: 3, epoch: 0 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::default();
        q.push(2.0, EventKind::JobFinished { job: 10, epoch: 0 });
        q.push(2.0, EventKind::JobFinished { job: 11, epoch: 0 });
        q.push(2.0, EventKind::JobFinished { job: 12, epoch: 0 });
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::JobFinished { job, .. } => job,
                EventKind::JobArrival(_) => unreachable!("no arrivals queued"),
            })
            .collect();
        assert_eq!(ids, vec![10, 11, 12]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::default();
        assert!(q.is_empty());
        q.push(1.0, EventKind::JobFinished { job: 1, epoch: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
