//! Engine event types, scheduled on the calendar queue.
//!
//! The queue machinery itself lives in [`crate::queue`] (with the
//! pre-PR 6 `BinaryHeap` kept as [`crate::queue::ReferenceQueue`], the
//! differential-test oracle); the per-job state the finish events point
//! into lives in [`crate::slab`].

use crate::queue::CalendarQueue;
use crate::slab::SlotId;

/// A pending simulation event's payload. `Copy` and 16 bytes — events
/// move through bucket sorts and batch drains by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A submission arrives at the dispatcher (index into the stream).
    JobArrival(usize),
    /// A running job completes and frees its GPUs. `slot` addresses the
    /// job's entry in the engine's running-job slab; preempting a job
    /// removes that entry (bumping the slot's generation), so the
    /// victim's already-scheduled finish event goes stale and its
    /// `Slab::remove` returns `None` — lazy cancellation with no
    /// separate epoch table. Stale entries are additionally compacted
    /// out of the queue in bulk after eviction waves
    /// (`CalendarQueue::maybe_compact`) so they never accumulate.
    JobFinished {
        /// Slab slot (index + generation) of the running job.
        slot: SlotId,
    },
}

/// The engine's time-ordered event queue: a paged calendar/time-wheel
/// with a far-future overflow heap — O(1) push and pop for the
/// homogeneous finish-event traffic the engine generates, same-tick
/// batches drained in one call (`pop_batch`).
pub(crate) type EventQueue = CalendarQueue<EventKind>;
