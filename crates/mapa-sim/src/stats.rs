//! Distribution statistics for result tables (Table 3, Fig. 13/18
//! box plots).

/// Five-number summary of a sample (the box-plot statistics the paper
/// reports: MIN / 25th / 50th / 75th / MAX).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

/// Linear-interpolated percentile of a sorted slice, `p` in `[0, 100]`.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Computes the five-number summary (plus mean) of `values`.
///
/// # Panics
/// Panics on empty input.
#[must_use]
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "summary of empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary {
        min: sorted[0],
        p25: percentile(&sorted, 25.0),
        p50: percentile(&sorted, 50.0),
        p75: percentile(&sorted, 75.0),
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        count: sorted.len(),
    }
}

impl Summary {
    /// Element-wise ratio `other / self` — used for Table 3's "normalized
    /// execution time speedup", where `self` is the baseline distribution
    /// and `other` the policy's (speedup > 1 means the policy's quantile
    /// is *smaller*, i.e. faster).
    ///
    /// # Panics
    /// Panics if any quantile of `other` is zero.
    #[must_use]
    pub fn speedup_over(&self, other: &Summary) -> SpeedupRow {
        let div = |base: f64, v: f64| {
            assert!(v != 0.0, "cannot normalize against zero");
            base / v
        };
        SpeedupRow {
            min: div(self.min, other.min),
            p25: div(self.p25, other.p25),
            p50: div(self.p50, other.p50),
            p75: div(self.p75, other.p75),
            max: div(self.max, other.max),
        }
    }
}

/// Scheduling-overhead report: the §5.4 per-job decision-latency
/// distribution together with the allocation-cache counters of the run.
/// This is the one reporting path shared by the Fig. 19 benchmark, the
/// simulator log file, and [`crate::SimReport::scheduling_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulingStats {
    /// Five-number summary (plus mean) of per-job scheduling latency, ms.
    pub latency_ms: Summary,
    /// Cache hit/miss counters; `None` when the run was uncached.
    pub cache: Option<mapa_core::CacheStats>,
}

impl SchedulingStats {
    /// Cache hit rate of the run, 0 when uncached or no lookups happened.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.hit_rate())
    }
}

/// One row of Table 3: baseline-time / policy-time per quantile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRow {
    /// Speedup at the minimum.
    pub min: f64,
    /// Speedup at the 25th percentile.
    pub p25: f64,
    /// Speedup at the median.
    pub p50: f64,
    /// Speedup at the 75th percentile.
    pub p75: f64,
    /// Speedup at the maximum.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
        // Interpolated between ranks.
        let w = [0.0, 10.0];
        assert_eq!(percentile(&w, 75.0), 7.5);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.p25, 7.0);
        assert_eq!(s.p75, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn speedup_normalization() {
        let baseline = summarize(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        let better = summarize(&[5.0, 10.0, 15.0, 20.0, 25.0]);
        let row = baseline.speedup_over(&better);
        assert_eq!(row.min, 2.0);
        assert_eq!(row.p50, 2.0);
        assert_eq!(row.max, 2.0);
        // Self-speedup is exactly 1.
        let unit = baseline.speedup_over(&baseline);
        assert_eq!(unit.p75, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentile_panics() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let v = [2.0, 9.0, 4.0, 7.0, 7.0, 1.0, 5.0];
        let mut sorted = v.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for p in 0..=20 {
            let q = percentile(&sorted, p as f64 * 5.0);
            assert!(q >= prev);
            prev = q;
        }
    }
}
