//! The MAPA simulation framework (paper §5, Fig. 14).
//!
//! "The simulation starts with a job file. … The Dispatcher reads the job
//! file and puts the job in the Job Queue. The Job Queue employs a
//! First-in First-out policy … If there exist available GPU resources, the
//! simulator invokes MAPA to obtain an allocation for the next job. The
//! execution engine … models the availability of a hardware resource. When
//! a job is allocated, we flag the hardware as busy, record the cycle
//! time, and begin the execution of the job. Once the specified execution
//! time has elapsed, we … log the job's information … The logger records
//! the Predicted Effective Bandwidth information along with other job
//! properties."
//!
//! Our engine is identical in structure, with one upgrade over the paper's
//! description: instead of replaying fixed measured execution times, job
//! duration is computed from the workload performance model and the
//! *actual effective bandwidth* of the allocation the policy produced —
//! so allocation quality feeds back into execution time exactly as on the
//! real machine.
//!
//! Beyond the paper, the engine is generic over its placement stage
//! ([`SchedulerBackend`]): [`Simulation`] is the paper's single-server
//! instantiation ([`Engine`]`<`[`SingleServer`]`>`), and `mapa-cluster`
//! plugs a sharded multi-server fleet into the same dispatcher, queue,
//! and event loop. Jobs can also be *streamed* in through
//! [`Engine::run_stream`] (arrivals are scheduled one ahead), which is
//! what the cluster crate's bounded ingestion channel feeds.
//!
//! Two multi-tenant mechanisms extend the Fig. 14 semantics, both off
//! by default (and provably inert when off):
//!
//! * **Preemption** ([`SimConfig::preemption`]): a blocked
//!   higher-priority arrival may evict strictly-lower-priority running
//!   jobs; victims are checkpointed, requeued once, and charged a
//!   restore penalty ([`SimConfig::preemption_penalty_seconds`]).
//! * **Gang scheduling** ([`Submission::Gang`], via
//!   [`Engine::run_submissions`]): a `JobGroup`'s members start at the
//!   same simulation tick or not at all.
//!
//! The full lifecycle and ordering rules live in `docs/SCHEDULING.md`.
//!
//! # Example
//!
//! ```
//! use mapa_sim::{Simulation, SimConfig, Submission};
//! use mapa_core::policy::PreservePolicy;
//! use mapa_topology::machines;
//! use mapa_workloads::{generator, JobGroup};
//!
//! let jobs = generator::paper_job_mix(1);
//! let report = Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy))
//!     .run(&jobs[..20]);
//! assert_eq!(report.records.len(), 20);
//! assert!(report.makespan_seconds > 0.0);
//!
//! // The same engine co-schedules gangs: both members of this pair
//! // start at the same simulation tick.
//! let gang = JobGroup::new(1, jobs[20..22].to_vec());
//! let report = Simulation::new(machines::dgx1_v100(), Box::new(PreservePolicy))
//!     .run_submissions(vec![Submission::Gang(gang)]);
//! assert_eq!(report.records[0].started_at, report.records[1].started_at);
//! assert_eq!(report.gangs.gangs_dispatched, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod digest;
mod engine;
mod event;
pub mod experiment;
pub mod logfile;
pub mod queue;
pub mod slab;
pub mod stats;
pub mod timeline;

pub use engine::{
    configure_allocator, ArrivalProcess, DispatchReport, DispatchedJob, Engine, Eviction,
    FedClusterStats, FedTenantStats, FederationReport, GangStats, JobRecord, PendingJob, Placement,
    PreemptionStats, QueueStats, SchedulerBackend, ShardStats, SimConfig, SimReport, Simulation,
    SingleServer, SloStats, Submission, DEFAULT_PREEMPTION_PENALTY_SECONDS,
};
