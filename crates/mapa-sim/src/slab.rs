//! A generational slab: dense, reusable storage for per-job state on
//! the engine's hot path.
//!
//! The pre-PR 6 engine kept two `HashMap`s keyed by job id — one for
//! running-job records and one for preemption epochs — and every finish
//! event paid hashing on both. The slab replaces both with one `Vec` of
//! slots addressed by a [`SlotId`] `{index, generation}` carried
//! *inside* the finish event:
//!
//! * lookup/insert/remove are array indexing — no hashing, no per-job
//!   allocation (freed slots are recycled through a free list);
//! * lazy cancellation falls out of the generation: preempting a job
//!   removes its slot, which bumps the slot's generation, so the
//!   victim's already-scheduled finish event (holding the old
//!   generation) dies on its [`Slab::remove`] — there is no separate
//!   epoch table to consult or forget to clean up.
//!
//! Generations also guard the ABA case: a slot freed and re-used keeps
//! rejecting stale ids from every earlier occupant.

/// Handle to an occupied (or once-occupied) slab slot. `Copy`, 8 bytes
/// — cheap enough to ride inside every finish event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId {
    index: u32,
    generation: u32,
}

impl SlotId {
    /// Slot position — stable while the entry lives, recycled after.
    #[must_use]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// Dense generational storage. See the module docs.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Slab<T> {
    /// An empty slab with room for `capacity` entries before growing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Stores `value`, recycling a freed slot when one exists, and
    /// returns its id. O(1); allocates only when the slab must grow.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free-listed slot occupied");
            slot.value = Some(value);
            return SlotId {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("slab outgrew u32 indices");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        SlotId {
            index,
            generation: 0,
        }
    }

    /// Removes and returns the entry at `id`, or `None` when the id is
    /// stale — the slot was already removed (and possibly re-used) since
    /// the id was handed out. The stale case *is* the engine's lazy
    /// finish-event cancellation check.
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.index())?;
        if slot.generation != id.generation {
            return None;
        }
        let value = slot.value.take()?;
        // Bump so every outstanding id to this occupancy goes stale.
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }

    /// The entry at `id`, or `None` when the id is stale.
    #[must_use]
    pub fn get(&self, id: SlotId) -> Option<&T> {
        let slot = self.slots.get(id.index())?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Whether `id` still addresses a live entry.
    #[must_use]
    pub fn contains(&self, id: SlotId) -> bool {
        self.get(id).is_some()
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over live entries with their ids (slot order, not
    /// insertion order). Used by the rare paths that look a job up by
    /// its *job id* — e.g. resolving preemption victims — where a linear
    /// scan of the (small) running set beats maintaining a second index.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.slots.iter().enumerate().filter_map(|(index, slot)| {
            slot.value.as_ref().map(|value| {
                (
                    SlotId {
                        index: index as u32,
                        generation: slot.generation,
                    },
                    value,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::default();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "second remove is stale");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn recycled_slots_reject_stale_ids() {
        let mut slab = Slab::default();
        let first = slab.insert(1u32);
        slab.remove(first);
        let second = slab.insert(2u32);
        // Same physical slot, new generation.
        assert_eq!(second.index(), first.index());
        assert_ne!(first, second);
        assert!(!slab.contains(first));
        assert_eq!(slab.get(first), None);
        assert_eq!(
            slab.remove(first),
            None,
            "ABA id must not free the new tenant"
        );
        assert_eq!(slab.get(second), Some(&2));
    }

    #[test]
    fn no_growth_when_recycling() {
        let mut slab = Slab::with_capacity(4);
        let mut ids = Vec::new();
        for round in 0..100u32 {
            for i in 0..4 {
                ids.push(slab.insert(round * 4 + i));
            }
            for id in ids.drain(..) {
                assert!(slab.remove(id).is_some());
            }
        }
        assert!(slab.is_empty());
        assert_eq!(slab.slots.len(), 4, "steady-state churn re-uses slots");
    }

    #[test]
    fn iter_yields_live_entries_with_valid_ids() {
        let mut slab = Slab::default();
        let a = slab.insert(10u32);
        let b = slab.insert(20u32);
        slab.remove(a);
        let entries: Vec<(SlotId, u32)> = slab.iter().map(|(id, v)| (id, *v)).collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0], (b, 20));
        assert!(slab.contains(entries[0].0));
    }
}
